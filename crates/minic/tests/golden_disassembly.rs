//! Golden-output test: the compiled form of a reference program is
//! pinned, so unintentional codegen changes surface as a readable diff.

use tics_minic::{compile, opt::OptLevel};

const SOURCE: &str = "\
int g;
int add(int a, int b) { return a + b; }
int main() {
    g = add(2, 3);
    return g;
}
";

#[test]
fn reference_program_disassembly_is_stable() {
    let prog = compile(SOURCE, OptLevel::O0).unwrap();
    let expected = "\
fn add (f0) args=2 locals=0B ostack=2 frame=28B
     0: loadl 0
     1: loadl 4
     2: add
     3: ret
     4: const 0
     5: ret
fn main (f1) args=0 locals=0B ostack=2 frame=20B
     0: const 2
     1: const 3
     2: call f0
     3: storeg 0
     4: loadg 0
     5: ret
     6: const 0
     7: ret
";
    assert_eq!(prog.disassemble(), expected);
}

#[test]
fn o2_disassembly_is_no_longer_than_o0() {
    let o0 = compile(SOURCE, OptLevel::O0).unwrap();
    let o2 = compile(SOURCE, OptLevel::O2).unwrap();
    assert!(o2.disassemble().lines().count() <= o0.disassemble().lines().count());
}

#[test]
fn instrumented_disassembly_shows_logged_stores() {
    let mut prog = compile(SOURCE, OptLevel::O0).unwrap();
    tics_minic::passes::instrument_tics(&mut prog).unwrap();
    let d = prog.disassemble();
    assert!(d.contains("storeg.log 0"), "{d}");
    assert!(d.contains("[checked]"), "{d}");
}
