//! Fuzz-style robustness tests: the frontend must never panic, whatever
//! bytes it is fed — malformed input yields `CompileError`, not a crash.
//! Inputs come from a seeded splitmix64 stream (256 deterministic cases
//! per property) instead of a fuzzing crate, so the suite builds offline
//! and replays exactly.

use tics_minic::{compile, lexer, opt::OptLevel, parser};

const CASES: u64 = 256;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Printable-ASCII soup (plus newline/tab), up to 200 bytes.
fn ascii_soup(rng: &mut Rng) -> String {
    let len = rng.range(0, 201) as usize;
    (0..len)
        .map(|_| match rng.range(0, 97) {
            95 => '\n',
            96 => '\t',
            c => (b' ' + c as u8) as char,
        })
        .collect()
}

/// The lexer is total: any ASCII input produces tokens or an error.
#[test]
fn lexer_never_panics() {
    for case in 0..CASES {
        let input = ascii_soup(&mut Rng(0x1EC5_0000 + case));
        let _ = lexer::lex(&input);
    }
}

/// The parser is total over arbitrary token streams from arbitrary
/// text.
#[test]
fn parser_never_panics() {
    for case in 0..CASES {
        let input = ascii_soup(&mut Rng(0x9A25_0000 + case));
        if let Ok(tokens) = lexer::lex(&input) {
            let _ = parser::parse(tokens);
        }
    }
}

/// Full pipeline never panics on syntactically plausible soups built
/// from the language's own keywords and punctuation.
#[test]
fn compiler_never_panics_on_keyword_soup() {
    const WORDS: [&str; 25] = [
        "int", "while", "if", "else", "return", "{", "}", "(", ")", ";", "x", "y", "main", "=",
        "+", "*", "&", "1", "0", "for", "break", "nv", "[ 3 ]", "@timely", "catch",
    ];
    for case in 0..CASES {
        let mut rng = Rng(0x50FF_0000 + case);
        let n = rng.range(0, 60) as usize;
        let src = (0..n)
            .map(|_| WORDS[rng.range(0, WORDS.len() as u64) as usize])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = compile(&src, OptLevel::O2);
    }
}

/// Deeply nested expressions neither crash nor mis-resolve.
#[test]
fn nested_parentheses_compile() {
    for depth in 1usize..40 {
        let open = "(".repeat(depth);
        let close = ")".repeat(depth);
        let src = format!("int main() {{ return {open}1{close} + 1; }}");
        let prog = compile(&src, OptLevel::O2).unwrap();
        assert!(prog.function("main").is_some());
    }
}

/// Identifier names never collide with internal machinery.
#[test]
fn arbitrary_identifiers_work() {
    const KEYWORDS: [&str; 13] = [
        "int", "unsigned", "void", "if", "else", "while", "for", "return", "break", "continue",
        "nv", "catch", "main",
    ];
    for case in 0..CASES {
        let mut rng = Rng(0x1DE7_0000 + case);
        let len = rng.range(0, 21) as usize;
        let first = match rng.range(0, 27) {
            26 => '_',
            c => (b'a' + c as u8) as char,
        };
        let mut name = String::from(first);
        for _ in 0..len {
            name.push(match rng.range(0, 37) {
                36 => '_',
                c if c >= 26 => (b'0' + (c - 26) as u8) as char,
                c => (b'a' + c as u8) as char,
            });
        }
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Builtins may not be redefined; that's an error, not a panic.
        let src = format!("int {name}(int a) {{ return a; }} int main() {{ return {name}(7); }}");
        if let Ok(prog) = compile(&src, OptLevel::O2) {
            assert!(prog.function(&name).is_some(), "case {case}: {name}");
        }
    }
}

/// A handful of historically tricky inputs, pinned.
#[test]
fn regression_inputs_error_cleanly() {
    for src in [
        "",
        ";",
        "int",
        "int main(",
        "int main() { return",
        "int main() { @ }",
        "int main() { @expires() {} }",
        "@expires_after int x;",
        "int main() { int x = 0x; }",
        "int main() { /* }",
        "int a[0-1];",
        "int main() { return 2147483647 + 1; }", // wraps, must not panic
    ] {
        let _ = compile(src, OptLevel::O2);
    }
}
