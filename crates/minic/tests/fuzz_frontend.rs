//! Fuzz-style robustness tests: the frontend must never panic, whatever
//! bytes it is fed — malformed input yields `CompileError`, not a crash.

use proptest::prelude::*;
use tics_minic::{compile, lexer, opt::OptLevel, parser};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: any ASCII input produces tokens or an error.
    #[test]
    fn lexer_never_panics(input in "[ -~\\n\\t]{0,200}") {
        let _ = lexer::lex(&input);
    }

    /// The parser is total over arbitrary token streams from arbitrary
    /// text.
    #[test]
    fn parser_never_panics(input in "[ -~\\n\\t]{0,200}") {
        if let Ok(tokens) = lexer::lex(&input) {
            let _ = parser::parse(tokens);
        }
    }

    /// Full pipeline never panics on syntactically plausible soups built
    /// from the language's own keywords and punctuation.
    #[test]
    fn compiler_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("int"), Just("while"), Just("if"), Just("else"),
                Just("return"), Just("{"), Just("}"), Just("("), Just(")"),
                Just(";"), Just("x"), Just("y"), Just("main"), Just("="),
                Just("+"), Just("*"), Just("&"), Just("1"), Just("0"),
                Just("for"), Just("break"), Just("nv"), Just("[ 3 ]"),
                Just("@timely"), Just("catch"),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = compile(&src, OptLevel::O2);
    }

    /// Deeply nested expressions neither crash nor mis-resolve.
    #[test]
    fn nested_parentheses_compile(depth in 1usize..40) {
        let open = "(".repeat(depth);
        let close = ")".repeat(depth);
        let src = format!("int main() {{ return {open}1{close} + 1; }}");
        let prog = compile(&src, OptLevel::O2).unwrap();
        assert!(prog.function("main").is_some());
    }

    /// Identifier names never collide with internal machinery.
    #[test]
    fn arbitrary_identifiers_work(name in "[a-z_][a-z0-9_]{0,20}") {
        prop_assume!(![
            "int", "unsigned", "void", "if", "else", "while", "for",
            "return", "break", "continue", "nv", "catch", "main",
        ]
        .contains(&name.as_str()));
        // Builtins may not be redefined; that's an error, not a panic.
        let src = format!("int {name}(int a) {{ return a; }} int main() {{ return {name}(7); }}");
        if let Ok(prog) = compile(&src, OptLevel::O2) {
            assert!(prog.function(&name).is_some());
        }
    }
}

/// A handful of historically tricky inputs, pinned.
#[test]
fn regression_inputs_error_cleanly() {
    for src in [
        "",
        ";",
        "int",
        "int main(",
        "int main() { return",
        "int main() { @ }",
        "int main() { @expires() {} }",
        "@expires_after int x;",
        "int main() { int x = 0x; }",
        "int main() { /* }",
        "int a[0-1];",
        "int main() { return 2147483647 + 1; }", // wraps, must not panic
    ] {
        let _ = compile(src, OptLevel::O2);
    }
}
