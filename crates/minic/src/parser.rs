//! Recursive-descent parser for mini-C.

use crate::ast::{BinOp, Expr, FuncDecl, GlobalDecl, Stmt, Type, UnOp, Unit};
use crate::error::{CompileError, Pos};
use crate::lexer::{Tok, Token};

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.pos(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(CompileError::new(
                self.pos(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwUnsigned | Tok::KwVoid | Tok::KwNv
        )
    }

    fn parse_type(&mut self) -> Result<(Type, bool), CompileError> {
        let is_void = match self.peek() {
            Tok::KwInt | Tok::KwUnsigned => {
                self.bump();
                false
            }
            Tok::KwVoid => {
                self.bump();
                true
            }
            other => {
                return Err(CompileError::new(
                    self.pos(),
                    format!("expected type, found {other:?}"),
                ))
            }
        };
        let mut ty = Type::Int;
        while self.eat(&Tok::Star) {
            ty = ty.ptr_to();
        }
        let void_scalar = is_void && !ty.is_ptr();
        Ok((ty, void_scalar))
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_ternary()?;
        let pos = self.pos();
        let (op, timestamped) = match self.peek() {
            Tok::Assign => (None, false),
            Tok::AtAssign => (None, true),
            Tok::PlusAssign => (Some(BinOp::Add), false),
            Tok::MinusAssign => (Some(BinOp::Sub), false),
            Tok::StarAssign => (Some(BinOp::Mul), false),
            Tok::SlashAssign => (Some(BinOp::Div), false),
            _ => return Ok(lhs),
        };
        self.bump();
        let value = self.parse_assignment()?;
        Ok(Expr::Assign {
            target: Box::new(lhs),
            value: Box::new(value),
            op,
            timestamped,
            pos,
        })
    }

    fn parse_ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&Tok::Question) {
            let pos = cond.pos();
            let then = self.parse_expr()?;
            self.expect(&Tok::Colon, "`:`")?;
            let els = self.parse_ternary()?;
            Ok(Expr::Cond(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
                pos,
            ))
        } else {
            Ok(cond)
        }
    }

    fn bin_op(&self) -> Option<(BinOp, u8)> {
        // C precedence, higher binds tighter.
        Some(match self.peek() {
            Tok::OrOr => (BinOp::LogOr, 1),
            Tok::AndAnd => (BinOp::LogAnd, 2),
            Tok::Pipe => (BinOp::BitOr, 3),
            Tok::Caret => (BinOp::BitXor, 4),
            Tok::Amp => (BinOp::BitAnd, 5),
            Tok::EqEq => (BinOp::Eq, 6),
            Tok::NotEq => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Mod, 10),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.bin_op() {
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?), pos))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::BitNot,
                    Box::new(self.parse_unary()?),
                    pos,
                ))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::LogNot,
                    Box::new(self.parse_unary()?),
                    pos,
                ))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.parse_unary()?), pos))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.parse_unary()?), pos))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.parse_primary()?;
        loop {
            let pos = self.pos();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    e = Expr::Index(Box::new(e), Box::new(idx), pos);
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::PostIncDec {
                        target: Box::new(e),
                        inc: true,
                        pos,
                    };
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::PostIncDec {
                        target: Box::new(e),
                        inc: false,
                        pos,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::TimeLit(us) => {
                self.bump();
                Ok(Expr::TimeLit(us, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "`,` or `)`")?;
                        }
                    }
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => Err(CompileError::new(
                pos,
                format!("expected expression, found {other:?}"),
            )),
        }
    }

    // ---- statements ----

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(CompileError::new(self.pos(), "unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_local_decl(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        let (ty, is_void) = self.parse_type()?;
        if is_void {
            return Err(CompileError::new(pos, "`void` variables are not allowed"));
        }
        let name = self.expect_ident("variable name")?;
        let array_len = if self.eat(&Tok::LBracket) {
            let len = self.parse_const_len()?;
            self.expect(&Tok::RBracket, "`]`")?;
            Some(len)
        } else {
            None
        };
        let init = if self.eat(&Tok::Assign) {
            if array_len.is_some() {
                return Err(CompileError::new(
                    pos,
                    "local array initializers are not supported",
                ));
            }
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::Decl {
            name,
            ty,
            array_len,
            init,
            pos,
        })
    }

    fn parse_const_len(&mut self) -> Result<u32, CompileError> {
        let pos = self.pos();
        let e = self.parse_expr()?;
        let v = eval_const(&e)
            .ok_or_else(|| CompileError::new(pos, "array length must be a constant"))?;
        u32::try_from(v).map_err(|_| CompileError::new(pos, "array length out of range"))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::KwInt | Tok::KwUnsigned | Tok::KwVoid => self.parse_local_decl(),
            Tok::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let then = self.parse_stmt_as_block()?;
                let els = if self.eat(&Tok::KwElse) {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.parse_local_decl()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Return(value, pos))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Break(pos))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Continue(pos))
            }
            Tok::AtExpires => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let var = self.expect_ident("annotated variable name")?;
                // Allow `@expires(temperature[i])` — the guard is on the
                // variable; an index is parsed and discarded.
                if self.eat(&Tok::LBracket) {
                    let _ = self.parse_expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                }
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.parse_block()?;
                let catch = if self.eat(&Tok::KwCatch) {
                    Some(self.parse_block()?)
                } else {
                    None
                };
                Ok(Stmt::Expires {
                    var,
                    body,
                    catch,
                    pos,
                })
            }
            Tok::AtTimely => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let deadline = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.parse_block()?;
                let els = if self.eat(&Tok::KwElse) {
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::Timely {
                    deadline,
                    body,
                    els,
                    pos,
                })
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == &Tok::LBrace {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    // ---- top level ----

    fn parse_global_tail(
        &mut self,
        nv: bool,
        expires_after_us: Option<u64>,
        ty: Type,
        name: String,
        pos: Pos,
    ) -> Result<GlobalDecl, CompileError> {
        let array_len = if self.eat(&Tok::LBracket) {
            let len = self.parse_const_len()?;
            self.expect(&Tok::RBracket, "`]`")?;
            Some(len)
        } else {
            None
        };
        let mut init = Vec::new();
        if self.eat(&Tok::Assign) {
            if self.eat(&Tok::LBrace) {
                loop {
                    let e = self.parse_expr()?;
                    let v = eval_const(&e).ok_or_else(|| {
                        CompileError::new(pos, "global initializers must be constant")
                    })?;
                    init.push(v);
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    self.expect(&Tok::Comma, "`,` or `}`")?;
                }
            } else {
                let e = self.parse_expr()?;
                let v = eval_const(&e).ok_or_else(|| {
                    CompileError::new(pos, "global initializers must be constant")
                })?;
                init.push(v);
            }
        }
        self.expect(&Tok::Semi, "`;`")?;
        if let Some(len) = array_len {
            if init.len() > len as usize {
                return Err(CompileError::new(pos, "too many initializers for array"));
            }
        } else if init.len() > 1 {
            return Err(CompileError::new(pos, "scalar with brace initializer list"));
        }
        Ok(GlobalDecl {
            name,
            ty,
            array_len,
            nv,
            init,
            expires_after_us,
            pos,
        })
    }

    fn parse_unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        loop {
            if self.peek() == &Tok::Eof {
                return Ok(unit);
            }
            // `@expires_after = 5s` attaches to the next global.
            let expires_after_us = if self.eat(&Tok::AtExpiresAfter) {
                self.expect(&Tok::Assign, "`=` after @expires_after")?;
                let pos = self.pos();
                match self.bump() {
                    Tok::TimeLit(us) => Some(us),
                    Tok::Int(0) => Some(0),
                    other => {
                        return Err(CompileError::new(
                            pos,
                            format!("expected time literal (e.g. `5s`), found {other:?}"),
                        ))
                    }
                }
            } else {
                None
            };
            let nv = self.eat(&Tok::KwNv);
            let pos = self.pos();
            let (ty, is_void) = self.parse_type()?;
            let name = self.expect_ident("declaration name")?;
            if self.peek() == &Tok::LParen {
                if expires_after_us.is_some() {
                    return Err(CompileError::new(
                        pos,
                        "@expires_after applies to variables, not functions",
                    ));
                }
                if nv {
                    return Err(CompileError::new(pos, "`nv` applies to variables"));
                }
                self.bump();
                let mut params = Vec::new();
                if !self.eat(&Tok::RParen) {
                    // Allow `void` parameter list.
                    if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
                        self.bump();
                        self.bump();
                    } else {
                        loop {
                            let (pty, pvoid) = self.parse_type()?;
                            if pvoid {
                                return Err(CompileError::new(
                                    self.pos(),
                                    "`void` parameter in non-empty list",
                                ));
                            }
                            let pname = self.expect_ident("parameter name")?;
                            // Array parameters decay to pointers.
                            let pty = if self.eat(&Tok::LBracket) {
                                if !self.eat(&Tok::RBracket) {
                                    let _ = self.parse_const_len()?;
                                    self.expect(&Tok::RBracket, "`]`")?;
                                }
                                pty.ptr_to()
                            } else {
                                pty
                            };
                            params.push((pname, pty));
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "`,` or `)`")?;
                        }
                    }
                }
                let body = self.parse_block()?;
                unit.functions.push(FuncDecl {
                    name,
                    params,
                    is_void,
                    body,
                    pos,
                });
            } else {
                if is_void {
                    return Err(CompileError::new(pos, "`void` variables are not allowed"));
                }
                unit.globals
                    .push(self.parse_global_tail(nv, expires_after_us, ty, name, pos)?);
            }
        }
    }
}

/// Folds a constant expression to a value (for array lengths and global
/// initializers). Returns `None` if not constant.
#[must_use]
pub fn eval_const(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v, _) => Some(*v),
        Expr::TimeLit(us, _) => Some(*us as i64 / 1_000), // milliseconds
        Expr::Unary(UnOp::Neg, e, _) => Some(eval_const(e)?.wrapping_neg()),
        Expr::Unary(UnOp::BitNot, e, _) => Some(!eval_const(e)?),
        Expr::Unary(UnOp::LogNot, e, _) => Some(i64::from(eval_const(e)? == 0)),
        Expr::Cond(c, t, f, _) => {
            if eval_const(c)? != 0 {
                eval_const(t)
            } else {
                eval_const(f)
            }
        }
        Expr::Binary(op, l, r, _) => {
            let l = eval_const(l)?;
            let r = eval_const(r)?;
            Some(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => l.checked_div(r)?,
                BinOp::Mod => l.checked_rem(r)?,
                BinOp::BitAnd => l & r,
                BinOp::BitOr => l | r,
                BinOp::BitXor => l ^ r,
                BinOp::Shl => ((l as i32) << ((r as u32) & 31)) as i64,
                BinOp::Shr => ((l as i32) >> ((r as u32) & 31)) as i64,
                BinOp::Eq => i64::from(l == r),
                BinOp::Ne => i64::from(l != r),
                BinOp::Lt => i64::from(l < r),
                BinOp::Le => i64::from(l <= r),
                BinOp::Gt => i64::from(l > r),
                BinOp::Ge => i64::from(l >= r),
                BinOp::LogAnd => i64::from(l != 0 && r != 0),
                BinOp::LogOr => i64::from(l != 0 || r != 0),
            })
        }
        _ => None,
    }
}

/// Parses a token stream into a translation unit.
///
/// # Errors
///
/// Returns a [`CompileError`] on the first syntax error.
pub fn parse(tokens: Vec<Token>) -> Result<Unit, CompileError> {
    assert!(
        matches!(tokens.last(), Some(t) if t.tok == Tok::Eof),
        "token stream must end with Eof"
    );
    Parser { toks: tokens, i: 0 }.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Unit, CompileError> {
        parse(lex(src)?)
    }

    #[test]
    fn parses_minimal_main() {
        let u = parse_src("int main() { return 0; }").unwrap();
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].name, "main");
        assert!(!u.functions[0].is_void);
    }

    #[test]
    fn parses_globals_with_nv_and_arrays() {
        let u = parse_src("nv int count = 3; int buf[8]; int pair[4] = {1,2};").unwrap();
        assert!(u.globals[0].nv);
        assert_eq!(u.globals[0].init, vec![3]);
        assert_eq!(u.globals[1].array_len, Some(8));
        assert!(u.globals[1].init.is_empty());
        assert_eq!(u.globals[2].init, vec![1, 2]);
    }

    #[test]
    fn parses_expires_after_annotation() {
        let u = parse_src("@expires_after = 200ms\nint accel[6];").unwrap();
        assert_eq!(u.globals[0].expires_after_us, Some(200_000));
    }

    #[test]
    fn parses_pointer_types_and_params() {
        let u = parse_src("int deref(int *p) { return *p; } int main() { return 0; }").unwrap();
        assert_eq!(u.functions[0].params[0].1, Type::Int.ptr_to());
    }

    #[test]
    fn array_params_decay() {
        let u = parse_src("void f(int a[]) { a[0] = 1; } int main(){return 0;}").unwrap();
        assert_eq!(u.functions[0].params[0].1, Type::Int.ptr_to());
        assert!(u.functions[0].is_void);
    }

    #[test]
    fn parses_control_flow() {
        let u = parse_src(
            "int main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
                while (s > 100) { s = s - 1; break; }
                return s;
            }",
        )
        .unwrap();
        assert_eq!(u.functions[0].body.len(), 4);
    }

    #[test]
    fn parses_timely_and_expires_blocks() {
        let u = parse_src(
            "@expires_after = 1s
             int temp;
             int main() {
               temp @= sample();
               @expires(temp) { send(temp); } catch { led(1); }
               @timely(200ms) { send(1); } else { led(0); }
               return 0;
             }",
        )
        .unwrap();
        let body = &u.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Expr(Expr::Assign {
                timestamped: true,
                ..
            })
        ));
        assert!(matches!(&body[1], Stmt::Expires { catch: Some(_), .. }));
        assert!(matches!(&body[2], Stmt::Timely { .. }));
    }

    #[test]
    fn expires_accepts_indexed_guard() {
        let u = parse_src(
            "@expires_after = 1s
             int t[4];
             int main() { @expires(t[2]) { led(1); } return 0; }",
        )
        .unwrap();
        assert!(matches!(&u.functions[0].body[0], Stmt::Expires { var, .. } if var == "t"));
    }

    #[test]
    fn precedence_is_c_like() {
        // 1 + 2 * 3 == 7, and == binds looser than +.
        let u = parse_src("int main() { return 1 + 2 * 3 == 7; }").unwrap();
        let Stmt::Return(Some(e), _) = &u.functions[0].body[0] else {
            panic!("expected return");
        };
        assert_eq!(eval_const(e), Some(1));
    }

    #[test]
    fn ternary_and_logical() {
        let u = parse_src("int main() { return 1 && 0 ? 10 : 2 || 0; }").unwrap();
        let Stmt::Return(Some(e), _) = &u.functions[0].body[0] else {
            panic!();
        };
        assert_eq!(eval_const(e), Some(1)); // (1&&0) ? 10 : (2||0) == 1
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_src("int main( { return 0; }").is_err());
        assert!(parse_src("int main() { return 0 }").is_err());
        assert!(parse_src("@expires_after = 5 int x;").is_err()); // needs time literal
        assert!(parse_src("void x;").is_err());
        assert!(parse_src("@expires_after = 1s int f() { return 0; }").is_err());
    }

    #[test]
    fn postincrement_in_index() {
        let u = parse_src("int a[4]; int i; int main() { a[i++] = sample(); return 0; }").unwrap();
        assert_eq!(u.functions.len(), 1);
    }

    #[test]
    fn const_folding_handles_shifts_and_division() {
        assert_eq!(
            eval_const(&parse_expr_src("(1 << 4) / 2 % 7")),
            Some((16 / 2) % 7)
        );
        assert_eq!(eval_const(&parse_expr_src("10 / 0")), None);
    }

    fn parse_expr_src(src: &str) -> Expr {
        let u = parse_src(&format!("int main() {{ return {src}; }}")).unwrap();
        let Stmt::Return(Some(e), _) = &u.functions[0].body[0] else {
            panic!();
        };
        e.clone()
    }
}
