//! The compiled program image.

use std::fmt;

use crate::isa::{Instr, VarId};

/// Bytes of frame header: return pc, caller fp, caller sp.
pub const FRAME_HEADER_BYTES: u32 = 12;

/// Which instrumentation pass (if any) has been applied to a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Instrumentation {
    /// Plain compiled code; runs on continuous power, restarts from
    /// `main` after a power failure.
    #[default]
    None,
    /// TICS: stack segmentation checks, logged stores, checkpoints.
    Tics,
    /// MementOS-style voltage-check checkpoints.
    Mementos,
    /// Chinchilla-style local-to-global promotion.
    Chinchilla,
    /// Ratchet-style idempotent-boundary checkpoints.
    Ratchet,
    /// Task-based kernel (Alpaca/InK/MayFly): logged stores plus commit
    /// points at task boundaries.
    TaskBased,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Number of `int`-sized arguments.
    pub n_args: u16,
    /// Bytes of local variables (beyond the arguments).
    pub locals_bytes: u16,
    /// Maximum operand-stack depth in 4-byte words.
    pub max_ostack: u16,
    /// The body.
    pub code: Vec<Instr>,
    /// Set by the TICS pass: the entry carries a stack-availability check
    /// (adds code size and a per-call cycle cost).
    pub entry_checked: bool,
}

impl Function {
    /// Total frame size in bytes: header + args + locals + operand stack.
    #[must_use]
    pub fn frame_size(&self) -> u32 {
        FRAME_HEADER_BYTES
            + 4 * u32::from(self.n_args)
            + u32::from(self.locals_bytes)
            + 4 * u32::from(self.max_ostack)
    }

    /// Bytes of arguments.
    #[must_use]
    pub fn arg_bytes(&self) -> u32 {
        4 * u32::from(self.n_args)
    }

    /// Encoded size of the body in bytes.
    #[must_use]
    pub fn text_bytes(&self) -> u32 {
        let body: u32 = self.code.iter().map(Instr::encoded_size).sum();
        // An entry check compiles to a compare + conditional call (the
        // paper's lines 2-3 of Figure 7).
        body + if self.entry_checked { 10 } else { 0 }
    }
}

/// A global variable in `.data` (initialized) or `.bss` (zeroed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalVar {
    /// Source-level name.
    pub name: String,
    /// Byte offset in the data segment.
    pub offset: u32,
    /// Size in bytes (arrays are `4 * len`).
    pub size: u32,
    /// Declared `nv`: survives reboot even under the bare runtime (the
    /// paper's Figure 2 `NV` qualifier).
    pub nv: bool,
    /// Initializer words (`.data`), or empty for `.bss`.
    pub init: Vec<i32>,
    /// Time-annotation id if declared with `@expires_after`.
    pub var_id: Option<VarId>,
}

impl GlobalVar {
    /// Whether the variable lives in `.data` (has an initializer).
    #[must_use]
    pub fn is_data(&self) -> bool {
        !self.init.is_empty()
    }
}

/// A time-annotated variable (declared with `@expires_after`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotatedVar {
    /// Index into [`Program::globals`].
    pub global_index: u32,
    /// Time-to-live in microseconds (`@expires_after = 0s` means "carries
    /// a timestamp but never expires").
    pub ttl_us: u64,
}

/// A complete compiled (and possibly instrumented) program image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// All functions; indices are [`Instr::Call`] operands.
    pub functions: Vec<Function>,
    /// All globals, with assigned data-segment offsets.
    pub globals: Vec<GlobalVar>,
    /// Total data-segment size in bytes.
    pub globals_size: u32,
    /// Index of `main` in [`Program::functions`].
    pub entry: u16,
    /// Time-annotated variables, indexed by [`VarId`].
    pub annotated: Vec<AnnotatedVar>,
    /// Which instrumentation pass has been applied.
    pub instrumentation: Instrumentation,
    /// Fixed `.text` footprint of the runtime library the instrumentation
    /// links in (checkpointing code, memory manager, ...).
    pub runtime_text_bytes: u32,
    /// Fixed `.data` footprint of the runtime library (excluding
    /// configurable buffers, as in the paper's Table 3 note).
    pub runtime_data_bytes: u32,
    /// Whether any function participates in a call-graph cycle. Recorded
    /// by codegen so passes that cannot support recursion (Chinchilla)
    /// can reject the program (paper §5.3.1).
    pub has_recursion: bool,
    /// Whether the *source* used pointer syntax (declarations, `*`, `&`).
    /// Task-based kernels reject such programs (static memory model,
    /// Table 5); plain array indexing does not count.
    pub uses_pointers: bool,
}

impl Program {
    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<(u16, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (i as u16, f))
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total `.text` bytes: all function bodies plus the runtime library.
    #[must_use]
    pub fn text_bytes(&self) -> u32 {
        self.functions.iter().map(Function::text_bytes).sum::<u32>() + self.runtime_text_bytes
    }

    /// Total `.data` bytes: program globals, per-annotated-variable
    /// timestamps, plus the runtime library's static data.
    #[must_use]
    pub fn data_bytes(&self) -> u32 {
        self.globals_size + 8 * self.annotated.len() as u32 + self.runtime_data_bytes
    }

    /// The largest frame of any function — the lower bound for a TICS
    /// stack-segment size (§3.1.1: "maximum stack frame in a program
    /// dictates the minimum block size").
    #[must_use]
    pub fn max_frame_size(&self) -> u32 {
        self.functions
            .iter()
            .map(Function::frame_size)
            .max()
            .unwrap_or(0)
    }

    /// Disassembles the whole program for debugging and golden tests.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.functions.iter().enumerate() {
            use fmt::Write as _;
            let _ = writeln!(
                out,
                "fn {} (f{}) args={} locals={}B ostack={} frame={}B{}",
                f.name,
                i,
                f.n_args,
                f.locals_bytes,
                f.max_ostack,
                f.frame_size(),
                if f.entry_checked { " [checked]" } else { "" },
            );
            for (pc, instr) in f.code.iter().enumerate() {
                let _ = writeln!(out, "  {pc:4}: {instr}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn sample_fn() -> Function {
        Function {
            name: "f".into(),
            n_args: 2,
            locals_bytes: 8,
            max_ostack: 3,
            code: vec![Instr::Const(1), Instr::Ret],
            entry_checked: false,
        }
    }

    #[test]
    fn frame_size_accounts_for_all_parts() {
        let f = sample_fn();
        assert_eq!(f.frame_size(), 12 + 8 + 8 + 12);
        assert_eq!(f.arg_bytes(), 8);
    }

    #[test]
    fn entry_check_adds_text() {
        let mut f = sample_fn();
        let plain = f.text_bytes();
        f.entry_checked = true;
        assert_eq!(f.text_bytes(), plain + 10);
    }

    #[test]
    fn program_sizes_sum_components() {
        let mut p = Program {
            functions: vec![sample_fn()],
            globals: vec![GlobalVar {
                name: "g".into(),
                offset: 0,
                size: 4,
                nv: false,
                init: vec![7],
                var_id: Some(0),
            }],
            globals_size: 4,
            entry: 0,
            annotated: vec![AnnotatedVar {
                global_index: 0,
                ttl_us: 1_000,
            }],
            ..Program::default()
        };
        p.runtime_text_bytes = 100;
        p.runtime_data_bytes = 20;
        assert_eq!(p.text_bytes(), sample_fn().text_bytes() + 100);
        assert_eq!(p.data_bytes(), 4 + 8 + 20);
        assert_eq!(p.max_frame_size(), sample_fn().frame_size());
    }

    #[test]
    fn lookup_by_name() {
        let p = Program {
            functions: vec![sample_fn()],
            ..Program::default()
        };
        assert_eq!(p.function("f").unwrap().0, 0);
        assert!(p.function("g").is_none());
        assert!(p.global("g").is_none());
    }

    #[test]
    fn disassembly_mentions_function_and_ops() {
        let p = Program {
            functions: vec![sample_fn()],
            ..Program::default()
        };
        let d = p.disassemble();
        assert!(d.contains("fn f"));
        assert!(d.contains("const 1"));
        assert!(d.contains("ret"));
    }
}
