//! Bytecode generation from the validated AST.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, FuncDecl, Stmt, Type, UnOp};
use crate::error::{CompileError, Pos};
use crate::isa::{Instr, Syscall, VarId};
use crate::program::{AnnotatedVar, Function, GlobalVar, Program};
use crate::sema::CheckedUnit;

/// Generates an uninstrumented [`Program`] from a checked unit.
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs the backend cannot express
/// (e.g. an indirect assignment used as a value, or a frame exceeding the
/// 16-bit local-offset range).
pub fn generate(checked: &CheckedUnit<'_>) -> Result<Program, CompileError> {
    let unit = checked.unit;

    // ---- global layout ----
    let mut globals = Vec::new();
    let mut annotated = Vec::new();
    let mut offset = 0u32;
    let mut global_map: HashMap<&str, usize> = HashMap::new();
    for g in &unit.globals {
        let size = 4 * g.array_len.unwrap_or(1);
        let var_id = g.expires_after_us.map(|ttl_us| {
            annotated.push(AnnotatedVar {
                global_index: globals.len() as u32,
                ttl_us,
            });
            (annotated.len() - 1) as VarId
        });
        global_map.insert(g.name.as_str(), globals.len());
        globals.push(GlobalVar {
            name: g.name.clone(),
            offset,
            size,
            nv: g.nv,
            init: g.init.iter().map(|v| *v as i32).collect(),
            var_id,
        });
        offset += size;
    }

    // ---- function table ----
    let mut func_sigs: HashMap<&str, (u16, u16)> = HashMap::new();
    for (i, f) in unit.functions.iter().enumerate() {
        func_sigs.insert(f.name.as_str(), (i as u16, f.params.len() as u16));
    }

    let mut global_types: HashMap<&str, (Type, bool)> = HashMap::new();
    for g in &unit.globals {
        global_types.insert(g.name.as_str(), (g.ty.clone(), g.array_len.is_some()));
    }

    let mut functions = Vec::new();
    for f in &unit.functions {
        let ctx = Ctx {
            globals: &globals,
            global_map: &global_map,
            global_types: &global_types,
            func_sigs: &func_sigs,
        };
        functions.push(FnGen::new(&ctx, f).generate()?);
    }

    let entry = func_sigs["main"].0;
    Ok(Program {
        functions,
        globals,
        globals_size: offset,
        entry,
        annotated,
        has_recursion: checked.has_recursion(),
        uses_pointers: checked.uses_pointers,
        ..Program::default()
    })
}

struct Ctx<'a> {
    globals: &'a [GlobalVar],
    global_map: &'a HashMap<&'a str, usize>,
    global_types: &'a HashMap<&'a str, (Type, bool)>,
    func_sigs: &'a HashMap<&'a str, (u16, u16)>,
}

#[derive(Debug, Clone)]
struct Local {
    off: u16,
    ty: Type,
    is_array: bool,
}

#[derive(Debug, Clone, Copy)]
enum VarRef {
    Local(u16),
    Global(u32),
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct FnGen<'a, 'b> {
    ctx: &'b Ctx<'a>,
    decl: &'a FuncDecl,
    code: Vec<Instr>,
    scopes: Vec<HashMap<String, Local>>,
    next_off: u32,
    max_off: u32,
    depth: i32,
    max_depth: i32,
    loops: Vec<LoopCtx>,
}

impl<'a, 'b> FnGen<'a, 'b> {
    fn new(ctx: &'b Ctx<'a>, decl: &'a FuncDecl) -> FnGen<'a, 'b> {
        let mut scope = HashMap::new();
        for (i, (name, ty)) in decl.params.iter().enumerate() {
            scope.insert(
                name.clone(),
                Local {
                    off: (4 * i) as u16,
                    ty: ty.clone(),
                    is_array: false,
                },
            );
        }
        let arg_bytes = 4 * decl.params.len() as u32;
        FnGen {
            ctx,
            decl,
            code: Vec::new(),
            scopes: vec![scope],
            next_off: arg_bytes,
            max_off: arg_bytes,
            depth: 0,
            max_depth: 0,
            loops: Vec::new(),
        }
    }

    fn generate(mut self) -> Result<Function, CompileError> {
        self.gen_block(&self.decl.body)?;
        // Fall off the end: return 0.
        self.emit(Instr::Const(0));
        self.emit(Instr::Ret);
        let locals_bytes = self.max_off - 4 * self.decl.params.len() as u32;
        if self.max_off > u32::from(u16::MAX) {
            return Err(CompileError::new(
                self.decl.pos,
                format!("frame of `{}` exceeds addressable size", self.decl.name),
            ));
        }
        Ok(Function {
            name: self.decl.name.clone(),
            n_args: self.decl.params.len() as u16,
            locals_bytes: locals_bytes as u16,
            max_ostack: self.max_depth.max(1) as u16,
            code: self.code,
            entry_checked: false,
        })
    }

    // ---- emission helpers ----

    fn emit(&mut self, i: Instr) {
        self.depth += self.effect(&i);
        self.max_depth = self.max_depth.max(self.depth);
        debug_assert!(self.depth >= 0, "operand stack underflow generating {i}");
        self.code.push(i);
    }

    fn effect(&self, i: &Instr) -> i32 {
        match i {
            Instr::Const(_)
            | Instr::LoadLocal(_)
            | Instr::LoadGlobal(_)
            | Instr::AddrLocal(_)
            | Instr::AddrGlobal(_)
            | Instr::Dup
            | Instr::ExpiresCheck(_) => 1,
            Instr::StoreLocal(_)
            | Instr::StoreGlobal(_)
            | Instr::StoreGlobalLogged(_)
            | Instr::Pop
            | Instr::Jz(_)
            | Instr::Jnz(_)
            | Instr::Ret => -1,
            Instr::StoreInd | Instr::StoreIndLogged => -2,
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Mod
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::Shl
            | Instr::Shr
            | Instr::Eq
            | Instr::Ne
            | Instr::Lt
            | Instr::Le
            | Instr::Gt
            | Instr::Ge => -1,
            Instr::Call(f) => {
                let n_args = self
                    .ctx
                    .func_sigs
                    .values()
                    .find(|(idx, _)| *idx == *f)
                    .map_or(0, |(_, n)| *n);
                1 - i32::from(n_args)
            }
            Instr::Syscall(s) => 1 - i32::from(s.arg_count()),
            _ => 0,
        }
    }

    /// Emits a jump with a placeholder target; returns the patch index.
    fn emit_jump(&mut self, make: fn(u32) -> Instr) -> usize {
        self.emit(make(u32::MAX));
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at].set_jump_target(target);
    }

    fn patch_here(&mut self, at: usize) {
        let t = self.here();
        self.patch(at, t);
    }

    fn set_depth(&mut self, d: i32) {
        self.depth = d;
    }

    // ---- name resolution ----

    fn lookup(&self, name: &str) -> Option<(VarRef, Type, bool)> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Some((VarRef::Local(l.off), l.ty.clone(), l.is_array));
            }
        }
        let idx = *self.ctx.global_map.get(name)?;
        let g = &self.ctx.globals[idx];
        let (ty, is_array) = self
            .ctx
            .global_types
            .get(name)
            .cloned()
            .unwrap_or((Type::Int, g.size > 4));
        Some((VarRef::Global(g.offset), ty, is_array))
    }

    fn global_var_id(&self, name: &str) -> Option<VarId> {
        let idx = *self.ctx.global_map.get(name)?;
        self.ctx.globals[idx].var_id
    }

    // ---- types (for pointer scaling) ----

    fn type_of(&self, e: &Expr) -> Type {
        match e {
            Expr::Var(name, _) => match self.lookup_full(name) {
                Some((ty, true)) => ty.ptr_to(),
                Some((ty, false)) => ty,
                None => Type::Int,
            },
            Expr::Index(b, _, _) | Expr::Deref(b, _) => match self.type_of(b) {
                Type::Ptr(t) => *t,
                Type::Int => Type::Int,
            },
            Expr::AddrOf(b, _) => self.type_of(b).ptr_to(),
            Expr::Binary(BinOp::Add | BinOp::Sub, l, r, _) => {
                let lt = self.type_of(l);
                if lt.is_ptr() {
                    lt
                } else {
                    let rt = self.type_of(r);
                    if rt.is_ptr() {
                        rt
                    } else {
                        Type::Int
                    }
                }
            }
            Expr::Assign { target, .. } => self.type_of(target),
            Expr::Cond(_, t, _, _) => self.type_of(t),
            _ => Type::Int,
        }
    }

    fn lookup_full(&self, name: &str) -> Option<(Type, bool)> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Some((l.ty.clone(), l.is_array));
            }
        }
        self.ctx.global_types.get(name).cloned()
    }

    // ---- statements ----

    fn gen_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        let saved = self.next_off;
        for s in stmts {
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        // Block-scoped locals can reuse space once the block exits.
        self.next_off = saved;
        Ok(())
    }

    fn alloc_local(&mut self, name: &str, ty: Type, array_len: Option<u32>) -> u16 {
        let size = 4 * array_len.unwrap_or(1);
        let off = self.next_off;
        self.next_off += size;
        self.max_off = self.max_off.max(self.next_off);
        self.scopes.last_mut().expect("scope").insert(
            name.to_owned(),
            Local {
                off: off as u16,
                ty,
                is_array: array_len.is_some(),
            },
        );
        off as u16
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => self.gen_expr_stmt(e),
            Stmt::Decl {
                name,
                ty,
                array_len,
                init,
                ..
            } => {
                let off = self.alloc_local(name, ty.clone(), *array_len);
                if let Some(init) = init {
                    self.gen_expr(init)?;
                    self.emit(Instr::StoreLocal(off));
                }
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                self.gen_expr(cond)?;
                let jz = self.emit_jump(Instr::Jz);
                self.gen_block(then)?;
                if els.is_empty() {
                    self.patch_here(jz);
                } else {
                    let jend = self.emit_jump(Instr::Jmp);
                    self.patch_here(jz);
                    self.gen_block(els)?;
                    self.patch_here(jend);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                self.gen_expr(cond)?;
                let jz = self.emit_jump(Instr::Jz);
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                });
                self.gen_block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                for p in ctx.continue_patches {
                    self.patch(p, head);
                }
                self.emit(Instr::Jmp(head));
                self.patch_here(jz);
                for p in ctx.break_patches {
                    self.patch_here(p);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let saved = self.next_off;
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let head = self.here();
                let jz = if let Some(cond) = cond {
                    self.gen_expr(cond)?;
                    Some(self.emit_jump(Instr::Jz))
                } else {
                    None
                };
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                });
                self.gen_block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let step_at = self.here();
                for p in ctx.continue_patches {
                    self.patch(p, step_at);
                }
                if let Some(step) = step {
                    self.gen_expr_stmt(step)?;
                }
                self.emit(Instr::Jmp(head));
                if let Some(jz) = jz {
                    self.patch_here(jz);
                }
                for p in ctx.break_patches {
                    self.patch_here(p);
                }
                self.scopes.pop();
                self.next_off = saved;
                Ok(())
            }
            Stmt::Return(v, _) => {
                match v {
                    Some(v) => self.gen_expr(v)?,
                    None => self.emit(Instr::Const(0)),
                }
                self.emit(Instr::Ret);
                self.set_depth(0);
                Ok(())
            }
            Stmt::Break(pos) => {
                let p = self.emit_jump(Instr::Jmp);
                self.loops
                    .last_mut()
                    .ok_or_else(|| CompileError::new(*pos, "break outside loop"))?
                    .break_patches
                    .push(p);
                Ok(())
            }
            Stmt::Continue(pos) => {
                let p = self.emit_jump(Instr::Jmp);
                self.loops
                    .last_mut()
                    .ok_or_else(|| CompileError::new(*pos, "continue outside loop"))?
                    .continue_patches
                    .push(p);
                Ok(())
            }
            Stmt::Block(b) => self.gen_block(b),
            Stmt::Expires {
                var,
                body,
                catch,
                pos,
            } => {
                let var_id = self
                    .global_var_id(var)
                    .ok_or_else(|| CompileError::new(*pos, format!("`{var}` is not annotated")))?;
                match catch {
                    None => {
                        // Guard form (§3.2.3 "simple @expires"): atomic
                        // freshness test + body, checkpoint at the end.
                        self.emit(Instr::AtomicBegin);
                        self.emit(Instr::ExpiresCheck(var_id));
                        let jz = self.emit_jump(Instr::Jz);
                        self.gen_block(body)?;
                        self.patch_here(jz);
                        self.emit(Instr::AtomicEnd);
                        self.emit(Instr::Checkpoint(crate::isa::CkptSite::TimeBlockEnd));
                    }
                    Some(catch_body) => {
                        // Exception form: runtime arms an expiration
                        // timer; on firing it rolls the block back and
                        // transfers control to the catch target.
                        let begin_at = self.here() as usize;
                        self.emit(Instr::ExpiresBlockBegin(var_id, u32::MAX));
                        self.gen_block(body)?;
                        self.emit(Instr::ExpiresBlockEnd);
                        let jend = self.emit_jump(Instr::Jmp);
                        let catch_target = self.here();
                        if let Instr::ExpiresBlockBegin(_, t) = &mut self.code[begin_at] {
                            *t = catch_target;
                        }
                        self.gen_block(catch_body)?;
                        self.patch_here(jend);
                    }
                }
                Ok(())
            }
            Stmt::Timely {
                deadline,
                body,
                els,
                ..
            } => {
                self.emit(Instr::AtomicBegin);
                self.gen_expr(deadline)?;
                self.emit(Instr::TimelyCheck);
                // TimelyCheck pops the deadline and pushes the verdict.
                let jz = self.emit_jump(Instr::Jz);
                self.gen_block(body)?;
                self.emit(Instr::Checkpoint(crate::isa::CkptSite::TimeBlockEnd));
                self.emit(Instr::AtomicEnd);
                let jend = self.emit_jump(Instr::Jmp);
                self.patch_here(jz);
                self.emit(Instr::AtomicEnd);
                self.gen_block(els)?;
                self.patch_here(jend);
                Ok(())
            }
        }
    }

    // ---- expressions ----

    /// Generates an expression in statement position (no value left).
    fn gen_expr_stmt(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Assign {
                target,
                value,
                op,
                timestamped,
                pos,
            } => {
                if *timestamped {
                    self.gen_timestamped_assign(target, value, *op, *pos)
                } else {
                    self.gen_assign(target, value, *op, false, *pos)
                }
            }
            Expr::PostIncDec { target, inc, pos } => self.gen_incdec(target, *inc, false, *pos),
            _ => {
                self.gen_expr(e)?;
                self.emit(Instr::Pop);
                Ok(())
            }
        }
    }

    /// Generates an expression, leaving exactly one value on the stack.
    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(v, _) => {
                self.emit(Instr::Const(*v as i32));
                Ok(())
            }
            Expr::TimeLit(us, _) => {
                // Time literals in expressions are millisecond counts
                // (matching the `time_ms()` builtin).
                self.emit(Instr::Const((*us / 1_000) as i32));
                Ok(())
            }
            Expr::Var(name, pos) => {
                let (vr, _, is_array) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(*pos, format!("undefined `{name}`")))?;
                match (vr, is_array) {
                    (VarRef::Local(off), false) => self.emit(Instr::LoadLocal(off)),
                    (VarRef::Local(off), true) => self.emit(Instr::AddrLocal(off)),
                    (VarRef::Global(off), false) => self.emit(Instr::LoadGlobal(off)),
                    (VarRef::Global(off), true) => self.emit(Instr::AddrGlobal(off)),
                }
                Ok(())
            }
            Expr::Index(..) | Expr::Deref(..) => {
                self.gen_addr(e)?;
                self.emit(Instr::LoadInd);
                Ok(())
            }
            Expr::AddrOf(inner, _) => self.gen_addr(inner),
            Expr::Unary(op, inner, _) => {
                self.gen_expr(inner)?;
                self.emit(match op {
                    UnOp::Neg => Instr::Neg,
                    UnOp::BitNot => Instr::BitNot,
                    UnOp::LogNot => Instr::LogNot,
                });
                Ok(())
            }
            Expr::Binary(BinOp::LogAnd, l, r, _) => {
                self.gen_expr(l)?;
                let jz1 = self.emit_jump(Instr::Jz);
                self.gen_expr(r)?;
                let jz2 = self.emit_jump(Instr::Jz);
                self.emit(Instr::Const(1));
                let jend = self.emit_jump(Instr::Jmp);
                self.patch_here(jz1);
                self.patch_here(jz2);
                self.set_depth(self.depth - 1);
                self.emit(Instr::Const(0));
                self.patch_here(jend);
                Ok(())
            }
            Expr::Binary(BinOp::LogOr, l, r, _) => {
                self.gen_expr(l)?;
                let jnz1 = self.emit_jump(Instr::Jnz);
                self.gen_expr(r)?;
                let jnz2 = self.emit_jump(Instr::Jnz);
                self.emit(Instr::Const(0));
                let jend = self.emit_jump(Instr::Jmp);
                self.patch_here(jnz1);
                self.patch_here(jnz2);
                self.set_depth(self.depth - 1);
                self.emit(Instr::Const(1));
                self.patch_here(jend);
                Ok(())
            }
            Expr::Binary(op, l, r, _) => {
                let lt = self.type_of(l);
                let rt = self.type_of(r);
                let scale_r = lt.is_ptr() && !rt.is_ptr() && matches!(op, BinOp::Add | BinOp::Sub);
                let scale_l = !lt.is_ptr() && rt.is_ptr() && matches!(op, BinOp::Add);
                let diff_ptrs = lt.is_ptr() && rt.is_ptr() && matches!(op, BinOp::Sub);
                self.gen_expr(l)?;
                if scale_l {
                    self.emit(Instr::Const(4));
                    self.emit(Instr::Mul);
                }
                self.gen_expr(r)?;
                if scale_r {
                    self.emit(Instr::Const(4));
                    self.emit(Instr::Mul);
                }
                self.emit(binop_instr(*op));
                if diff_ptrs {
                    self.emit(Instr::Const(4));
                    self.emit(Instr::Div);
                }
                Ok(())
            }
            Expr::Cond(c, t, f, _) => {
                self.gen_expr(c)?;
                let jz = self.emit_jump(Instr::Jz);
                self.gen_expr(t)?;
                let jend = self.emit_jump(Instr::Jmp);
                self.patch_here(jz);
                self.set_depth(self.depth - 1);
                self.gen_expr(f)?;
                self.patch_here(jend);
                Ok(())
            }
            Expr::Assign {
                target,
                value,
                op,
                timestamped,
                pos,
            } => {
                if *timestamped {
                    return Err(CompileError::new(
                        *pos,
                        "`@=` cannot be used as a value; use it as a statement",
                    ));
                }
                self.gen_assign(target, value, *op, true, *pos)
            }
            Expr::Call { name, args, pos } => {
                for a in args {
                    self.gen_expr(a)?;
                }
                if let Some(sys) = Syscall::from_name(name) {
                    self.emit(Instr::Syscall(sys));
                } else {
                    let (idx, _) =
                        *self.ctx.func_sigs.get(name.as_str()).ok_or_else(|| {
                            CompileError::new(*pos, format!("undefined `{name}`"))
                        })?;
                    self.emit(Instr::Call(idx));
                }
                Ok(())
            }
            Expr::PostIncDec { target, inc, pos } => self.gen_incdec(target, *inc, true, *pos),
        }
    }

    /// Generates the address of an lvalue (or array/pointer designator).
    fn gen_addr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Var(name, pos) => {
                let (vr, ty, is_array) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(*pos, format!("undefined `{name}`")))?;
                let _ = ty;
                match (vr, is_array) {
                    (VarRef::Local(off), _) => self.emit(Instr::AddrLocal(off)),
                    (VarRef::Global(off), _) => self.emit(Instr::AddrGlobal(off)),
                }
                Ok(())
            }
            Expr::Index(base, idx, _) => {
                // Arrays evaluate to their base address; pointers to their
                // value — either way `gen_expr(base)` yields the base.
                self.gen_expr(base)?;
                self.gen_expr(idx)?;
                self.emit(Instr::Const(4));
                self.emit(Instr::Mul);
                self.emit(Instr::Add);
                Ok(())
            }
            Expr::Deref(inner, _) => self.gen_expr(inner),
            other => Err(CompileError::new(
                other.pos(),
                "cannot take the address of this expression",
            )),
        }
    }

    fn scalar_target(&self, target: &Expr) -> Option<VarRef> {
        if let Expr::Var(name, _) = target {
            let (vr, _, is_array) = self.lookup(name)?;
            if !is_array {
                return Some(vr);
            }
        }
        None
    }

    fn emit_load_ref(&mut self, vr: VarRef) {
        match vr {
            VarRef::Local(off) => self.emit(Instr::LoadLocal(off)),
            VarRef::Global(off) => self.emit(Instr::LoadGlobal(off)),
        }
    }

    fn emit_store_ref(&mut self, vr: VarRef) {
        match vr {
            VarRef::Local(off) => self.emit(Instr::StoreLocal(off)),
            VarRef::Global(off) => self.emit(Instr::StoreGlobal(off)),
        }
    }

    fn gen_assign(
        &mut self,
        target: &Expr,
        value: &Expr,
        op: Option<BinOp>,
        want_value: bool,
        pos: Pos,
    ) -> Result<(), CompileError> {
        if let Some(vr) = self.scalar_target(target) {
            if let Some(op) = op {
                self.emit_load_ref(vr);
                // Pointer-typed compound targets (p += i) need scaling.
                let tt = self.type_of(target);
                self.gen_expr(value)?;
                if tt.is_ptr() && matches!(op, BinOp::Add | BinOp::Sub) {
                    self.emit(Instr::Const(4));
                    self.emit(Instr::Mul);
                }
                self.emit(binop_instr(op));
            } else {
                self.gen_expr(value)?;
            }
            if want_value {
                self.emit(Instr::Dup);
            }
            self.emit_store_ref(vr);
            return Ok(());
        }
        // Indirect target: *p, a[i].
        if want_value {
            return Err(CompileError::new(
                pos,
                "indirect assignment cannot be used as a value",
            ));
        }
        self.gen_addr(target)?;
        if let Some(op) = op {
            self.emit(Instr::Dup);
            self.emit(Instr::LoadInd);
            self.gen_expr(value)?;
            self.emit(binop_instr(op));
        } else {
            self.gen_expr(value)?;
        }
        self.emit(Instr::StoreInd);
        Ok(())
    }

    fn gen_timestamped_assign(
        &mut self,
        target: &Expr,
        value: &Expr,
        op: Option<BinOp>,
        pos: Pos,
    ) -> Result<(), CompileError> {
        let root = match target {
            Expr::Var(n, _) => n.clone(),
            Expr::Index(b, _, _) => match &**b {
                Expr::Var(n, _) => n.clone(),
                _ => {
                    return Err(CompileError::new(pos, "`@=` target must name a variable"));
                }
            },
            _ => return Err(CompileError::new(pos, "`@=` target must name a variable")),
        };
        let var_id = self
            .global_var_id(&root)
            .ok_or_else(|| CompileError::new(pos, format!("`{root}` is not annotated")))?;
        // §3.2.2: the data write and the timestamp update form an atomic
        // block, sealed by a checkpoint.
        self.emit(Instr::AtomicBegin);
        self.gen_assign(target, value, op, false, pos)?;
        self.emit(Instr::TimestampVar(var_id));
        self.emit(Instr::Checkpoint(crate::isa::CkptSite::TimeBlockEnd));
        self.emit(Instr::AtomicEnd);
        Ok(())
    }

    fn gen_incdec(
        &mut self,
        target: &Expr,
        inc: bool,
        want_value: bool,
        pos: Pos,
    ) -> Result<(), CompileError> {
        let step = if inc { Instr::Add } else { Instr::Sub };
        if let Some(vr) = self.scalar_target(target) {
            let scale = self.type_of(target).is_ptr();
            self.emit_load_ref(vr);
            if want_value {
                self.emit(Instr::Dup);
            }
            self.emit(Instr::Const(if scale { 4 } else { 1 }));
            self.emit(step);
            self.emit_store_ref(vr);
            return Ok(());
        }
        // Indirect: a[i]++ / (*p)--
        self.gen_addr(target)?;
        if want_value {
            // [addr] -> old left under, store new.
            self.emit(Instr::Dup);
            self.emit(Instr::LoadInd);
            self.emit(Instr::Swap);
            self.emit(Instr::Dup);
            self.emit(Instr::LoadInd);
            self.emit(Instr::Const(1));
            self.emit(step);
            self.emit(Instr::StoreInd);
            // Fix bookkeeping: Swap/Dup/LoadInd sequence nets +1 then -2.
            let _ = pos;
            Ok(())
        } else {
            self.emit(Instr::Dup);
            self.emit(Instr::LoadInd);
            self.emit(Instr::Const(1));
            self.emit(step);
            self.emit(Instr::StoreInd);
            Ok(())
        }
    }
}

fn binop_instr(op: BinOp) -> Instr {
    match op {
        BinOp::Add => Instr::Add,
        BinOp::Sub => Instr::Sub,
        BinOp::Mul => Instr::Mul,
        BinOp::Div => Instr::Div,
        BinOp::Mod => Instr::Mod,
        BinOp::BitAnd => Instr::BitAnd,
        BinOp::BitOr => Instr::BitOr,
        BinOp::BitXor => Instr::BitXor,
        BinOp::Shl => Instr::Shl,
        BinOp::Shr => Instr::Shr,
        BinOp::Eq => Instr::Eq,
        BinOp::Ne => Instr::Ne,
        BinOp::Lt => Instr::Lt,
        BinOp::Le => Instr::Le,
        BinOp::Gt => Instr::Gt,
        BinOp::Ge => Instr::Ge,
        BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuit ops are lowered with jumps"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn gen(src: &str) -> Program {
        let toks = lex(src).unwrap();
        let unit = parse(toks).unwrap();
        let checked = analyze(&unit).unwrap();
        generate(&checked).unwrap()
    }

    #[test]
    fn generates_main_with_frame_info() {
        let p = gen("int main() { int x = 3; return x; }");
        let (_, f) = p.function("main").unwrap();
        assert_eq!(f.n_args, 0);
        assert_eq!(f.locals_bytes, 4);
        assert!(f.max_ostack >= 1);
        assert!(f.code.contains(&Instr::StoreLocal(0)));
        assert!(f.code.contains(&Instr::Ret));
    }

    #[test]
    fn global_layout_assigns_offsets() {
        let p = gen("int a; int b[3]; int c = 5; int main() { return c; }");
        assert_eq!(p.global("a").unwrap().offset, 0);
        assert_eq!(p.global("b").unwrap().offset, 4);
        assert_eq!(p.global("b").unwrap().size, 12);
        assert_eq!(p.global("c").unwrap().offset, 16);
        assert_eq!(p.global("c").unwrap().init, vec![5]);
        assert_eq!(p.globals_size, 20);
    }

    #[test]
    fn annotated_globals_get_var_ids() {
        let p = gen("@expires_after = 1s\nint t; int u; int main() { return 0; }");
        assert_eq!(p.global("t").unwrap().var_id, Some(0));
        assert_eq!(p.global("u").unwrap().var_id, None);
        assert_eq!(p.annotated.len(), 1);
        assert_eq!(p.annotated[0].ttl_us, 1_000_000);
    }

    #[test]
    fn array_indexing_scales_by_four() {
        let p = gen("int a[4]; int main() { a[2] = 9; return a[2]; }");
        let (_, f) = p.function("main").unwrap();
        let code = &f.code;
        assert!(code.contains(&Instr::AddrGlobal(0)));
        assert!(code.contains(&Instr::Const(4)));
        assert!(code.contains(&Instr::StoreInd));
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let p = gen("int buf[4]; int main() { int *p; p = buf; return *(p + 1); }");
        let (_, f) = p.function("main").unwrap();
        // The + 1 on an int* multiplies by 4 before the add.
        let idx = f
            .code
            .iter()
            .position(|i| *i == Instr::LoadInd)
            .expect("deref present");
        assert!(f.code[..idx].contains(&Instr::Const(4)));
    }

    #[test]
    fn timestamped_assign_emits_atomic_block() {
        let p = gen("@expires_after = 1s\nint t;\nint main() { t @= sample(); return 0; }");
        let (_, f) = p.function("main").unwrap();
        let c = &f.code;
        let ab = c.iter().position(|i| *i == Instr::AtomicBegin).unwrap();
        let ts = c.iter().position(|i| *i == Instr::TimestampVar(0)).unwrap();
        let ae = c.iter().position(|i| *i == Instr::AtomicEnd).unwrap();
        assert!(ab < ts && ts < ae);
        assert!(c
            .iter()
            .any(|i| matches!(i, Instr::Checkpoint(crate::isa::CkptSite::TimeBlockEnd))));
    }

    #[test]
    fn expires_guard_form_checks_freshness() {
        let p =
            gen("@expires_after = 1s\nint t;\nint main() { @expires(t) { send(t); } return 0; }");
        let (_, f) = p.function("main").unwrap();
        assert!(f.code.contains(&Instr::ExpiresCheck(0)));
    }

    #[test]
    fn expires_catch_form_wires_catch_target() {
        let p = gen("@expires_after = 1s\nint t;
             int main() { @expires(t) { send(t); } catch { led(1); } return 0; }");
        let (_, f) = p.function("main").unwrap();
        let begin = f
            .code
            .iter()
            .find_map(|i| match i {
                Instr::ExpiresBlockBegin(v, t) => Some((*v, *t)),
                _ => None,
            })
            .expect("block begin");
        assert_eq!(begin.0, 0);
        assert!((begin.1 as usize) < f.code.len());
        // The catch target lands after the ExpiresBlockEnd.
        let end = f
            .code
            .iter()
            .position(|i| *i == Instr::ExpiresBlockEnd)
            .unwrap();
        assert!(begin.1 as usize > end);
    }

    #[test]
    fn timely_emits_check_and_checkpoint() {
        let p = gen("int main() { @timely(200ms) { send(1); } else { led(0); } return 0; }");
        let (_, f) = p.function("main").unwrap();
        assert!(f.code.contains(&Instr::TimelyCheck));
        assert!(f.code.contains(&Instr::Const(200)));
    }

    #[test]
    fn short_circuit_ops_lower_to_jumps() {
        let p = gen("int main() { return 1 && sample() || 0; }");
        let (_, f) = p.function("main").unwrap();
        assert!(f.code.iter().any(|i| matches!(i, Instr::Jz(_))));
        assert!(f.code.iter().any(|i| matches!(i, Instr::Jnz(_))));
    }

    #[test]
    fn recursion_compiles() {
        let p = gen("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(8); }");
        let (fib_idx, fib) = p.function("fib").unwrap();
        assert!(fib.code.contains(&Instr::Call(fib_idx)));
    }

    #[test]
    fn block_locals_reuse_space() {
        let p = gen("int main() {
                { int a[8]; a[0] = 1; }
                { int b[8]; b[0] = 2; }
                return 0;
            }");
        let (_, f) = p.function("main").unwrap();
        // Both arrays share the same 32 bytes.
        assert_eq!(f.locals_bytes, 32);
    }

    #[test]
    fn indirect_assign_as_value_is_rejected() {
        let toks = lex("int a[2]; int main() { int x; x = (a[0] = 1); return x; }").unwrap();
        let unit = parse(toks).unwrap();
        let checked = analyze(&unit).unwrap();
        assert!(generate(&checked).is_err());
    }

    #[test]
    fn no_jump_targets_left_unpatched() {
        let p = gen("int main() {
                int s = 0;
                for (int i = 0; i < 4; i++) { if (i == 2) continue; if (i == 3) break; s += i; }
                while (s) { s--; }
                return s ? 1 : 2;
            }");
        for f in &p.functions {
            for i in &f.code {
                if let Some(t) = i.jump_target() {
                    assert!(
                        (t as usize) <= f.code.len(),
                        "unpatched or out-of-range target in {}",
                        f.name
                    );
                    assert_ne!(t, u32::MAX, "unpatched placeholder in {}", f.name);
                }
            }
        }
    }
}
