//! Semantic analysis: name resolution, arity checks, annotation rules,
//! and call-graph facts (recursion detection).

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, FuncDecl, Stmt, Unit};
use crate::error::{CompileError, Pos};
use crate::isa::Syscall;

/// The result of semantic analysis: the validated unit plus whole-program
/// facts the instrumentation passes need.
#[derive(Debug)]
pub struct CheckedUnit<'a> {
    /// The underlying translation unit (validated).
    pub unit: &'a Unit,
    /// Functions that participate in a call-graph cycle (including
    /// self-recursion). Chinchilla's local-to-global promotion rejects
    /// programs where this is non-empty (paper §5.3.1).
    pub recursive_functions: HashSet<String>,
    /// Whether the source uses pointer syntax (pointer declarations,
    /// `*`, `&`). Task-based systems enforce a static memory model and
    /// reject such programs (Table 5); plain array indexing is fine.
    pub uses_pointers: bool,
}

impl CheckedUnit<'_> {
    /// Whether any recursion exists in the program.
    #[must_use]
    pub fn has_recursion(&self) -> bool {
        !self.recursive_functions.is_empty()
    }
}

struct Analyzer<'a> {
    unit: &'a Unit,
    funcs: HashMap<&'a str, &'a FuncDecl>,
    globals: HashMap<&'a str, &'a crate::ast::GlobalDecl>,
    annotated: HashSet<&'a str>,
    scopes: Vec<HashSet<String>>,
    loop_depth: u32,
    calls: HashSet<(String, String)>,
    current_fn: String,
}

impl<'a> Analyzer<'a> {
    fn new(unit: &'a Unit) -> Result<Analyzer<'a>, CompileError> {
        let mut funcs = HashMap::new();
        for f in &unit.functions {
            if funcs.insert(f.name.as_str(), f).is_some() {
                return Err(CompileError::new(
                    f.pos,
                    format!("duplicate function `{}`", f.name),
                ));
            }
            if Syscall::from_name(&f.name).is_some() {
                return Err(CompileError::new(
                    f.pos,
                    format!("`{}` is a builtin and cannot be redefined", f.name),
                ));
            }
        }
        let mut globals = HashMap::new();
        let mut annotated = HashSet::new();
        for g in &unit.globals {
            if globals.insert(g.name.as_str(), g).is_some() {
                return Err(CompileError::new(
                    g.pos,
                    format!("duplicate global `{}`", g.name),
                ));
            }
            if g.expires_after_us.is_some() {
                annotated.insert(g.name.as_str());
            }
        }
        Ok(Analyzer {
            unit,
            funcs,
            globals,
            annotated,
            scopes: Vec::new(),
            loop_depth: 0,
            calls: HashSet::new(),
            current_fn: String::new(),
        })
    }

    fn var_visible(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name)) || self.globals.contains_key(name)
    }

    fn declare_local(&mut self, name: &str, pos: Pos) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("inside a scope");
        if !scope.insert(name.to_owned()) {
            return Err(CompileError::new(
                pos,
                format!("duplicate variable `{name}` in this scope"),
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(..) | Expr::TimeLit(..) => Ok(()),
            Expr::Var(name, pos) => {
                if self.var_visible(name) {
                    Ok(())
                } else {
                    Err(CompileError::new(
                        *pos,
                        format!("undefined variable `{name}`"),
                    ))
                }
            }
            Expr::Index(b, i, _) => {
                self.check_expr(b)?;
                self.check_expr(i)
            }
            Expr::Deref(e, _) | Expr::AddrOf(e, _) | Expr::Unary(_, e, _) => self.check_expr(e),
            Expr::Binary(_, l, r, _) => {
                self.check_expr(l)?;
                self.check_expr(r)
            }
            Expr::Cond(c, t, f, _) => {
                self.check_expr(c)?;
                self.check_expr(t)?;
                self.check_expr(f)
            }
            Expr::Assign {
                target,
                value,
                timestamped,
                pos,
                ..
            } => {
                self.check_lvalue(target)?;
                self.check_expr(value)?;
                if *timestamped {
                    let root = lvalue_root(target);
                    match root {
                        Some(name) if self.annotated.contains(name) => {}
                        Some(name) => {
                            return Err(CompileError::new(
                                *pos,
                                format!("`@=` target `{name}` has no @expires_after annotation"),
                            ))
                        }
                        None => {
                            return Err(CompileError::new(
                                *pos,
                                "`@=` target must be an annotated variable or element",
                            ))
                        }
                    }
                }
                Ok(())
            }
            Expr::Call { name, args, pos } => {
                for a in args {
                    self.check_expr(a)?;
                }
                if let Some(sys) = Syscall::from_name(name) {
                    if args.len() != sys.arg_count() as usize {
                        return Err(CompileError::new(
                            *pos,
                            format!(
                                "builtin `{name}` takes {} argument(s), got {}",
                                sys.arg_count(),
                                args.len()
                            ),
                        ));
                    }
                    return Ok(());
                }
                match self.funcs.get(name.as_str()) {
                    Some(f) => {
                        if args.len() != f.params.len() {
                            return Err(CompileError::new(
                                *pos,
                                format!(
                                    "`{name}` takes {} argument(s), got {}",
                                    f.params.len(),
                                    args.len()
                                ),
                            ));
                        }
                        self.calls.insert((self.current_fn.clone(), name.clone()));
                        Ok(())
                    }
                    None => Err(CompileError::new(
                        *pos,
                        format!("undefined function `{name}`"),
                    )),
                }
            }
            Expr::PostIncDec { target, .. } => self.check_lvalue(target),
        }
    }

    fn check_lvalue(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Var(..) | Expr::Index(..) | Expr::Deref(..) => self.check_expr(e),
            other => Err(CompileError::new(
                other.pos(),
                "expression is not assignable",
            )),
        }
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashSet::new());
        for s in stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => self.check_expr(e),
            Stmt::Decl {
                name, init, pos, ..
            } => {
                if let Some(init) = init {
                    self.check_expr(init)?;
                }
                self.declare_local(name, *pos)
            }
            Stmt::If { cond, then, els } => {
                self.check_expr(cond)?;
                self.check_block(then)?;
                self.check_block(els)
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashSet::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return(v, _) => {
                if let Some(v) = v {
                    self.check_expr(v)?;
                }
                Ok(())
            }
            Stmt::Break(pos) | Stmt::Continue(pos) => {
                if self.loop_depth == 0 {
                    Err(CompileError::new(*pos, "break/continue outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.check_block(b),
            Stmt::Expires {
                var,
                body,
                catch,
                pos,
            } => {
                if !self.annotated.contains(var.as_str()) {
                    return Err(CompileError::new(
                        *pos,
                        format!(
                            "`@expires({var})` requires an @expires_after annotation on `{var}`"
                        ),
                    ));
                }
                self.check_block(body)?;
                if let Some(c) = catch {
                    self.check_block(c)?;
                }
                Ok(())
            }
            Stmt::Timely {
                deadline,
                body,
                els,
                ..
            } => {
                self.check_expr(deadline)?;
                self.check_block(body)?;
                self.check_block(els)
            }
        }
    }

    fn find_recursion(&self) -> HashSet<String> {
        // A function is "recursive" if it can reach itself in the call
        // graph. Small graphs: simple DFS per function.
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for (from, to) in &self.calls {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
        let mut result = HashSet::new();
        for f in &self.unit.functions {
            let mut seen = HashSet::new();
            let mut stack: Vec<&str> = adj.get(f.name.as_str()).cloned().unwrap_or_default();
            while let Some(n) = stack.pop() {
                if n == f.name {
                    result.insert(f.name.clone());
                    break;
                }
                if seen.insert(n) {
                    if let Some(next) = adj.get(n) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
        }
        result
    }
}

fn unit_uses_pointers(unit: &Unit) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match e {
            Expr::Deref(..) | Expr::AddrOf(..) => true,
            Expr::Int(..) | Expr::TimeLit(..) | Expr::Var(..) => false,
            Expr::Index(b, i, _) => expr_has(b) || expr_has(i),
            Expr::Unary(_, e, _) => expr_has(e),
            Expr::Binary(_, l, r, _) => expr_has(l) || expr_has(r),
            Expr::Cond(c, t, f, _) => expr_has(c) || expr_has(t) || expr_has(f),
            Expr::Assign { target, value, .. } => expr_has(target) || expr_has(value),
            Expr::Call { args, .. } => args.iter().any(expr_has),
            Expr::PostIncDec { target, .. } => expr_has(target),
        }
    }
    fn stmt_has(s: &Stmt) -> bool {
        match s {
            Stmt::Expr(e) => expr_has(e),
            Stmt::Decl { ty, init, .. } => ty.is_ptr() || init.as_ref().is_some_and(expr_has),
            Stmt::If { cond, then, els } => {
                expr_has(cond) || then.iter().any(stmt_has) || els.iter().any(stmt_has)
            }
            Stmt::While { cond, body } => expr_has(cond) || body.iter().any(stmt_has),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                init.as_deref().is_some_and(stmt_has)
                    || cond.as_ref().is_some_and(expr_has)
                    || step.as_ref().is_some_and(expr_has)
                    || body.iter().any(stmt_has)
            }
            Stmt::Return(v, _) => v.as_ref().is_some_and(expr_has),
            Stmt::Break(_) | Stmt::Continue(_) => false,
            Stmt::Block(b) => b.iter().any(stmt_has),
            Stmt::Expires { body, catch, .. } => {
                body.iter().any(stmt_has) || catch.as_ref().is_some_and(|c| c.iter().any(stmt_has))
            }
            Stmt::Timely {
                deadline,
                body,
                els,
                ..
            } => expr_has(deadline) || body.iter().any(stmt_has) || els.iter().any(stmt_has),
        }
    }
    unit.globals.iter().any(|g| g.ty.is_ptr())
        || unit
            .functions
            .iter()
            .any(|f| f.params.iter().any(|(_, t)| t.is_ptr()) || f.body.iter().any(stmt_has))
}

fn lvalue_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(name, _) => Some(name),
        Expr::Index(b, _, _) => lvalue_root(b),
        _ => None,
    }
}

/// Validates a translation unit.
///
/// # Errors
///
/// Returns a [`CompileError`] for undefined names, arity mismatches,
/// misplaced `break`/`continue`, annotation misuse, duplicate
/// declarations, or a missing `main`.
pub fn analyze(unit: &Unit) -> Result<CheckedUnit<'_>, CompileError> {
    let mut a = Analyzer::new(unit)?;
    let Some(main) = a.funcs.get("main") else {
        return Err(CompileError::global("program has no `main` function"));
    };
    if !main.params.is_empty() {
        return Err(CompileError::new(
            main.pos,
            "`main` must take no parameters",
        ));
    }
    for f in &unit.functions {
        a.current_fn = f.name.clone();
        a.scopes
            .push(f.params.iter().map(|(n, _)| n.clone()).collect());
        a.check_block(&f.body)?;
        a.scopes.pop();
    }
    let recursive_functions = a.find_recursion();
    let uses_pointers = unit_uses_pointers(unit);
    Ok(CheckedUnit {
        unit,
        recursive_functions,
        uses_pointers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<HashSet<String>, CompileError> {
        let toks = lex(src)?;
        let unit = parse(toks)?;
        let checked = analyze(&unit)?;
        Ok(checked.recursive_functions)
    }

    #[test]
    fn accepts_valid_program() {
        assert!(analyze_src("int g; int main() { g = 1; return g; }").is_ok());
    }

    #[test]
    fn rejects_missing_main() {
        let e = analyze_src("int f() { return 0; }").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(analyze_src("int main() { return x; }").is_err());
        assert!(analyze_src("int main() { return f(); }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(analyze_src("int f(int a) { return a; } int main() { return f(); }").is_err());
        assert!(analyze_src("int main() { send(); return 0; }").is_err());
    }

    #[test]
    fn rejects_redefining_builtin() {
        assert!(analyze_src("int send(int x) { return x; } int main() { return 0; }").is_err());
    }

    #[test]
    fn rejects_misplaced_break() {
        assert!(analyze_src("int main() { break; return 0; }").is_err());
        assert!(analyze_src("int main() { while (1) { break; } return 0; }").is_ok());
    }

    #[test]
    fn detects_self_recursion() {
        let rec = analyze_src(
            "int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
             int main() { return fib(5); }",
        )
        .unwrap();
        assert!(rec.contains("fib"));
        assert!(!rec.contains("main"));
    }

    #[test]
    fn detects_mutual_recursion() {
        let rec = analyze_src(
            "int odd(int n);
             int even(int n) { if (n == 0) return 1; return odd(n - 1); }
             int odd(int n) { if (n == 0) return 0; return even(n - 1); }
             int main() { return even(4); }",
        );
        // Forward declarations are not supported; declare bodies in order
        // with a call cycle instead.
        let rec = match rec {
            Ok(r) => r,
            Err(_) => analyze_src(
                "int even(int n) { if (n == 0) return 1; return even(n - 1); }
                 int main() { return even(4); }",
            )
            .unwrap(),
        };
        assert!(!rec.is_empty());
    }

    #[test]
    fn straight_line_calls_are_not_recursive() {
        let rec = analyze_src(
            "int helper(int x) { return x + 1; }
             int main() { return helper(1); }",
        )
        .unwrap();
        assert!(rec.is_empty());
    }

    #[test]
    fn timestamped_assign_requires_annotation() {
        assert!(analyze_src("int t; int main() { t @= sample(); return 0; }").is_err());
        assert!(
            analyze_src("@expires_after = 1s\nint t; int main() { t @= sample(); return 0; }")
                .is_ok()
        );
    }

    #[test]
    fn expires_block_requires_annotation() {
        assert!(analyze_src("int t; int main() { @expires(t) { led(1); } return 0; }").is_err());
        assert!(analyze_src(
            "@expires_after = 1s\nint t; int main() { @expires(t) { led(1); } return 0; }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_duplicate_declarations() {
        assert!(analyze_src("int g; int g; int main() { return 0; }").is_err());
        assert!(analyze_src("int main() { int x; int x; return 0; }").is_err());
        // Shadowing in an inner scope is fine.
        assert!(analyze_src("int main() { int x; { int x; } return 0; }").is_ok());
    }

    #[test]
    fn rejects_main_with_params() {
        assert!(analyze_src("int main(int x) { return x; }").is_err());
    }

    #[test]
    fn rejects_non_lvalue_assignment() {
        assert!(analyze_src("int main() { 3 = 4; return 0; }").is_err());
        assert!(analyze_src("int main() { sample() = 4; return 0; }").is_err());
    }
}
