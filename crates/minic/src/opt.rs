//! Bytecode optimizer: `O0` / `O1` / `O2` pipelines.
//!
//! Figure 9 (left) of the paper compares runtimes across compilers and
//! optimization levels; Chinchilla only works at `-O0`-style layouts while
//! TICS runs at any level. These pipelines provide the analogous axis:
//! `O1` adds constant folding and dead-code elimination, `O2` adds jump
//! threading and peephole rewrites.

use std::collections::BTreeSet;

use crate::isa::Instr;
use crate::program::{Function, Program};

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Constant folding + dead-code elimination.
    #[default]
    O1,
    /// `O1` plus jump threading and peephole rewrites.
    O2,
}

impl OptLevel {
    /// All levels, for sweeps.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

/// Optimizes a program in place.
pub fn optimize(prog: &mut Program, level: OptLevel) {
    if level == OptLevel::O0 {
        return;
    }
    for f in &mut prog.functions {
        // A couple of rounds reach a fixpoint on this IR in practice.
        for _ in 0..3 {
            constant_fold(f);
            if level >= OptLevel::O2 {
                thread_jumps(f);
                peephole(f);
            }
            eliminate_dead_code(f);
        }
    }
}

/// Removes the instructions at `dead` indices, remapping every jump target
/// (including `ExpiresBlockBegin` catch targets). A target pointing at a
/// removed instruction is redirected to the next surviving one.
pub(crate) fn remove_instrs(code: &mut Vec<Instr>, dead: &BTreeSet<usize>) {
    if dead.is_empty() {
        return;
    }
    let mut map = vec![0u32; code.len() + 1];
    let mut new_idx = 0u32;
    for (old, m) in map.iter_mut().enumerate().take(code.len()) {
        *m = new_idx;
        if !dead.contains(&old) {
            new_idx += 1;
        }
    }
    map[code.len()] = new_idx;
    let mut out = Vec::with_capacity(code.len() - dead.len());
    for (i, instr) in code.iter().enumerate() {
        if dead.contains(&i) {
            continue;
        }
        let mut instr = *instr;
        if let Some(t) = instr.jump_target() {
            instr.set_jump_target(map[t as usize]);
        } else if let Instr::ExpiresBlockBegin(v, t) = instr {
            instr = Instr::ExpiresBlockBegin(v, map[t as usize]);
        }
        out.push(instr);
    }
    *code = out;
}

/// Inserts instructions before given positions, remapping jump targets.
/// `inserts` pairs an insertion index with the instruction to place there;
/// multiple inserts at one index keep their order. Jumps *to* an insertion
/// point land before the inserted code (so loop latches re-execute it —
/// that is what checkpoint-at-loop-head instrumentation wants).
pub(crate) fn insert_instrs(code: &mut Vec<Instr>, inserts: &[(usize, Instr)]) {
    if inserts.is_empty() {
        return;
    }
    let mut sorted: Vec<&(usize, Instr)> = inserts.iter().collect();
    sorted.sort_by_key(|(i, _)| *i);
    let mut shift_at = vec![0u32; code.len() + 1];
    for (i, _) in &sorted {
        shift_at[*i] += 1;
    }
    // prefix sums: how many instructions inserted before old index i.
    let mut map = vec![0u32; code.len() + 1];
    let mut acc = 0u32;
    for i in 0..=code.len() {
        acc += shift_at[i];
        map[i] = i as u32 + acc - shift_at[i];
    }
    let mut out = Vec::with_capacity(code.len() + sorted.len());
    let mut si = 0;
    for (i, instr) in code.iter().enumerate() {
        while si < sorted.len() && sorted[si].0 == i {
            out.push(sorted[si].1);
            si += 1;
        }
        let mut instr = *instr;
        if let Some(t) = instr.jump_target() {
            instr.set_jump_target(map[t as usize]);
        } else if let Instr::ExpiresBlockBegin(v, t) = instr {
            instr = Instr::ExpiresBlockBegin(v, map[t as usize]);
        }
        out.push(instr);
    }
    while si < sorted.len() {
        out.push(sorted[si].1);
        si += 1;
    }
    *code = out;
}

fn is_jump_target(code: &[Instr], idx: usize) -> bool {
    code.iter().any(|i| {
        i.jump_target() == Some(idx as u32)
            || matches!(i, Instr::ExpiresBlockBegin(_, t) if *t == idx as u32)
    })
}

fn constant_fold(f: &mut Function) {
    loop {
        let mut dead = BTreeSet::new();
        let mut changed = false;
        let code = &mut f.code;
        for i in 0..code.len() {
            if i + 2 < code.len() && !is_jump_target(code, i + 1) && !is_jump_target(code, i + 2) {
                if let (Instr::Const(a), Instr::Const(b)) = (code[i], code[i + 1]) {
                    if let Some(v) = fold_binary(code[i + 2], a, b) {
                        code[i] = Instr::Const(v);
                        dead.insert(i + 1);
                        dead.insert(i + 2);
                        changed = true;
                        break;
                    }
                }
            }
            if i + 1 < code.len() && !is_jump_target(code, i + 1) {
                if let Instr::Const(a) = code[i] {
                    match code[i + 1] {
                        Instr::Neg => {
                            code[i] = Instr::Const(a.wrapping_neg());
                            dead.insert(i + 1);
                            changed = true;
                            break;
                        }
                        Instr::BitNot => {
                            code[i] = Instr::Const(!a);
                            dead.insert(i + 1);
                            changed = true;
                            break;
                        }
                        Instr::LogNot => {
                            code[i] = Instr::Const(i32::from(a == 0));
                            dead.insert(i + 1);
                            changed = true;
                            break;
                        }
                        Instr::Jz(t) => {
                            if a == 0 {
                                code[i] = Instr::Jmp(t);
                                dead.insert(i + 1);
                            } else {
                                dead.insert(i);
                                dead.insert(i + 1);
                            }
                            changed = true;
                            break;
                        }
                        Instr::Jnz(t) => {
                            if a != 0 {
                                code[i] = Instr::Jmp(t);
                                dead.insert(i + 1);
                            } else {
                                dead.insert(i);
                                dead.insert(i + 1);
                            }
                            changed = true;
                            break;
                        }
                        Instr::Pop => {
                            dead.insert(i);
                            dead.insert(i + 1);
                            changed = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
        if !changed {
            return;
        }
        remove_instrs(&mut f.code, &dead);
    }
}

fn fold_binary(op: Instr, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        Instr::Add => a.wrapping_add(b),
        Instr::Sub => a.wrapping_sub(b),
        Instr::Mul => a.wrapping_mul(b),
        Instr::Div => a.checked_div(b)?,
        Instr::Mod => a.checked_rem(b)?,
        Instr::BitAnd => a & b,
        Instr::BitOr => a | b,
        Instr::BitXor => a ^ b,
        Instr::Shl => a.wrapping_shl(b as u32 & 31),
        Instr::Shr => a.wrapping_shr(b as u32 & 31),
        Instr::Eq => i32::from(a == b),
        Instr::Ne => i32::from(a != b),
        Instr::Lt => i32::from(a < b),
        Instr::Le => i32::from(a <= b),
        Instr::Gt => i32::from(a > b),
        Instr::Ge => i32::from(a >= b),
        _ => return None,
    })
}

fn thread_jumps(f: &mut Function) {
    // Jumps whose target is an unconditional jump follow the chain.
    let code = &mut f.code;
    for i in 0..code.len() {
        let Some(mut t) = code[i].jump_target() else {
            continue;
        };
        let mut hops = 0;
        while let Some(Instr::Jmp(next)) = code.get(t as usize) {
            if *next == t || hops > 8 {
                break; // self-loop guard
            }
            t = *next;
            hops += 1;
        }
        code[i].set_jump_target(t);
    }
    // Jmp to the immediately following instruction is a no-op.
    let mut dead = BTreeSet::new();
    for (i, instr) in code.iter().enumerate() {
        if let Instr::Jmp(t) = instr {
            if *t as usize == i + 1 {
                dead.insert(i);
            }
        }
    }
    remove_instrs(&mut f.code, &dead);
}

fn peephole(f: &mut Function) {
    loop {
        let mut dead = BTreeSet::new();
        let code = &mut f.code;
        for i in 0..code.len().saturating_sub(1) {
            if is_jump_target(code, i + 1) {
                continue;
            }
            match (code[i], code[i + 1]) {
                // Value produced then immediately discarded.
                (Instr::Dup, Instr::Pop)
                | (Instr::LoadLocal(_), Instr::Pop)
                | (Instr::LoadGlobal(_), Instr::Pop)
                | (Instr::AddrLocal(_), Instr::Pop)
                | (Instr::AddrGlobal(_), Instr::Pop) => {
                    dead.insert(i);
                    dead.insert(i + 1);
                }
                // Boolean negation absorbed into the branch.
                (Instr::LogNot, Instr::Jz(t)) => {
                    code[i] = Instr::Jnz(t);
                    dead.insert(i + 1);
                }
                (Instr::LogNot, Instr::Jnz(t)) => {
                    code[i] = Instr::Jz(t);
                    dead.insert(i + 1);
                }
                _ => {}
            }
            if !dead.is_empty() {
                break;
            }
        }
        if dead.is_empty() {
            return;
        }
        remove_instrs(&mut f.code, &dead);
    }
}

fn eliminate_dead_code(f: &mut Function) {
    // Reachability from instruction 0.
    let code = &f.code;
    let mut reachable = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if i >= code.len() || reachable[i] {
            continue;
        }
        reachable[i] = true;
        let instr = &code[i];
        if let Some(t) = instr.jump_target() {
            stack.push(t as usize);
        }
        if let Instr::ExpiresBlockBegin(_, t) = instr {
            stack.push(*t as usize);
        }
        match instr {
            Instr::Jmp(_) | Instr::Ret | Instr::Halt => {}
            _ => stack.push(i + 1),
        }
    }
    let dead: BTreeSet<usize> = (0..code.len()).filter(|i| !reachable[*i]).collect();
    remove_instrs(&mut f.code, &dead);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::CkptSite;

    fn func(code: Vec<Instr>) -> Function {
        Function {
            name: "t".into(),
            n_args: 0,
            locals_bytes: 0,
            max_ostack: 4,
            code,
            entry_checked: false,
        }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = func(vec![
            Instr::Const(6),
            Instr::Const(7),
            Instr::Mul,
            Instr::Ret,
        ]);
        constant_fold(&mut f);
        assert_eq!(f.code, vec![Instr::Const(42), Instr::Ret]);
    }

    #[test]
    fn folds_constant_branches() {
        let mut f = func(vec![
            Instr::Const(1),
            Instr::Jz(4),
            Instr::Const(10),
            Instr::Ret,
            Instr::Const(20),
            Instr::Ret,
        ]);
        constant_fold(&mut f);
        eliminate_dead_code(&mut f);
        assert_eq!(f.code, vec![Instr::Const(10), Instr::Ret]);
    }

    #[test]
    fn removes_unreachable_code() {
        let mut f = func(vec![
            Instr::Const(0),
            Instr::Ret,
            Instr::Const(99),
            Instr::Ret,
        ]);
        eliminate_dead_code(&mut f);
        assert_eq!(f.code.len(), 2);
    }

    #[test]
    fn keeps_catch_targets_alive() {
        let mut f = func(vec![
            Instr::ExpiresBlockBegin(0, 4),
            Instr::ExpiresBlockEnd,
            Instr::Const(0),
            Instr::Ret,
            Instr::Const(7), // catch handler — reachable only via runtime
            Instr::Ret,
        ]);
        eliminate_dead_code(&mut f);
        assert_eq!(f.code.len(), 6);
    }

    #[test]
    fn remove_instrs_remaps_targets() {
        let mut code = vec![
            Instr::Jmp(3),
            Instr::Pop, // dead
            Instr::Pop, // dead
            Instr::Ret,
        ];
        remove_instrs(&mut code, &BTreeSet::from([1, 2]));
        assert_eq!(code, vec![Instr::Jmp(1), Instr::Ret]);
    }

    #[test]
    fn remove_instrs_redirects_into_removed_region() {
        let mut code = vec![
            Instr::Jmp(1),
            Instr::Pop, // dead — jump should land on next survivor
            Instr::Ret,
        ];
        remove_instrs(&mut code, &BTreeSet::from([1]));
        assert_eq!(code, vec![Instr::Jmp(1), Instr::Ret]);
    }

    #[test]
    fn insert_instrs_shifts_targets() {
        let mut code = vec![Instr::Const(1), Instr::Jz(3), Instr::Const(2), Instr::Ret];
        insert_instrs(&mut code, &[(2, Instr::Checkpoint(CkptSite::Auto))]);
        assert_eq!(
            code,
            vec![
                Instr::Const(1),
                Instr::Jz(4),
                Instr::Checkpoint(CkptSite::Auto),
                Instr::Const(2),
                Instr::Ret,
            ]
        );
    }

    #[test]
    fn insert_at_jump_target_lands_before_insert() {
        // Backward jump to index 1; inserting at 1 must keep the loop
        // re-executing the inserted instruction.
        let mut code = vec![Instr::Const(0), Instr::Dup, Instr::Jnz(1), Instr::Ret];
        insert_instrs(&mut code, &[(1, Instr::Checkpoint(CkptSite::Auto))]);
        assert_eq!(code[1], Instr::Checkpoint(CkptSite::Auto));
        assert_eq!(code[3], Instr::Jnz(1));
    }

    #[test]
    fn peephole_removes_dup_pop() {
        let mut f = func(vec![Instr::Const(5), Instr::Dup, Instr::Pop, Instr::Ret]);
        peephole(&mut f);
        assert_eq!(f.code, vec![Instr::Const(5), Instr::Ret]);
    }

    #[test]
    fn peephole_fuses_lognot_branch() {
        let mut f = func(vec![
            Instr::LoadGlobal(0),
            Instr::LogNot,
            Instr::Jz(4),
            Instr::Const(1),
            Instr::Ret,
        ]);
        peephole(&mut f);
        assert_eq!(f.code[1], Instr::Jnz(3));
    }

    #[test]
    fn jump_threading_collapses_chains() {
        let mut f = func(vec![
            Instr::Jz(2),
            Instr::Ret,
            Instr::Jmp(4),
            Instr::Ret,
            Instr::Const(0),
            Instr::Ret,
        ]);
        thread_jumps(&mut f);
        assert_eq!(f.code[0], Instr::Jz(4));
    }

    #[test]
    fn o2_shrinks_constant_heavy_code() {
        use crate::{compile, opt::OptLevel};
        let src = "int main() { int x = 2 * 3 + 4; if (1) { x = x + 0 * 5; } return x; }";
        let o0 = compile(src, OptLevel::O0).unwrap();
        let o2 = compile(src, OptLevel::O2).unwrap();
        assert!(o2.text_bytes() < o0.text_bytes());
    }
}
