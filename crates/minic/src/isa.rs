//! The bytecode instruction set executed by `tics-vm`.
//!
//! The ISA is a compact stack machine whose operand stack lives *inside
//! the current frame in simulated memory* — so the only volatile machine
//! state is the register file, exactly as on the MSP430 targets the paper
//! instruments. Each opcode has an encoded byte size chosen to model
//! MSP430 code density; [`Instr::encoded_size`] sums to the `.text`
//! figures of Table 3.
//!
//! Instructions in the "intermittency" group are emitted by the
//! instrumentation passes in [`crate::passes`] (or, for the time
//! annotations, directly by codegen from TICS source syntax) and are
//! routed by the VM to the active `IntermittentRuntime`
//! (`tics-vm::IntermittentRuntime`).

use std::fmt;

/// Identifier of a time-annotated variable (index into
/// [`Program::annotated`](crate::program::Program::annotated)).
pub type VarId = u16;

/// Built-in system calls (sensors, radio, time, debug).
///
/// Syscalls model the I/O library of the paper's benchmark applications;
/// the VM implements them deterministically so experiments are
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Syscall {
    /// Generic sensor sample; returns `int`.
    Sample = 0,
    /// Three-axis accelerometer sample (AR benchmark).
    SampleAccel = 1,
    /// Soil-moisture sample (GHM application).
    SampleMoisture = 2,
    /// Ambient-temperature sample (GHM application).
    SampleTemp = 3,
    /// Transmit a value over the radio.
    Send = 4,
    /// Current time in milliseconds from the device's timekeeper.
    TimeMs = 5,
    /// Drive the LED.
    Led = 6,
    /// Deterministic 16-bit pseudo-random number.
    Rand = 7,
    /// Mark completion of a named routine (experiment bookkeeping; the
    /// hardware equivalent is a GPIO toggle counted by a logic analyzer).
    Mark = 8,
    /// Debug print of an `int`.
    Print = 9,
    /// Request a manual checkpoint from the runtime.
    CheckpointNow = 10,
    /// Current time in microseconds (low 31 bits).
    TimeUs = 11,
    /// Allocate `n` bytes from the persistent FRAM heap; returns the
    /// address, or 0 when the heap is exhausted. The allocator's bump
    /// pointer is undo-logged by consistency-managing runtimes, so a
    /// rolled-back execution re-allocates the same addresses.
    Alloc = 12,
    /// Clock one byte onto the UART TX wire; returns 1 if the byte
    /// completed before the energy deadline, 0 if it tore.
    UartTx = 13,
    /// Read one byte from the UART RX FIFO; returns the byte or -1.
    UartRx = 14,
    /// I2C START + address phase; returns 0 on ACK, -1 on NACK.
    I2cStart = 15,
    /// Write one byte on the I2C bus; returns 0 on ACK, -1 on NACK.
    I2cWrite = 16,
    /// Read one byte from the addressed I2C device; returns the byte or
    /// -1 outside a valid read phase.
    I2cRead = 17,
    /// I2C STOP; returns 0 if the device committed the transaction, -1
    /// otherwise (torn phase or incomplete reading).
    I2cStop = 18,
    /// I2C bus-clear: aborts a half-completed device-side transaction
    /// without committing it; returns 0.
    I2cReset = 19,
    /// Open (or re-enter) journaled peripheral transaction `id`.
    /// Returns the attempt number (≥ 0: proceed), -1 (already
    /// committed: skip), or -2 (poisoned: skip). Runtimes without a
    /// transaction journal always return 0 — the un-hardened control.
    TxBegin = 20,
    /// Commit journaled peripheral transaction `id`; returns 0.
    TxCommit = 21,
}

impl Syscall {
    /// Number of `int` arguments the syscall pops.
    #[must_use]
    pub fn arg_count(self) -> u8 {
        match self {
            Syscall::Sample
            | Syscall::SampleAccel
            | Syscall::SampleMoisture
            | Syscall::SampleTemp
            | Syscall::TimeMs
            | Syscall::Rand
            | Syscall::CheckpointNow
            | Syscall::TimeUs
            | Syscall::UartRx
            | Syscall::I2cRead
            | Syscall::I2cStop
            | Syscall::I2cReset => 0,
            Syscall::Send
            | Syscall::Led
            | Syscall::Mark
            | Syscall::Print
            | Syscall::Alloc
            | Syscall::UartTx
            | Syscall::I2cStart
            | Syscall::I2cWrite
            | Syscall::TxBegin
            | Syscall::TxCommit => 1,
        }
    }

    /// Resolves a source-level builtin name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Syscall> {
        Some(match name {
            "sample" => Syscall::Sample,
            "sample_accel" => Syscall::SampleAccel,
            "sample_moisture" => Syscall::SampleMoisture,
            "sample_temp" => Syscall::SampleTemp,
            "send" => Syscall::Send,
            "time_ms" => Syscall::TimeMs,
            "led" => Syscall::Led,
            "rand16" => Syscall::Rand,
            "mark" => Syscall::Mark,
            "print" => Syscall::Print,
            "checkpoint" => Syscall::CheckpointNow,
            "time_us" => Syscall::TimeUs,
            "alloc" => Syscall::Alloc,
            "uart_tx" => Syscall::UartTx,
            "uart_rx" => Syscall::UartRx,
            "i2c_start" => Syscall::I2cStart,
            "i2c_write" => Syscall::I2cWrite,
            "i2c_read" => Syscall::I2cRead,
            "i2c_stop" => Syscall::I2cStop,
            "i2c_reset" => Syscall::I2cReset,
            "tx_begin" => Syscall::TxBegin,
            "tx_commit" => Syscall::TxCommit,
            _ => return None,
        })
    }
}

/// Why a checkpoint site exists in the code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CkptSite {
    /// Automatically inserted by an instrumentation pass.
    Auto,
    /// A `checkpoint()` call written by the programmer.
    Manual,
    /// Placed at a task boundary (the paper's `ST` configuration).
    TaskBoundary,
    /// MementOS-style site: checkpoint only if the supply voltage is low.
    VoltageCheck,
    /// End of a time-constrained block (`@timely`, `@expires`).
    TimeBlockEnd,
}

/// One bytecode instruction.
///
/// Jump targets are instruction indices within the owning function's code
/// vector. Global operands are byte offsets into the program's data
/// segment; the VM adds the runtime-configured data base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    // ---- data movement ----
    /// Push a constant.
    Const(i32),
    /// Push the 4-byte local/arg slot at byte offset from the frame body.
    LoadLocal(u16),
    /// Pop into the local/arg slot at byte offset.
    StoreLocal(u16),
    /// Push the absolute address of a local slot (enables `&x` and local
    /// arrays).
    AddrLocal(u16),
    /// Push the 4-byte global at a data-segment byte offset.
    LoadGlobal(u32),
    /// Pop into a global.
    StoreGlobal(u32),
    /// Pop into a global, via the runtime's undo log (instrumented form).
    StoreGlobalLogged(u32),
    /// Push the absolute address of a global.
    AddrGlobal(u32),
    /// Pop an address; push the 4-byte value it points to.
    LoadInd,
    /// Pop a value, pop an address; store the value at the address.
    StoreInd,
    /// [`Instr::StoreInd`] via the runtime's pointer classification +
    /// undo log (instrumented form).
    StoreIndLogged,
    /// Duplicate the top of the operand stack.
    Dup,
    /// Discard the top of the operand stack.
    Pop,
    /// Swap the two top operand-stack entries.
    Swap,

    // ---- arithmetic & logic (binary ops pop rhs then lhs) ----
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; traps on divide-by-zero.
    Div,
    /// Signed remainder; traps on divide-by-zero.
    Mod,
    /// Arithmetic negation.
    Neg,
    /// Bitwise AND.
    BitAnd,
    /// Bitwise OR.
    BitOr,
    /// Bitwise XOR.
    BitXor,
    /// Shift left (masked to 0–31).
    Shl,
    /// Arithmetic shift right (masked to 0–31).
    Shr,
    /// Bitwise complement.
    BitNot,
    /// Push 1 if equal else 0.
    Eq,
    /// Push 1 if not equal else 0.
    Ne,
    /// Push 1 if less-than (signed) else 0.
    Lt,
    /// Push 1 if less-or-equal else 0.
    Le,
    /// Push 1 if greater-than else 0.
    Gt,
    /// Push 1 if greater-or-equal else 0.
    Ge,
    /// Logical NOT: push 1 if zero else 0.
    LogNot,

    // ---- control flow ----
    /// Unconditional jump to an instruction index.
    Jmp(u32),
    /// Pop; jump if zero.
    Jz(u32),
    /// Pop; jump if non-zero.
    Jnz(u32),
    /// Call function by index; arguments are on the operand stack.
    Call(u16),
    /// Return; the return value is on the operand stack.
    Ret,
    /// Stop the machine (end of `main`).
    Halt,
    /// Invoke a built-in.
    Syscall(Syscall),

    // ---- intermittency instrumentation ----
    /// A checkpoint site; the runtime decides whether to act.
    Checkpoint(CkptSite),
    /// Disable automatic checkpoints (start of an atomic region).
    AtomicBegin,
    /// Re-enable automatic checkpoints.
    AtomicEnd,
    /// Record "now" as the timestamp of an annotated variable (`@=`).
    TimestampVar(VarId),
    /// Push 1 if the annotated variable is still fresh (its
    /// `@expires_after` TTL has not elapsed) else 0.
    ExpiresCheck(VarId),
    /// Pop a deadline in milliseconds; push 1 if `now < deadline`
    /// (`@timely`).
    TimelyCheck,
    /// Enter an exception-style `@expires`/`catch` block for a variable;
    /// on expiration the runtime rolls back the block's writes and jumps
    /// to the catch target (instruction index).
    ExpiresBlockBegin(VarId, u32),
    /// Leave an `@expires`/`catch` block.
    ExpiresBlockEnd,
}

impl Instr {
    /// Encoded size in bytes, modeling MSP430 code density. `.text` size
    /// (Table 3) is the sum over all instructions plus per-pass fixed
    /// runtime-library footprints.
    #[must_use]
    pub fn encoded_size(&self) -> u32 {
        match self {
            Instr::Const(_) => 4,
            Instr::LoadLocal(_) | Instr::StoreLocal(_) | Instr::AddrLocal(_) => 3,
            Instr::LoadGlobal(_) | Instr::StoreGlobal(_) | Instr::AddrGlobal(_) => 4,
            Instr::StoreGlobalLogged(_) => 8,
            Instr::LoadInd | Instr::StoreInd => 2,
            Instr::StoreIndLogged => 8,
            Instr::Dup | Instr::Pop | Instr::Swap => 1,
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Mod
            | Instr::Neg
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::Shl
            | Instr::Shr
            | Instr::BitNot
            | Instr::Eq
            | Instr::Ne
            | Instr::Lt
            | Instr::Le
            | Instr::Gt
            | Instr::Ge
            | Instr::LogNot => 2,
            Instr::Jmp(_) | Instr::Jz(_) | Instr::Jnz(_) => 3,
            Instr::Call(_) => 4,
            Instr::Ret => 2,
            Instr::Halt => 1,
            Instr::Syscall(_) => 4,
            Instr::Checkpoint(_) => 6,
            Instr::AtomicBegin | Instr::AtomicEnd => 4,
            Instr::TimestampVar(_) => 6,
            Instr::ExpiresCheck(_) => 8,
            Instr::TimelyCheck => 8,
            Instr::ExpiresBlockBegin(_, _) => 10,
            Instr::ExpiresBlockEnd => 4,
        }
    }

    /// Whether this instruction transfers control (for basic-block
    /// analysis in the optimizer and passes).
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jmp(_) | Instr::Jz(_) | Instr::Jnz(_) | Instr::Ret | Instr::Halt
        )
    }

    /// The jump target, if this is a jump.
    #[must_use]
    pub fn jump_target(&self) -> Option<u32> {
        match self {
            Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrites the jump target of a jump instruction.
    pub fn set_jump_target(&mut self, new: u32) {
        match self {
            Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) => *t = new,
            _ => {}
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const(v) => write!(f, "const {v}"),
            Instr::LoadLocal(o) => write!(f, "loadl {o}"),
            Instr::StoreLocal(o) => write!(f, "storel {o}"),
            Instr::AddrLocal(o) => write!(f, "leal {o}"),
            Instr::LoadGlobal(o) => write!(f, "loadg {o}"),
            Instr::StoreGlobal(o) => write!(f, "storeg {o}"),
            Instr::StoreGlobalLogged(o) => write!(f, "storeg.log {o}"),
            Instr::AddrGlobal(o) => write!(f, "leag {o}"),
            Instr::LoadInd => write!(f, "loadi"),
            Instr::StoreInd => write!(f, "storei"),
            Instr::StoreIndLogged => write!(f, "storei.log"),
            Instr::Dup => write!(f, "dup"),
            Instr::Pop => write!(f, "pop"),
            Instr::Swap => write!(f, "swap"),
            Instr::Add => write!(f, "add"),
            Instr::Sub => write!(f, "sub"),
            Instr::Mul => write!(f, "mul"),
            Instr::Div => write!(f, "div"),
            Instr::Mod => write!(f, "mod"),
            Instr::Neg => write!(f, "neg"),
            Instr::BitAnd => write!(f, "and"),
            Instr::BitOr => write!(f, "or"),
            Instr::BitXor => write!(f, "xor"),
            Instr::Shl => write!(f, "shl"),
            Instr::Shr => write!(f, "shr"),
            Instr::BitNot => write!(f, "not"),
            Instr::Eq => write!(f, "eq"),
            Instr::Ne => write!(f, "ne"),
            Instr::Lt => write!(f, "lt"),
            Instr::Le => write!(f, "le"),
            Instr::Gt => write!(f, "gt"),
            Instr::Ge => write!(f, "ge"),
            Instr::LogNot => write!(f, "lnot"),
            Instr::Jmp(t) => write!(f, "jmp {t}"),
            Instr::Jz(t) => write!(f, "jz {t}"),
            Instr::Jnz(t) => write!(f, "jnz {t}"),
            Instr::Call(i) => write!(f, "call f{i}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Halt => write!(f, "halt"),
            Instr::Syscall(s) => write!(f, "sys {s:?}"),
            Instr::Checkpoint(site) => write!(f, "ckpt {site:?}"),
            Instr::AtomicBegin => write!(f, "atomic.begin"),
            Instr::AtomicEnd => write!(f, "atomic.end"),
            Instr::TimestampVar(v) => write!(f, "tstamp v{v}"),
            Instr::ExpiresCheck(v) => write!(f, "expchk v{v}"),
            Instr::TimelyCheck => write!(f, "timely"),
            Instr::ExpiresBlockBegin(v, c) => write!(f, "expblk v{v} catch={c}"),
            Instr::ExpiresBlockEnd => write!(f, "expend"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_names_resolve() {
        assert_eq!(Syscall::from_name("send"), Some(Syscall::Send));
        assert_eq!(Syscall::from_name("nonsense"), None);
        assert_eq!(Syscall::Send.arg_count(), 1);
        assert_eq!(Syscall::TimeMs.arg_count(), 0);
    }

    #[test]
    fn logged_stores_are_bigger_than_plain() {
        assert!(Instr::StoreGlobalLogged(0).encoded_size() > Instr::StoreGlobal(0).encoded_size());
        assert!(Instr::StoreIndLogged.encoded_size() > Instr::StoreInd.encoded_size());
    }

    #[test]
    fn jump_target_accessors() {
        let mut j = Instr::Jz(7);
        assert_eq!(j.jump_target(), Some(7));
        j.set_jump_target(9);
        assert_eq!(j, Instr::Jz(9));
        assert!(j.is_terminator());
        assert!(!Instr::Add.is_terminator());
        assert_eq!(Instr::Add.jump_target(), None);
    }

    #[test]
    fn display_is_nonempty_for_all_shapes() {
        for i in [
            Instr::Const(1),
            Instr::LoadLocal(0),
            Instr::StoreGlobalLogged(4),
            Instr::Syscall(Syscall::Print),
            Instr::Checkpoint(CkptSite::Auto),
            Instr::ExpiresBlockBegin(0, 3),
        ] {
            assert!(!i.to_string().is_empty());
        }
    }
}
