//! Intermittency instrumentation passes.
//!
//! Each pass rewrites a compiled [`Program`] the way the corresponding
//! system's toolchain rewrites assembly, and tags the image so the
//! matching runtime (in `tics-core` / `tics-baselines`) accepts it:
//!
//! * [`instrument_tics`] — the paper's contribution: stack-availability
//!   checks at function entries (Figure 7), every global and pointer
//!   store routed through the memory manager's undo log (§3.1.2), and the
//!   TICS runtime library linked in. Time-annotation instructions are
//!   already emitted by codegen from the source syntax.
//! * [`instrument_mementos`] — MementOS-style: voltage-check checkpoint
//!   sites at function entries and loop latches; the runtime saves the
//!   full stack and all globals.
//! * [`instrument_chinchilla`] — Chinchilla-style: every local is
//!   promoted to a global (rejecting recursion), code is
//!   over-instrumented with checkpoint sites that the runtime disables
//!   heuristically.
//! * [`instrument_ratchet`] — Ratchet-style: checkpoints at idempotent-
//!   section boundaries (before WAR-violating stores; every pointer store
//!   is conservatively a boundary).

use std::collections::HashSet;

use crate::error::CompileError;
use crate::isa::{CkptSite, Instr};
use crate::opt::insert_instrs;
use crate::program::{Instrumentation, Program};

/// Fixed `.text`/`.data` footprints of each runtime library, calibrated so
/// whole-program sizes land in the regime of the paper's Table 3. The
/// paper's TICS excludes its configurable segment-array and undo-log
/// buffers from `.data`; we follow that convention (buffers are sized by
/// the runtime configuration instead).
pub mod footprint {
    /// TICS runtime library `.text` bytes (checkpointing, stack
    /// segmentation, memory manager, timekeeping glue).
    pub const TICS_TEXT: u32 = 3_900;
    /// TICS runtime static `.data` bytes (control block; excludes the
    /// configurable segment array and undo log).
    pub const TICS_DATA: u32 = 96;
    /// MementOS-style runtime `.text` bytes.
    pub const MEMENTOS_TEXT: u32 = 1_300;
    /// MementOS-style runtime `.data` bytes (voltage thresholds, flags).
    pub const MEMENTOS_DATA: u32 = 64;
    /// Chinchilla runtime `.text` bytes (checkpoint manager, enable/
    /// disable heuristic machinery, per-variable versioning shims).
    pub const CHINCHILLA_TEXT: u32 = 7_800;
    /// Chinchilla runtime fixed `.data` bytes (version bitmasks, swap
    /// lists, timer state).
    pub const CHINCHILLA_DATA: u32 = 700;
    /// Ratchet runtime `.text` bytes (register checkpoint only).
    pub const RATCHET_TEXT: u32 = 900;
    /// Ratchet runtime `.data` bytes.
    pub const RATCHET_DATA: u32 = 40;
}

/// Applies the TICS instrumentation (§4 "Implementation").
///
/// # Errors
///
/// Never fails today; returns `Result` for interface symmetry with the
/// other passes.
pub fn instrument_tics(prog: &mut Program) -> Result<(), CompileError> {
    for f in &mut prog.functions {
        f.entry_checked = true;
        for instr in &mut f.code {
            match *instr {
                Instr::StoreGlobal(off) => *instr = Instr::StoreGlobalLogged(off),
                Instr::StoreInd => *instr = Instr::StoreIndLogged,
                _ => {}
            }
        }
    }
    prog.instrumentation = Instrumentation::Tics;
    prog.runtime_text_bytes += footprint::TICS_TEXT;
    prog.runtime_data_bytes += footprint::TICS_DATA;
    Ok(())
}

/// Adds explicit checkpoint sites at the entry of the named functions —
/// the paper's `ST` configuration ("checkpoints at task boundaries") used
/// in the Figure 9 (right) comparison against task-based systems.
pub fn add_task_boundary_checkpoints(prog: &mut Program, task_functions: &[&str]) {
    let names: HashSet<&str> = task_functions.iter().copied().collect();
    for f in &mut prog.functions {
        if names.contains(f.name.as_str()) {
            insert_instrs(
                &mut f.code,
                &[(0, Instr::Checkpoint(CkptSite::TaskBoundary))],
            );
        }
    }
}

/// Applies MementOS-style instrumentation: a voltage-check checkpoint
/// site at every function entry and before every loop latch (backward
/// jump).
///
/// # Errors
///
/// Never fails today; returns `Result` for interface symmetry.
pub fn instrument_mementos(prog: &mut Program) -> Result<(), CompileError> {
    for f in &mut prog.functions {
        let mut inserts = vec![(0usize, Instr::Checkpoint(CkptSite::VoltageCheck))];
        for (i, instr) in f.code.iter().enumerate() {
            if let Some(t) = instr.jump_target() {
                if (t as usize) <= i {
                    inserts.push((i, Instr::Checkpoint(CkptSite::VoltageCheck)));
                }
            }
        }
        insert_instrs(&mut f.code, &inserts);
    }
    prog.instrumentation = Instrumentation::Mementos;
    prog.runtime_text_bytes += footprint::MEMENTOS_TEXT;
    prog.runtime_data_bytes += footprint::MEMENTOS_DATA;
    Ok(())
}

/// Applies Chinchilla-style instrumentation.
///
/// Every function's locals are promoted to globals in non-volatile
/// memory, the program is over-instrumented with checkpoint sites, and
/// the double-buffering cost of all (original + promoted) statics is
/// charged to `.data` (paper §5.3.1).
///
/// # Errors
///
/// Returns an error if the program is recursive — local-to-global
/// promotion needs one static home per local, so "recursive function
/// calls … cannot be supported" (paper §5.3.1).
pub fn instrument_chinchilla(prog: &mut Program) -> Result<(), CompileError> {
    if prog.has_recursion {
        return Err(CompileError::global(
            "chinchilla: recursion is not supported (locals are promoted to globals)",
        ));
    }
    let mut promoted_base = prog.globals_size;
    for f in &mut prog.functions {
        // Locals (but not arguments, which travel with the call) get
        // static homes after the program's globals.
        let arg_bytes = f.arg_bytes();
        let base = promoted_base;
        for instr in &mut f.code {
            match *instr {
                Instr::LoadLocal(off) if u32::from(off) >= arg_bytes => {
                    *instr = Instr::LoadGlobal(base + u32::from(off) - arg_bytes);
                }
                Instr::StoreLocal(off) if u32::from(off) >= arg_bytes => {
                    *instr = Instr::StoreGlobal(base + u32::from(off) - arg_bytes);
                }
                Instr::AddrLocal(off) if u32::from(off) >= arg_bytes => {
                    *instr = Instr::AddrGlobal(base + u32::from(off) - arg_bytes);
                }
                _ => {}
            }
        }
        promoted_base += u32::from(f.locals_bytes);
        f.locals_bytes = 0;
        // Over-instrumentation: checkpoint sites at entry, before calls,
        // and at loop latches; the runtime's heuristic thins them out.
        let mut inserts = vec![(0usize, Instr::Checkpoint(CkptSite::Auto))];
        for (i, instr) in f.code.iter().enumerate() {
            match instr {
                Instr::Call(_) => inserts.push((i, Instr::Checkpoint(CkptSite::Auto))),
                _ => {
                    if let Some(t) = instr.jump_target() {
                        if (t as usize) <= i {
                            inserts.push((i, Instr::Checkpoint(CkptSite::Auto)));
                        }
                    }
                }
            }
        }
        insert_instrs(&mut f.code, &inserts);
    }
    prog.globals_size = promoted_base;
    prog.instrumentation = Instrumentation::Chinchilla;
    prog.runtime_text_bytes += footprint::CHINCHILLA_TEXT;
    // Full double buffering of every static (original globals + promoted
    // locals) plus fixed runtime tables — the "decreasing the
    // scalability of memory requirements" the paper criticizes.
    prog.runtime_data_bytes += footprint::CHINCHILLA_DATA + prog.globals_size;
    Ok(())
}

/// Applies Ratchet-style instrumentation: a checkpoint *before* every
/// store that closes a write-after-read dependency, so a replayed
/// section never re-reads a location it already overwrote. With all
/// memory in FRAM (Ratchet's model), WAR hazards exist on globals *and*
/// stack slots, so local stores are tracked too; indirect accesses
/// cannot be disambiguated at compile time, so every pointer store is a
/// boundary and an indirect *read* taints every later store — the
/// paper's §3.1 observation that this makes pointer-heavy code
/// checkpoint after nearly every instruction.
///
/// The matching runtime checkpoints the register file *plus the current
/// frame* (this VM's analog of Ratchet's renamed register set), so the
/// value being stored is part of the restore point and the replayed
/// store is idempotent.
///
/// # Errors
///
/// Never fails today; returns `Result` for interface symmetry.
pub fn instrument_ratchet(prog: &mut Program) -> Result<(), CompileError> {
    for f in &mut prog.functions {
        let mut inserts = Vec::new();
        let mut read_globals: HashSet<u32> = HashSet::new();
        let mut read_locals: HashSet<u16> = HashSet::new();
        let mut indirect_read = false;
        let boundary = |inserts: &mut Vec<(usize, Instr)>,
                        read_globals: &mut HashSet<u32>,
                        read_locals: &mut HashSet<u16>,
                        indirect_read: &mut bool,
                        i: usize| {
            inserts.push((i, Instr::Checkpoint(CkptSite::Auto)));
            read_globals.clear();
            read_locals.clear();
            *indirect_read = false;
        };
        for (i, instr) in f.code.iter().enumerate() {
            match instr {
                Instr::LoadGlobal(off) => {
                    read_globals.insert(*off);
                }
                Instr::LoadLocal(off) => {
                    read_locals.insert(*off);
                }
                Instr::LoadInd => {
                    indirect_read = true;
                }
                Instr::StoreGlobal(off) | Instr::StoreGlobalLogged(off)
                    if (read_globals.contains(off) || indirect_read) =>
                {
                    boundary(
                        &mut inserts,
                        &mut read_globals,
                        &mut read_locals,
                        &mut indirect_read,
                        i,
                    );
                }
                Instr::StoreLocal(off) if (read_locals.contains(off) || indirect_read) => {
                    boundary(
                        &mut inserts,
                        &mut read_globals,
                        &mut read_locals,
                        &mut indirect_read,
                        i,
                    );
                }
                Instr::StoreInd | Instr::StoreIndLogged => {
                    // May alias anything.
                    boundary(
                        &mut inserts,
                        &mut read_globals,
                        &mut read_locals,
                        &mut indirect_read,
                        i,
                    );
                }
                Instr::Checkpoint(_) => {
                    read_globals.clear();
                    read_locals.clear();
                    indirect_read = false;
                }
                _ => {}
            }
        }
        insert_instrs(&mut f.code, &inserts);
    }
    prog.instrumentation = Instrumentation::Ratchet;
    prog.runtime_text_bytes += footprint::RATCHET_TEXT;
    prog.runtime_data_bytes += footprint::RATCHET_DATA;
    Ok(())
}

/// Applies task-based instrumentation for the Alpaca/InK/MayFly kernels.
///
/// Task programs are ported by hand (the "High" porting effort of
/// Table 5): the source provides one function per task plus a dispatcher
/// `main`. This pass routes every global store through the kernel's
/// privatization/undo machinery and places a commit point
/// ([`CkptSite::TaskBoundary`]) at the entry of every task function.
///
/// `runtime_text`/`runtime_data` are the kernel's library footprints
/// (they differ between Alpaca, InK, and MayFly — see
/// `tics-baselines::taskkernel`).
///
/// # Errors
///
/// Returns an error if a named task function does not exist.
pub fn instrument_task_based(
    prog: &mut Program,
    task_functions: &[&str],
    runtime_text: u32,
    runtime_data: u32,
) -> Result<(), CompileError> {
    for name in task_functions {
        if prog.function(name).is_none() {
            return Err(CompileError::global(format!(
                "task function `{name}` not found"
            )));
        }
    }
    for f in &mut prog.functions {
        for instr in &mut f.code {
            match *instr {
                Instr::StoreGlobal(off) => *instr = Instr::StoreGlobalLogged(off),
                Instr::StoreInd => *instr = Instr::StoreIndLogged,
                _ => {}
            }
        }
    }
    add_task_boundary_checkpoints(prog, task_functions);
    // Double-buffering of task-shared state is the dominant .data cost of
    // task-based systems (Table 3's InK row): one shadow copy of the
    // program's globals plus kernel queues.
    prog.instrumentation = Instrumentation::TaskBased;
    prog.runtime_text_bytes += runtime_text;
    prog.runtime_data_bytes += runtime_data + prog.globals_size;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptLevel;

    fn compile(src: &str) -> Program {
        crate::compile(src, OptLevel::O1).unwrap()
    }

    const LOOPY: &str = "
        int total;
        int main() {
            int local = 0;
            for (int i = 0; i < 10; i++) { local += i; }
            total = local;
            return total;
        }";

    #[test]
    fn tics_marks_entries_and_logs_stores() {
        let mut p = compile(LOOPY);
        instrument_tics(&mut p).unwrap();
        assert_eq!(p.instrumentation, Instrumentation::Tics);
        let (_, main) = p.function("main").unwrap();
        assert!(main.entry_checked);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobalLogged(_))));
        assert!(!main.code.iter().any(|i| matches!(i, Instr::StoreGlobal(_))));
    }

    #[test]
    fn tics_logs_pointer_stores() {
        let mut p = compile(
            "int buf[4];
             int main() { int *p; p = buf; *p = 7; return buf[0]; }",
        );
        instrument_tics(&mut p).unwrap();
        let (_, main) = p.function("main").unwrap();
        assert!(main.code.contains(&Instr::StoreIndLogged));
        assert!(!main.code.contains(&Instr::StoreInd));
    }

    #[test]
    fn tics_grows_text_and_data() {
        let mut p = compile(LOOPY);
        let (t0, d0) = (p.text_bytes(), p.data_bytes());
        instrument_tics(&mut p).unwrap();
        assert!(p.text_bytes() > t0);
        assert!(p.data_bytes() > d0);
    }

    #[test]
    fn mementos_adds_sites_at_entry_and_latches() {
        let mut p = compile(LOOPY);
        instrument_mementos(&mut p).unwrap();
        let (_, main) = p.function("main").unwrap();
        let sites = main
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Checkpoint(CkptSite::VoltageCheck)))
            .count();
        assert!(sites >= 2, "entry + loop latch, got {sites}");
        assert_eq!(main.code[0], Instr::Checkpoint(CkptSite::VoltageCheck));
    }

    #[test]
    fn chinchilla_promotes_locals() {
        let mut p = compile(LOOPY);
        let before = p.globals_size;
        instrument_chinchilla(&mut p).unwrap();
        assert!(p.globals_size > before);
        let (_, main) = p.function("main").unwrap();
        assert_eq!(main.locals_bytes, 0);
        assert!(!main.code.iter().any(|i| matches!(
            i,
            Instr::LoadLocal(_) | Instr::StoreLocal(_) | Instr::AddrLocal(_)
        )));
    }

    #[test]
    fn chinchilla_keeps_argument_slots() {
        let mut p = compile(
            "int add(int a, int b) { int s = a + b; return s; }
             int main() { return add(1, 2); }",
        );
        instrument_chinchilla(&mut p).unwrap();
        let (_, add) = p.function("add").unwrap();
        // Arguments still read from the frame; the local `s` is promoted.
        assert!(add.code.iter().any(|i| matches!(i, Instr::LoadLocal(_))));
        assert!(add.code.iter().any(|i| matches!(i, Instr::StoreGlobal(_))));
    }

    #[test]
    fn chinchilla_rejects_recursion() {
        let mut p = compile(
            "int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
             int main() { return fib(5); }",
        );
        let err = instrument_chinchilla(&mut p).unwrap_err();
        assert!(err.message.contains("recursion"));
    }

    #[test]
    fn chinchilla_data_overhead_dwarfs_tics() {
        let mut chin = compile(LOOPY);
        instrument_chinchilla(&mut chin).unwrap();
        let mut tics = compile(LOOPY);
        instrument_tics(&mut tics).unwrap();
        assert!(chin.data_bytes() > 2 * tics.data_bytes());
        assert!(chin.text_bytes() > tics.text_bytes());
    }

    #[test]
    fn ratchet_checkpoints_war_and_pointer_stores() {
        let mut p = compile(
            "int g;
             int buf[4];
             int main() {
                 g = g + 1;          // WAR on g
                 buf[g] = 2;         // pointer-class store
                 return g;
             }",
        );
        instrument_ratchet(&mut p).unwrap();
        let (_, main) = p.function("main").unwrap();
        let sites = main
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Checkpoint(CkptSite::Auto)))
            .count();
        assert!(sites >= 2, "got {sites}");
    }

    #[test]
    fn task_based_pass_logs_stores_and_marks_boundaries() {
        let mut p = compile(
            "nv int cur; int shared;
             int task_a() { shared = 1; return 1; }
             int task_b() { shared = 2; return 0; }
             int main() { while (1) { if (cur == 0) { cur = task_a(); } else { cur = task_b(); } } return 0; }",
        );
        instrument_task_based(&mut p, &["task_a", "task_b"], 2_000, 4_000).unwrap();
        assert_eq!(p.instrumentation, Instrumentation::TaskBased);
        let (_, a) = p.function("task_a").unwrap();
        assert_eq!(a.code[0], Instr::Checkpoint(CkptSite::TaskBoundary));
        assert!(a
            .code
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobalLogged(_))));
        assert!(instrument_task_based(&mut p.clone(), &["missing"], 0, 0).is_err());
    }

    #[test]
    fn task_boundary_checkpoints_target_named_functions() {
        let mut p = compile(
            "int work() { return 1; }
             int main() { return work(); }",
        );
        instrument_tics(&mut p).unwrap();
        add_task_boundary_checkpoints(&mut p, &["work"]);
        let (_, work) = p.function("work").unwrap();
        assert_eq!(work.code[0], Instr::Checkpoint(CkptSite::TaskBoundary));
        let (_, main) = p.function("main").unwrap();
        assert_ne!(main.code[0], Instr::Checkpoint(CkptSite::TaskBoundary));
    }
}
