//! Lexer for mini-C with TICS time-annotation syntax.

use crate::error::{CompileError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Time literal, normalized to microseconds (`200ms`, `5s`, `10us`).
    TimeLit(u64),

    // keywords
    /// `int`
    KwInt,
    /// `unsigned` (accepted and treated as `int`)
    KwUnsigned,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `nv` — non-volatile global qualifier (the paper's `NV`)
    KwNv,
    /// `catch`
    KwCatch,

    // TICS annotations
    /// `@expires_after`
    AtExpiresAfter,
    /// `@expires`
    AtExpires,
    /// `@timely`
    AtTimely,
    /// `@=`
    AtAssign,

    // punctuation & operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Assign,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// End of input.
    Eof,
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "int" => Tok::KwInt,
        "unsigned" => Tok::KwUnsigned,
        "void" => Tok::KwVoid,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "nv" => Tok::KwNv,
        "catch" => Tok::KwCatch,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(CompileError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, CompileError> {
        let start = self.pos();
        let mut value: i64 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let mut any = false;
            while let Some(c) = self.peek() {
                let d = match c {
                    b'0'..=b'9' => i64::from(c - b'0'),
                    b'a'..=b'f' => i64::from(c - b'a' + 10),
                    b'A'..=b'F' => i64::from(c - b'A' + 10),
                    _ => break,
                };
                any = true;
                value = value.wrapping_mul(16).wrapping_add(d);
                self.bump();
            }
            if !any {
                return Err(CompileError::new(start, "malformed hex literal"));
            }
            return Ok(Tok::Int(value));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(c - b'0')))
                    .ok_or_else(|| CompileError::new(start, "integer literal too large"))?;
                self.bump();
            } else {
                break;
            }
        }
        // Time-literal suffix directly attached: `us`, `ms`, `s`.
        match self.peek() {
            Some(b'u') if self.peek2() == Some(b's') => {
                self.bump();
                self.bump();
                Ok(Tok::TimeLit(value as u64))
            }
            Some(b'm') if self.peek2() == Some(b's') => {
                self.bump();
                self.bump();
                Ok(Tok::TimeLit(value as u64 * 1_000))
            }
            Some(b's')
                if !self
                    .peek2()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') =>
            {
                self.bump();
                Ok(Tok::TimeLit(value as u64 * 1_000_000))
            }
            _ => Ok(Tok::Int(value)),
        }
    }

    fn lex_ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        keyword(&s).unwrap_or(Tok::Ident(s))
    }

    fn lex_at(&mut self) -> Result<Tok, CompileError> {
        let start = self.pos();
        self.bump(); // '@'
        if self.peek() == Some(b'=') {
            self.bump();
            return Ok(Tok::AtAssign);
        }
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                word.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "expires_after" => Ok(Tok::AtExpiresAfter),
            "expires" => Ok(Tok::AtExpires),
            "timely" => Ok(Tok::AtTimely),
            _ => Err(CompileError::new(
                start,
                format!("unknown annotation `@{word}`"),
            )),
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token { tok: Tok::Eof, pos });
        };
        let tok = match c {
            b'0'..=b'9' => self.lex_number()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            b'@' => self.lex_at()?,
            _ => {
                self.bump();
                let two = |l: &mut Self, t| {
                    l.bump();
                    t
                };
                match (c, self.peek()) {
                    (b'=', Some(b'=')) => two(self, Tok::EqEq),
                    (b'!', Some(b'=')) => two(self, Tok::NotEq),
                    (b'<', Some(b'=')) => two(self, Tok::Le),
                    (b'>', Some(b'=')) => two(self, Tok::Ge),
                    (b'&', Some(b'&')) => two(self, Tok::AndAnd),
                    (b'|', Some(b'|')) => two(self, Tok::OrOr),
                    (b'<', Some(b'<')) => two(self, Tok::Shl),
                    (b'>', Some(b'>')) => two(self, Tok::Shr),
                    (b'+', Some(b'+')) => two(self, Tok::PlusPlus),
                    (b'-', Some(b'-')) => two(self, Tok::MinusMinus),
                    (b'+', Some(b'=')) => two(self, Tok::PlusAssign),
                    (b'-', Some(b'=')) => two(self, Tok::MinusAssign),
                    (b'*', Some(b'=')) => two(self, Tok::StarAssign),
                    (b'/', Some(b'=')) => two(self, Tok::SlashAssign),
                    (b'(', _) => Tok::LParen,
                    (b')', _) => Tok::RParen,
                    (b'{', _) => Tok::LBrace,
                    (b'}', _) => Tok::RBrace,
                    (b'[', _) => Tok::LBracket,
                    (b']', _) => Tok::RBracket,
                    (b';', _) => Tok::Semi,
                    (b',', _) => Tok::Comma,
                    (b'+', _) => Tok::Plus,
                    (b'-', _) => Tok::Minus,
                    (b'*', _) => Tok::Star,
                    (b'/', _) => Tok::Slash,
                    (b'%', _) => Tok::Percent,
                    (b'&', _) => Tok::Amp,
                    (b'|', _) => Tok::Pipe,
                    (b'^', _) => Tok::Caret,
                    (b'~', _) => Tok::Tilde,
                    (b'!', _) => Tok::Bang,
                    (b'<', _) => Tok::Lt,
                    (b'>', _) => Tok::Gt,
                    (b'=', _) => Tok::Assign,
                    (b'?', _) => Tok::Question,
                    (b':', _) => Tok::Colon,
                    _ => {
                        return Err(CompileError::new(
                            pos,
                            format!("unexpected character `{}`", c as char),
                        ))
                    }
                }
            }
        };
        Ok(Token { tok, pos })
    }
}

/// Tokenizes mini-C source.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unknown annotations,
/// unterminated comments, or stray characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut lx = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = t.tok == Tok::Eof;
        out.push(t);
        if eof {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_program_tokens() {
        let t = toks("int main() { return 0; }");
        assert_eq!(
            t,
            vec![
                Tok::KwInt,
                Tok::Ident("main".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::KwReturn,
                Tok::Int(0),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn time_literals_normalize_to_micros() {
        assert_eq!(toks("5s")[0], Tok::TimeLit(5_000_000));
        assert_eq!(toks("200ms")[0], Tok::TimeLit(200_000));
        assert_eq!(toks("10us")[0], Tok::TimeLit(10));
        // `5seconds` is not a time literal; `5` then ident `seconds`.
        assert_eq!(toks("5seconds")[0], Tok::Int(5));
    }

    #[test]
    fn hex_and_decimal() {
        assert_eq!(toks("0x1F")[0], Tok::Int(31));
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert!(lex("0x").is_err());
    }

    #[test]
    fn annotations() {
        assert_eq!(
            toks("@expires_after @expires @timely x @= y")[..6],
            [
                Tok::AtExpiresAfter,
                Tok::AtExpires,
                Tok::AtTimely,
                Tok::Ident("x".into()),
                Tok::AtAssign,
                Tok::Ident("y".into())
            ]
        );
        assert!(lex("@bogus").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || << >> ++ -- += -=")
                .into_iter()
                .filter(|t| *t != Tok::Eof)
                .count(),
            12
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("// line\nint /* block\nstill */ x;");
        assert_eq!(t[0], Tok::KwInt);
        assert_eq!(t[1], Tok::Ident("x".into()));
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("int\n  x;").unwrap();
        assert_eq!(ts[0].pos.line, 1);
        assert_eq!(ts[1].pos.line, 2);
        assert_eq!(ts[1].pos.col, 3);
    }

    #[test]
    fn nv_keyword() {
        assert_eq!(toks("nv int x;")[0], Tok::KwNv);
    }
}
