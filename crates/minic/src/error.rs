//! Compilation errors.

use std::error::Error;
use std::fmt;

/// Position in the source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced anywhere in the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where the problem was detected.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `pos`.
    #[must_use]
    pub fn new(pos: Pos, message: impl Into<String>) -> CompileError {
        CompileError {
            pos,
            message: message.into(),
        }
    }

    /// Creates an error with no useful position (e.g. a whole-program
    /// property such as "recursion is not supported").
    #[must_use]
    pub fn global(message: impl Into<String>) -> CompileError {
        CompileError::new(Pos::default(), message)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos.line == 0 {
            write!(f, "error: {}", self.message)
        } else {
            write!(f, "error at {}: {}", self.pos, self.message)
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        let e = CompileError::new(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "error at 3:7: unexpected token");
        let g = CompileError::global("recursion not supported");
        assert_eq!(g.to_string(), "error: recursion not supported");
    }
}
