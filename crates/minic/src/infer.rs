//! Inference of timing semantics from legacy code — the paper's §7
//! future work ("we anticipate exploring ways to automatically import or
//! infer timing semantics and rules from legacy code"), implemented as a
//! static analysis.
//!
//! The analysis recognizes the manual-time idioms that legacy embedded
//! code uses (and that break on intermittent power, Figure 3) and
//! suggests the TICS annotation that replaces each:
//!
//! * a variable assigned from a sensor builtin → annotate it
//!   `@expires_after` and assign with `@=` (it is time-sensitive data),
//! * a variable assigned from `time_ms()` near a sensor assignment → a
//!   manual timestamp pairing; the pair risks *misalignment* and should
//!   become one atomic `@=`,
//! * a comparison between a clock reading and a stored timestamp (the
//!   `time_ms() - t0 < C` idiom) → a manual deadline; the branch risks
//!   *timely-branching* violations and should become `@timely`.

use crate::ast::{BinOp, Expr, Stmt, Unit};
use crate::error::{CompileError, Pos};
use crate::lexer::lex;
use crate::parser::parse;
use std::collections::HashSet;

/// What kind of annotation the analysis recommends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuggestionKind {
    /// Declare the variable with `@expires_after` and assign via `@=`.
    ExpiresAfter {
        /// The sensor-fed variable.
        var: String,
    },
    /// Fuse a manual `time_ms()` timestamp with its sensor read into one
    /// atomic `@=` (misalignment risk, Figure 3c).
    AtomicPair {
        /// The manual timestamp variable.
        timestamp_var: String,
        /// The sensor-fed variable it describes.
        data_var: String,
    },
    /// Replace a manual deadline comparison with `@timely` (timely-
    /// branching risk, Figure 3b).
    TimelyBranch {
        /// The timestamp variable used in the predicate.
        timestamp_var: String,
    },
    /// Guard consumption of sensor data with `@expires` (expiration
    /// risk, Figure 3d).
    ExpiresGuard {
        /// The sensor-fed variable being consumed.
        var: String,
    },
}

/// One inferred annotation opportunity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Source position the suggestion anchors to.
    pub pos: Pos,
    /// The recommended annotation.
    pub kind: SuggestionKind,
    /// Human-readable explanation.
    pub message: String,
}

#[derive(Default)]
struct Inference {
    /// Variables assigned from `sample*()` builtins.
    sensor_vars: HashSet<String>,
    /// Variables assigned from `time_ms()`/`time_us()`.
    time_vars: HashSet<String>,
    suggestions: Vec<Suggestion>,
    /// Positions of recent sensor assignments in the current block, to
    /// pair with nearby timestamp assignments.
    recent: Vec<(String, bool, Pos)>, // (var, is_sensor, pos)
}

fn call_name(e: &Expr) -> Option<&str> {
    if let Expr::Call { name, .. } = e {
        Some(name)
    } else {
        None
    }
}

fn is_sensor_call(e: &Expr) -> bool {
    matches!(
        call_name(e),
        Some("sample" | "sample_accel" | "sample_moisture" | "sample_temp")
    )
}

fn is_time_call(e: &Expr) -> bool {
    matches!(call_name(e), Some("time_ms" | "time_us"))
}

fn assigned_var(target: &Expr) -> Option<String> {
    match target {
        Expr::Var(n, _) => Some(n.clone()),
        Expr::Index(b, _, _) => assigned_var(b),
        _ => None,
    }
}

impl Inference {
    fn expr_mentions(&self, e: &Expr, vars: &HashSet<String>) -> bool {
        match e {
            Expr::Var(n, _) => vars.contains(n),
            Expr::Int(..) | Expr::TimeLit(..) => false,
            Expr::Index(a, b, _) | Expr::Binary(_, a, b, _) => {
                self.expr_mentions(a, vars) || self.expr_mentions(b, vars)
            }
            Expr::Deref(a, _) | Expr::AddrOf(a, _) | Expr::Unary(_, a, _) => {
                self.expr_mentions(a, vars)
            }
            Expr::Cond(a, b, c, _) => {
                self.expr_mentions(a, vars)
                    || self.expr_mentions(b, vars)
                    || self.expr_mentions(c, vars)
            }
            Expr::Assign { target, value, .. } => {
                self.expr_mentions(target, vars) || self.expr_mentions(value, vars)
            }
            Expr::Call { args, .. } => args.iter().any(|a| self.expr_mentions(a, vars)),
            Expr::PostIncDec { target, .. } => self.expr_mentions(target, vars),
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        if let Expr::Assign {
            target,
            value,
            timestamped,
            pos,
            ..
        } = e
        {
            if let Some(var) = assigned_var(target) {
                if is_sensor_call(value) && !timestamped {
                    self.sensor_vars.insert(var.clone());
                    self.suggestions.push(Suggestion {
                        pos: *pos,
                        kind: SuggestionKind::ExpiresAfter { var: var.clone() },
                        message: format!(
                            "`{var}` holds sensor data; declare it `@expires_after` \
                             and assign with `@=` so its age survives power failures"
                        ),
                    });
                    // A manual timestamp taken *before* the sensor read is
                    // the other half of the misalignment idiom.
                    if let Some((ts_var, _, _)) = self
                        .recent
                        .iter()
                        .rev()
                        .find(|(v, s, _)| !s && self.time_vars.contains(v))
                        .cloned()
                    {
                        self.suggestions.push(Suggestion {
                            pos: *pos,
                            kind: SuggestionKind::AtomicPair {
                                timestamp_var: ts_var,
                                data_var: var.clone(),
                            },
                            message: format!(
                                "`{var}` is sampled after a manual timestamp; a power \
                                 failure between them misaligns the pair (Fig. 3c) — \
                                 fuse into one `@=`"
                            ),
                        });
                    }
                    self.recent.push((var, true, *pos));
                    return;
                }
                if is_time_call(value) {
                    self.time_vars.insert(var.clone());
                    // Pair with a nearby sensor assignment in this block.
                    if let Some((data_var, _, _)) =
                        self.recent.iter().rev().find(|(_, s, _)| *s).cloned()
                    {
                        self.suggestions.push(Suggestion {
                            pos: *pos,
                            kind: SuggestionKind::AtomicPair {
                                timestamp_var: var.clone(),
                                data_var,
                            },
                            message: format!(
                                "`{var}` manually timestamps nearby sensor data; a power \
                                 failure between the two misaligns them (Fig. 3c) — fuse \
                                 into one `@=`"
                            ),
                        });
                    } else {
                        self.recent.push((var, false, *pos));
                    }
                    return;
                }
            }
        }
        // Recurse into sub-expressions.
        match e {
            Expr::Index(a, b, _) | Expr::Binary(_, a, b, _) => {
                self.scan_expr(a);
                self.scan_expr(b);
            }
            Expr::Deref(a, _) | Expr::AddrOf(a, _) | Expr::Unary(_, a, _) => self.scan_expr(a),
            Expr::Cond(a, b, c, _) => {
                self.scan_expr(a);
                self.scan_expr(b);
                self.scan_expr(c);
            }
            Expr::Assign { target, value, .. } => {
                self.scan_expr(target);
                self.scan_expr(value);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| self.scan_expr(a)),
            Expr::PostIncDec { target, .. } => self.scan_expr(target),
            _ => {}
        }
    }

    /// A predicate that compares clock readings with stored timestamps.
    fn is_deadline_predicate(&self, e: &Expr) -> Option<String> {
        let Expr::Binary(op, l, r, _) = e else {
            return None;
        };
        if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
            return None;
        }
        let mentions_clock = |x: &Expr| {
            is_time_call(x)
                || matches!(x, Expr::Binary(_, a, b, _)
                    if is_time_call(a) || is_time_call(b)
                    || self.expr_mentions(a, &self.time_vars)
                    || self.expr_mentions(b, &self.time_vars))
        };
        if mentions_clock(l) || mentions_clock(r) {
            // Name the timestamp variable involved, if any.
            let name = self
                .time_vars
                .iter()
                .find(|v| {
                    self.expr_mentions(l, &HashSet::from([(*v).clone()]))
                        || self.expr_mentions(r, &HashSet::from([(*v).clone()]))
                })
                .cloned()
                .unwrap_or_else(|| "<clock>".to_string());
            return Some(name);
        }
        None
    }

    fn scan_cond(&mut self, cond: &Expr, pos: Pos) {
        if let Some(timestamp_var) = self.is_deadline_predicate(cond) {
            self.suggestions.push(Suggestion {
                pos,
                kind: SuggestionKind::TimelyBranch {
                    timestamp_var: timestamp_var.clone(),
                },
                message: format!(
                    "manual deadline check against `{timestamp_var}`; after a reboot the \
                     device clock lies (Fig. 3b) — use `@timely`"
                ),
            });
        } else {
            // Consuming sensor data in a branch without a freshness guard.
            let consumed: Vec<String> = self
                .sensor_vars
                .iter()
                .filter(|v| self.expr_mentions(cond, &HashSet::from([(*v).clone()])))
                .cloned()
                .collect();
            for var in consumed {
                self.suggestions.push(Suggestion {
                    pos,
                    kind: SuggestionKind::ExpiresGuard { var: var.clone() },
                    message: format!(
                        "`{var}` is consumed without a freshness guard; after a long \
                         outage it may be stale (Fig. 3d) — wrap in `@expires({var})`"
                    ),
                });
            }
        }
    }

    fn scan_block(&mut self, stmts: &[Stmt]) {
        let recent_mark = self.recent.len();
        for s in stmts {
            self.scan_stmt(s);
        }
        self.recent.truncate(recent_mark);
    }

    fn scan_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.scan_expr(e),
            Stmt::Decl {
                name, init, pos, ..
            } => {
                if let Some(init) = init {
                    if is_sensor_call(init) {
                        self.sensor_vars.insert(name.clone());
                        self.suggestions.push(Suggestion {
                            pos: *pos,
                            kind: SuggestionKind::ExpiresAfter { var: name.clone() },
                            message: format!(
                                "`{name}` holds sensor data; declare it `@expires_after` \
                                 and assign with `@=`"
                            ),
                        });
                        self.recent.push((name.clone(), true, *pos));
                    } else if is_time_call(init) {
                        self.time_vars.insert(name.clone());
                        self.recent.push((name.clone(), false, *pos));
                    } else {
                        self.scan_expr(init);
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                self.scan_cond(cond, cond.pos());
                self.scan_expr(cond);
                self.scan_block(then);
                self.scan_block(els);
            }
            Stmt::While { cond, body } => {
                self.scan_expr(cond);
                self.scan_block(body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.scan_stmt(init);
                }
                if let Some(cond) = cond {
                    self.scan_expr(cond);
                }
                if let Some(step) = step {
                    self.scan_expr(step);
                }
                self.scan_block(body);
            }
            Stmt::Return(Some(e), _) => self.scan_expr(e),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => self.scan_block(b),
            Stmt::Expires { body, catch, .. } => {
                self.scan_block(body);
                if let Some(c) = catch {
                    self.scan_block(c);
                }
            }
            Stmt::Timely {
                deadline,
                body,
                els,
                ..
            } => {
                self.scan_expr(deadline);
                self.scan_block(body);
                self.scan_block(els);
            }
        }
    }
}

/// Analyzes a parsed unit for manual-time idioms and returns annotation
/// suggestions in source order.
#[must_use]
pub fn infer_annotations(unit: &Unit) -> Vec<Suggestion> {
    let mut inf = Inference::default();
    for f in &unit.functions {
        inf.recent.clear();
        inf.scan_block(&f.body);
    }
    let mut out = inf.suggestions;
    out.sort_by_key(|s| (s.pos.line, s.pos.col));
    out.dedup_by(|a, b| a.kind == b.kind && a.pos.line == b.pos.line);
    out
}

/// Convenience: lex + parse + infer in one call.
///
/// # Errors
///
/// Returns a [`CompileError`] if the source does not parse.
pub fn suggest(source: &str) -> Result<Vec<Suggestion>, CompileError> {
    let unit = parse(lex(source)?)?;
    Ok(infer_annotations(&unit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_sensor_fed_variables() {
        let s = suggest(
            "int temp;
             int main() { temp = sample(); return temp; }",
        )
        .unwrap();
        assert!(s
            .iter()
            .any(|x| matches!(&x.kind, SuggestionKind::ExpiresAfter { var } if var == "temp")));
    }

    #[test]
    fn detects_manual_timestamp_pairing() {
        let s = suggest(
            "int d; int ts;
             int main() {
                 d = sample();
                 ts = time_ms();
                 return d;
             }",
        )
        .unwrap();
        assert!(
            s.iter().any(|x| matches!(
                &x.kind,
                SuggestionKind::AtomicPair { timestamp_var, data_var }
                    if timestamp_var == "ts" && data_var == "d"
            )),
            "{s:#?}"
        );
    }

    #[test]
    fn detects_manual_deadline_checks() {
        let s = suggest(
            "int t0;
             int main() {
                 t0 = time_ms();
                 if (time_ms() - t0 < 200) { send(1); }
                 return 0;
             }",
        )
        .unwrap();
        assert!(
            s.iter().any(|x| matches!(
                &x.kind,
                SuggestionKind::TimelyBranch { timestamp_var } if timestamp_var == "t0"
            )),
            "{s:#?}"
        );
    }

    #[test]
    fn detects_unguarded_consumption() {
        let s = suggest(
            "int d;
             int main() {
                 d = sample();
                 if (d > 30) { led(1); }
                 return 0;
             }",
        )
        .unwrap();
        assert!(
            s.iter()
                .any(|x| matches!(&x.kind, SuggestionKind::ExpiresGuard { var } if var == "d")),
            "{s:#?}"
        );
    }

    #[test]
    fn annotated_code_yields_no_expires_suggestions() {
        // Already-TICS code uses `@=`; the analysis must not nag.
        let s = suggest(
            "@expires_after = 1s
             int d;
             int main() {
                 d @= sample();
                 @expires(d) { led(1); }
                 return 0;
             }",
        )
        .unwrap();
        assert!(
            !s.iter()
                .any(|x| matches!(&x.kind, SuggestionKind::ExpiresAfter { .. })),
            "{s:#?}"
        );
    }

    #[test]
    fn finds_all_three_figure3_risks_in_the_plain_ar_idiom() {
        // The exact shape of the paper's manual-time AR application.
        let s = suggest(
            "int accel[6];
             int win_ts;
             int main() {
                 while (1) {
                     win_ts = time_ms();
                     for (int i = 0; i < 6; i++) { accel[i] = sample_accel(); }
                     int now = time_ms();
                     if (now - win_ts < 200) {
                         if (accel[0] > 30) { send(1); }
                     }
                 }
                 return 0;
             }",
        )
        .unwrap();
        let kinds: Vec<&SuggestionKind> = s.iter().map(|x| &x.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, SuggestionKind::ExpiresAfter { var } if var == "accel")),
            "{s:#?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, SuggestionKind::AtomicPair { .. })),
            "{s:#?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, SuggestionKind::TimelyBranch { .. })),
            "{s:#?}"
        );
    }

    #[test]
    fn suggestions_are_ordered_and_positioned() {
        let s = suggest(
            "int a; int b;
             int main() {
                 a = sample();
                 b = sample();
                 return 0;
             }",
        )
        .unwrap();
        assert!(s.len() >= 2);
        assert!(s.windows(2).all(|w| w[0].pos.line <= w[1].pos.line));
        assert!(s.iter().all(|x| x.pos.line > 0));
    }
}
