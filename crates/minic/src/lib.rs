//! # tics-minic — the "legacy software" substrate
//!
//! TICS's claim (ASPLOS 2020) is that *unaltered C programs* — pointers,
//! recursion, any optimization level — can run on intermittent power. To
//! reproduce that claim without the authors' LLVM LibTooling + GCC backend
//! toolchain, this crate implements a complete miniature C compiler:
//!
//! * [`lexer`], [`parser`], [`ast`] — a C subset with `int`, multi-level
//!   pointers, arrays, recursion, `nv` (non-volatile) globals, and the TICS
//!   time annotations (`@expires_after`, `@=`, `@expires`/`catch`,
//!   `@timely`/`else`),
//! * [`sema`] — name/type resolution, frame layout, call-graph facts
//!   (recursion detection — Chinchilla rejects recursive programs),
//! * [`isa`] and [`program`] — a compact bytecode ISA whose per-opcode
//!   encoded sizes model MSP430 code (`.text` bytes for Table 3),
//! * [`codegen`] — AST → bytecode,
//! * [`opt`] — `O0`/`O1`/`O2` optimizer pipelines (constant folding, jump
//!   threading, peephole, dead code),
//! * [`passes`] — the **intermittency instrumentation passes**: TICS
//!   (stack-segmentation checks, logged stores, checkpoints), MementOS
//!   (voltage-check checkpoints at loop latches and calls), Chinchilla
//!   (local-to-global promotion; fails on recursion), and Ratchet
//!   (idempotent-boundary checkpoints).
//!
//! The instrumented [`program::Program`] image is executed by `tics-vm`
//! against the simulated MCU from `tics-mcu`.
//!
//! ## Example
//!
//! ```
//! use tics_minic::compile;
//! use tics_minic::opt::OptLevel;
//!
//! let src = r#"
//!     int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
//!     int main() { return fib(10); }
//! "#;
//! let program = compile(src, OptLevel::O2)?;
//! assert!(program.function("fib").is_some());
//! # Ok::<(), tics_minic::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod infer;
pub mod isa;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod passes;
pub mod program;
pub mod sema;

pub use error::CompileError;
pub use program::Program;

use opt::OptLevel;

/// Compiles mini-C source to an *uninstrumented* bytecode program at the
/// given optimization level. Apply a pass from [`passes`] afterwards to
/// prepare it for an intermittency runtime.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic, or
/// semantic problem found.
pub fn compile(source: &str, opt_level: OptLevel) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(tokens)?;
    let checked = sema::analyze(&unit)?;
    let mut prog = codegen::generate(&checked)?;
    opt::optimize(&mut prog, opt_level);
    Ok(prog)
}
