//! Abstract syntax tree for mini-C.

use crate::error::Pos;

/// A value type: `int` or a (possibly multi-level) pointer.
///
/// Every scalar occupies 4 bytes; arrays decay to pointers in expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer (also used for `unsigned`).
    Int,
    /// Pointer to another type.
    Ptr(Box<Type>),
}

impl Type {
    /// Whether this is any pointer type.
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The pointed-to type, if a pointer.
    #[must_use]
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Int => None,
        }
    }

    /// Wraps in one more level of pointer.
    #[must_use]
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    LogNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Time literal (µs), usable where an `int` millisecond count is
    /// expected (e.g. `@timely(200ms)`).
    TimeLit(u64, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>, Pos),
    /// `*e`
    Deref(Box<Expr>, Pos),
    /// `&e`
    AddrOf(Box<Expr>, Pos),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// `cond ? then : else`
    Cond(Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// Assignment, optionally compound (`+=` carries `Some(BinOp::Add)`),
    /// optionally timestamped (`@=`).
    Assign {
        /// Assignment target (an lvalue expression).
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// `true` for the TICS `@=` atomic data+timestamp assignment.
        timestamped: bool,
        /// Source position.
        pos: Pos,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `x++` / `x--` (postfix; value is the *old* value).
    PostIncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of this expression.
    #[must_use]
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::TimeLit(_, p)
            | Expr::Var(_, p)
            | Expr::Index(_, _, p)
            | Expr::Deref(_, p)
            | Expr::AddrOf(_, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Cond(_, _, _, p)
            | Expr::Assign { pos: p, .. }
            | Expr::Call { pos: p, .. }
            | Expr::PostIncDec { pos: p, .. } => *p,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local variable declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Scalar type (`int`, `int*`, ...).
        ty: Type,
        /// `Some(len)` declares an array of `len` elements.
        array_len: Option<u32>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for` loop.
    For {
        /// Initializer (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`, with optional value.
    Return(Option<Expr>, Pos),
    /// `break`.
    Break(Pos),
    /// `continue`.
    Continue(Pos),
    /// Braced block (new scope).
    Block(Vec<Stmt>),
    /// TICS `@expires(var) { … } [catch { … }]`.
    Expires {
        /// The annotated variable being guarded.
        var: String,
        /// Guarded body.
        body: Vec<Stmt>,
        /// Expiration handler (exception-style form).
        catch: Option<Vec<Stmt>>,
        /// Source position.
        pos: Pos,
    },
    /// TICS `@timely(deadline) { … } [else { … }]`.
    Timely {
        /// Deadline expression in milliseconds.
        deadline: Expr,
        /// Taken when `now < deadline`.
        body: Vec<Stmt>,
        /// Taken otherwise.
        els: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Scalar type.
    pub ty: Type,
    /// `Some(len)` declares an array.
    pub array_len: Option<u32>,
    /// Declared `nv` (retained across reboots under the bare runtime).
    pub nv: bool,
    /// Constant initializer words (scalar: one element; array: up to
    /// `array_len`, rest zero).
    pub init: Vec<i64>,
    /// `@expires_after` TTL in µs, if annotated.
    pub expires_after_us: Option<u64>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Whether declared `void` (otherwise returns `int`-compatible).
    pub is_void: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions, in declaration order.
    pub functions: Vec<FuncDecl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        let p = Type::Int.ptr_to();
        assert!(p.is_ptr());
        assert_eq!(p.pointee(), Some(&Type::Int));
        assert!(!Type::Int.is_ptr());
        assert_eq!(Type::Int.pointee(), None);
    }

    #[test]
    fn expr_pos_is_reachable_for_all_variants() {
        let p = Pos { line: 2, col: 5 };
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(1, p)),
            Box::new(Expr::Int(2, p)),
            p,
        );
        assert_eq!(e.pos(), p);
    }
}
