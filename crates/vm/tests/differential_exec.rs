//! Differential equivalence: decoded fast dispatch vs the reference
//! interpreter.
//!
//! The decoded engine is only allowed to change *host-side* work —
//! dispatch and bounds-check overhead. Everything observable about the
//! simulated device must be bit-identical to the reference interpreter:
//! the trace event stream, the cycle counter, per-span cycle
//! attribution, execution and memory statistics, the final contents of
//! SRAM and FRAM, and the run outcome (including trap text and panic
//! text from runs on corrupted state).
//!
//! Every test here runs the same image twice — once per engine, with
//! freshly built machine/runtime/supply — and compares full machine
//! snapshots. The grids cover the seven fault-corpus programs and the
//! Table 1 applications across the legacy-capable systems, under
//! continuous power, periodic intermittent power, adversarial fault
//! plans with torn writes, brown-out store corruption, and an
//! ISR-configured machine (the decoded engine's per-instruction "safe"
//! mode).

use tics_apps::build::{build_app, make_runtime, App, Scale, SystemUnderTest};
use tics_bench::fault::{build_fault_program, FaultProgram};
use tics_energy::{
    AdversarialSupply, ContinuousPower, Corruption, FaultPlan, PeriodicTrace, PowerSupply,
};
use tics_mcu::memory::MemoryStats;
use tics_mcu::CorruptionModel;
use tics_minic::opt::OptLevel;
use tics_minic::{compile, Program};
use tics_trace::{SpanKind, TraceRecord};
use tics_vm::{
    BareRuntime, DispatchEngine, Executor, ExecStats, IntermittentRuntime, Machine, MachineConfig,
};

/// Generous on-time budget: every grid cell either finishes or is
/// diagnosed (starved / budget-exhausted) well inside this.
const BUDGET_US: u64 = 50_000_000;

/// Reboots without progress before a run is declared starved. Both
/// engines must starve at the identical boot count.
const GUARD_BOOTS: u64 = 48;

/// Legacy-capable systems (the task kernels run different images and
/// are exercised by the fault/chaos suites, not this grid).
const SYSTEMS: [SystemUnderTest; 5] = [
    SystemUnderTest::PlainC,
    SystemUnderTest::Mementos,
    SystemUnderTest::Tics,
    SystemUnderTest::Chinchilla,
    SystemUnderTest::Ratchet,
];

// ---------------------------------------------------------------------
// Snapshot plumbing
// ---------------------------------------------------------------------

/// Everything observable about a finished run. Two engines agree iff
/// their snapshots are equal field-for-field.
#[derive(Debug)]
struct Snapshot {
    outcome: String,
    trace: Vec<TraceRecord>,
    cycles: u64,
    stats: ExecStats,
    mem_stats: MemoryStats,
    span: [u64; SpanKind::COUNT],
    sram: Vec<u8>,
    fram: Vec<u8>,
}

/// A rebuildable power-supply spec (each engine run needs a fresh one).
#[derive(Debug, Clone)]
enum Supply {
    Continuous,
    Periodic { on_us: u64, off_us: u64 },
    Adversarial(FaultPlan),
}

impl Supply {
    fn build(&self) -> Box<dyn PowerSupply> {
        match self {
            Supply::Continuous => Box::new(ContinuousPower::new()),
            Supply::Periodic { on_us, off_us } => Box::new(PeriodicTrace::new(*on_us, *off_us)),
            Supply::Adversarial(plan) => Box::new(AdversarialSupply::new(plan.clone())),
        }
    }
}

/// Runs one engine over a fresh machine/runtime/supply and snapshots
/// the observable state. Panics from executing corrupted state are
/// contained and compared as text, exactly like the fault harness.
fn run_one(
    prog: &Program,
    cfg: &MachineConfig,
    rt_of: &dyn Fn() -> Box<dyn IntermittentRuntime>,
    engine: DispatchEngine,
    supply: &Supply,
    corruption: Option<&Corruption>,
) -> Snapshot {
    let mut m = Machine::new(prog.clone(), cfg.clone()).expect("machine construction");
    if let Some(c) = corruption {
        m.mem.set_corruption(Some(
            CorruptionModel::new(c.window, c.flip_prob, c.drop_prob, c.seed)
                .with_sram_decay(c.sram_decay),
        ));
    }
    let mut rt = rt_of();
    let mut sup = supply.build();
    let exec = Executor::new()
        .with_engine(engine)
        .with_time_budget(BUDGET_US)
        .with_progress_guard(GUARD_BOOTS);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.run(&mut m, rt.as_mut(), sup.as_mut())
    }));
    let outcome = match result {
        Ok(Ok(o)) => format!("{o:?}"),
        Ok(Err(e)) => format!("error: {e}"),
        Err(payload) => {
            let text = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("panic: {text}")
        }
    };
    let layout = *m.mem.layout();
    let sram = m
        .mem
        .peek_bytes(layout.sram.start, layout.sram.len())
        .expect("SRAM dump");
    let fram = m
        .mem
        .peek_bytes(layout.fram.start, layout.fram.len())
        .expect("FRAM dump");
    Snapshot {
        outcome,
        trace: m.trace().records().to_vec(),
        cycles: m.cycles(),
        stats: m.stats().clone(),
        mem_stats: m.mem.stats(),
        span: m.mem.span_cycles_all(),
        sram,
        fram,
    }
}

/// Runs both engines and asserts snapshot equality, reporting the first
/// diverging trace event for debuggability.
fn assert_engines_agree(
    label: &str,
    prog: &Program,
    cfg: &MachineConfig,
    rt_of: &dyn Fn() -> Box<dyn IntermittentRuntime>,
    supply: &Supply,
    corruption: Option<&Corruption>,
) {
    let reference = run_one(prog, cfg, rt_of, DispatchEngine::Reference, supply, corruption);
    let decoded = run_one(prog, cfg, rt_of, DispatchEngine::Decoded, supply, corruption);

    if reference.trace != decoded.trace {
        let i = reference
            .trace
            .iter()
            .zip(&decoded.trace)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.trace.len().min(decoded.trace.len()));
        panic!(
            "[{label}] trace diverges at event {i}:\n  reference: {:?}\n  decoded:   {:?}\n  (lengths {} vs {})",
            reference.trace.get(i),
            decoded.trace.get(i),
            reference.trace.len(),
            decoded.trace.len(),
        );
    }
    assert_eq!(reference.outcome, decoded.outcome, "[{label}] outcome");
    assert_eq!(reference.cycles, decoded.cycles, "[{label}] cycle counter");
    assert_eq!(reference.stats, decoded.stats, "[{label}] exec stats");
    assert_eq!(reference.mem_stats, decoded.mem_stats, "[{label}] memory stats");
    assert_eq!(reference.span, decoded.span, "[{label}] span cycle attribution");
    assert!(
        reference.sram == decoded.sram,
        "[{label}] final SRAM contents differ"
    );
    assert!(
        reference.fram == decoded.fram,
        "[{label}] final FRAM contents differ"
    );
}

/// The fault-corpus grid: every feasible (program, system) image.
fn fault_grid() -> Vec<(String, Program, SystemUnderTest)> {
    let mut cells = Vec::new();
    for program in FaultProgram::ALL {
        for system in SYSTEMS {
            match build_fault_program(program, system) {
                Ok(prog) => cells.push((
                    format!("{}/{:?}", program.name(), system),
                    prog,
                    system,
                )),
                Err(_) => continue, // infeasible (e.g. recursion on Chinchilla)
            }
        }
    }
    assert!(cells.len() >= 30, "fault grid unexpectedly sparse");
    cells
}

// ---------------------------------------------------------------------
// Grids
// ---------------------------------------------------------------------

#[test]
fn fault_corpus_agrees_on_continuous_power() {
    let cfg = MachineConfig::default();
    for (label, prog, system) in fault_grid() {
        assert_engines_agree(
            &format!("{label}/continuous"),
            &prog,
            &cfg,
            &|| make_runtime(system, &prog),
            &Supply::Continuous,
            None,
        );
    }
}

#[test]
fn fault_corpus_agrees_on_intermittent_power() {
    let cfg = MachineConfig::default();
    // Two on-period lengths: one roomy (few reboots), one tight enough
    // that whole-state checkpointers starve on the big-state program —
    // both engines must starve at the identical boot.
    for (on_us, off_us) in [(60_000, 200), (9_000, 150)] {
        for (label, prog, system) in fault_grid() {
            assert_engines_agree(
                &format!("{label}/periodic-{on_us}"),
                &prog,
                &cfg,
                &|| make_runtime(system, &prog),
                &Supply::Periodic { on_us, off_us },
                None,
            );
        }
    }
}

#[test]
fn fault_corpus_agrees_under_adversarial_cuts_and_corruption() {
    let cfg = MachineConfig::default();
    for (idx, (label, prog, system)) in fault_grid().into_iter().enumerate() {
        // Anchor the cuts to the run's own length: a continuous run
        // measures total cycles, then power dies at 1/4, 1/2, and 3/4
        // of that — guaranteed mid-execution cuts with torn-write
        // boundaries armed. (Engine choice is immaterial here: the
        // continuous-power test proves cycle equality.)
        let golden = run_one(
            &prog,
            &cfg,
            &|| make_runtime(system, &prog),
            DispatchEngine::Decoded,
            &Supply::Continuous,
            None,
        );
        let total = golden.cycles.max(8);
        let plan = FaultPlan::new(vec![total / 4, total / 2, 3 * total / 4], 150);

        // Torn writes only.
        assert_engines_agree(
            &format!("{label}/adversarial"),
            &prog,
            &cfg,
            &|| make_runtime(system, &prog),
            &Supply::Adversarial(plan.clone()),
            None,
        );

        // Torn writes plus brown-out corruption: at-risk stores flip or
        // drop, SRAM decays across outages. The corruption RNG stream
        // advances per intercepted store, so agreement here proves the
        // decoded engine issues the identical store sequence.
        let corruption = Corruption::with_rate(2_000, 0.5, 0xC0FF_EE00 ^ idx as u64);
        assert_engines_agree(
            &format!("{label}/corrupted"),
            &prog,
            &cfg,
            &|| make_runtime(system, &prog),
            &Supply::Adversarial(plan),
            Some(&corruption),
        );
    }
}

#[test]
fn table1_apps_agree_across_engines() {
    let cfg = MachineConfig::default();
    for app in [App::Ar, App::Bc, App::Cuckoo, App::Ghm] {
        for system in SYSTEMS {
            let opt = if system == SystemUnderTest::Chinchilla {
                OptLevel::O0
            } else {
                OptLevel::O2
            };
            let Ok(prog) = build_app(app, system, opt, Scale(8)) else {
                continue; // infeasible combination
            };
            let label = format!("{}/{system:?}", app.name());
            assert_engines_agree(
                &format!("{label}/continuous"),
                &prog,
                &cfg,
                &|| make_runtime(system, &prog),
                &Supply::Continuous,
                None,
            );
            assert_engines_agree(
                &format!("{label}/periodic"),
                &prog,
                &cfg,
                &|| make_runtime(system, &prog),
                &Supply::Periodic {
                    on_us: 40_000,
                    off_us: 200,
                },
                None,
            );
        }
    }
}

#[test]
fn isr_machine_runs_in_safe_mode_and_agrees() {
    // A periodic ISR forces the decoded engine into per-instruction
    // "safe" dispatch (the ISR must be able to fire between any two
    // instructions, exactly as in the reference interpreter).
    let src = "
        nv int ticks;
        nv int acc;
        int on_tick() {
            ticks = ticks + 1;
            return 0;
        }
        int main() {
            for (int i = 0; i < 600; i++) {
                acc = acc + i * 3;
                if (i % 64 == 63) { send(acc); }
            }
            send(ticks);
            return acc;
        }
    ";
    let prog = compile(src, OptLevel::O2).expect("compile ISR program");
    let cfg = MachineConfig {
        isr: Some(("on_tick".to_string(), 700)),
        ..MachineConfig::default()
    };
    for supply in [
        Supply::Continuous,
        Supply::Periodic {
            on_us: 5_000,
            off_us: 150,
        },
    ] {
        assert_engines_agree(
            "isr/bare",
            &prog,
            &cfg,
            &|| Box::new(BareRuntime::new()),
            &supply,
            None,
        );
    }
}
