//! Property test: generated instruction sequences execute identically
//! under the reference and decoded engines.
//!
//! A `splitmix64`-seeded generator assembles random programs from
//! depth-0 block templates (arithmetic chains, local/global RMW
//! patterns that the decoder fuses into superinstructions, pointer
//! stores, compare-and-branch blocks, bounded counted loops, calls,
//! possible divide-by-zero traps, sends, and peripheral intrinsics —
//! UART tx/rx pairs and journaled I2C read transactions, so torn wire
//! bytes, FIFO state, and the `tx_begin`/`tx_commit` no-driver path are
//! all covered differentially). A quarter of the
//! programs get a deliberately undersized operand stack so the decoder
//! refuses to verify them and falls back to reference semantics — the
//! runtime overflow trap must be identical.
//!
//! Each program runs under continuous power, under a short-period
//! intermittent supply (restart-from-`main` with torn multi-word state
//! across the cut boundary), and under the brown-out corruption model —
//! and the full machine snapshot (trace, cycles, span attribution,
//! stats, final SRAM + FRAM) must match between engines.

use tics_energy::{ContinuousPower, PeriodicTrace, PowerSupply};
use tics_mcu::memory::MemoryStats;
use tics_mcu::CorruptionModel;
use tics_minic::isa::{Instr, Syscall};
use tics_minic::program::{Function, GlobalVar};
use tics_minic::Program;
use tics_trace::{SpanKind, TraceRecord};
use tics_vm::{BareRuntime, DispatchEngine, Executor, ExecStats, Machine, MachineConfig};

/// Deterministic seed expander (same constants as the sweep harness).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(rng: &mut u64, n: u64) -> u64 {
    splitmix64(rng) % n
}

// ---------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------

/// Emits instructions while tracking the operand-stack depth, so every
/// generated block starts and ends at depth 0 and the high-water mark
/// sizes `max_ostack`.
struct Emitter {
    code: Vec<Instr>,
    depth: u16,
    max_depth: u16,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            code: Vec::new(),
            depth: 0,
            max_depth: 0,
        }
    }

    fn emit(&mut self, i: Instr, effect: i16) {
        self.code.push(i);
        self.depth = (i32::from(self.depth) + i32::from(effect)) as u16;
        self.max_depth = self.max_depth.max(self.depth);
    }

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }
}

const BINOPS: [Instr; 12] = [
    Instr::Add,
    Instr::Sub,
    Instr::Mul,
    Instr::BitAnd,
    Instr::BitOr,
    Instr::BitXor,
    Instr::Shl,
    Instr::Shr,
    Instr::Eq,
    Instr::Ne,
    Instr::Lt,
    Instr::Ge,
];

/// One depth-0 → depth-0 template. `locals`/`globals` are slot counts.
fn emit_block(e: &mut Emitter, rng: &mut u64, locals: u16, globals: u32) {
    let lslot = |rng: &mut u64| (pick(rng, u64::from(locals)) as u16) * 4;
    let gslot = |rng: &mut u64| (pick(rng, u64::from(globals)) as u32) * 4;
    let konst = |rng: &mut u64| (splitmix64(rng) as i32) % 1_000;
    let binop = |rng: &mut u64| BINOPS[pick(rng, BINOPS.len() as u64) as usize];
    match pick(rng, 12) {
        // Constant chain folded through a binop into a local
        // (the decoder's KBin / KStL shapes).
        0 => {
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(binop(rng), -1);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
        }
        // Local read-modify-write (the LdLKBinSt superinstruction).
        1 => {
            let o = lslot(rng);
            e.emit(Instr::LoadLocal(o), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(binop(rng), -1);
            e.emit(Instr::StoreLocal(o), -1);
        }
        // Global read-modify-write (the LdGKBinSt superinstruction).
        2 => {
            let g = gslot(rng);
            e.emit(Instr::LoadGlobal(g), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(binop(rng), -1);
            e.emit(Instr::StoreGlobal(g), -1);
        }
        // Compare-and-skip (the LdLKBinBr superinstruction): the taken
        // and fall-through paths rejoin at depth 0.
        3 => {
            e.emit(Instr::LoadLocal(lslot(rng)), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::Lt, -1);
            let jz_at = e.pc() as usize;
            e.emit(Instr::Jz(0), -1); // patched below
            e.emit(Instr::LoadGlobal(gslot(rng)), 1);
            e.emit(Instr::Const(1), 1);
            e.emit(Instr::Add, -1);
            e.emit(Instr::StoreGlobal(gslot(rng)), -1);
            let target = e.pc();
            e.code[jz_at] = Instr::Jz(target);
        }
        // Visible event: send a global (trace streams must match).
        4 => {
            e.emit(Instr::LoadGlobal(gslot(rng)), 1);
            e.emit(Instr::Syscall(Syscall::Send), 0);
            e.emit(Instr::Pop, -1);
        }
        // Pointer traffic through locals and globals.
        5 => {
            e.emit(Instr::AddrLocal(lslot(rng)), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::StoreInd, -2);
            e.emit(Instr::AddrGlobal(gslot(rng)), 1);
            e.emit(Instr::LoadInd, 0);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
        }
        // Stack shuffling.
        6 => {
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::Dup, 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::Swap, 0);
            e.emit(binop(rng), -1);
            e.emit(binop(rng), -1);
            e.emit(Instr::Neg, 0);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
        }
        // Bounded counted loop with a backward branch at depth 0.
        7 => {
            let counter = lslot(rng);
            let g = gslot(rng);
            e.emit(Instr::Const(3 + pick(rng, 5) as i32), 1);
            e.emit(Instr::StoreLocal(counter), -1);
            let top = e.pc();
            e.emit(Instr::LoadGlobal(g), 1);
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::BitXor, -1);
            e.emit(Instr::StoreGlobal(g), -1);
            e.emit(Instr::LoadLocal(counter), 1);
            e.emit(Instr::Const(1), 1);
            e.emit(Instr::Sub, -1);
            e.emit(Instr::StoreLocal(counter), -1);
            e.emit(Instr::LoadLocal(counter), 1);
            e.emit(Instr::Jnz(top), -1);
        }
        // Possible divide-by-zero: the trap (and its text) must be
        // identical across engines. One in four picks a zero divisor.
        8 => {
            let k = if pick(rng, 4) == 0 { 0 } else { konst(rng) | 1 };
            e.emit(Instr::LoadLocal(lslot(rng)), 1);
            e.emit(Instr::Const(k), 1);
            e.emit(if pick(rng, 2) == 0 { Instr::Div } else { Instr::Mod }, -1);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
        }
        // UART traffic: tx a computed byte (the result — 1 unless the
        // byte tore — lands in a local), then rx the loopback response
        // into a global. Wire state and FIFO contents must match.
        10 => {
            e.emit(Instr::LoadLocal(lslot(rng)), 1);
            e.emit(Instr::Syscall(Syscall::UartTx), 0);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
            e.emit(Instr::Syscall(Syscall::UartRx), 1);
            e.emit(Instr::StoreGlobal(gslot(rng)), -1);
        }
        // Journaled I2C read transaction. With `BareRuntime` there is
        // no transaction driver, so `tx_begin`/`tx_commit` take the
        // no-driver path — which must still be engine-identical, as
        // must the sensor's served-reading cursor.
        11 => {
            let id = 1 + pick(rng, 7) as i32;
            e.emit(Instr::Const(id), 1);
            e.emit(Instr::Syscall(Syscall::TxBegin), 0);
            e.emit(Instr::Pop, -1);
            e.emit(Instr::Syscall(Syscall::I2cReset), 1);
            e.emit(Instr::Pop, -1);
            e.emit(Instr::Const(0x40), 1);
            e.emit(Instr::Syscall(Syscall::I2cStart), 0);
            e.emit(Instr::Pop, -1);
            e.emit(Instr::Syscall(Syscall::I2cRead), 1);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
            e.emit(Instr::Syscall(Syscall::I2cStop), 1);
            e.emit(Instr::StoreGlobal(gslot(rng)), -1);
            e.emit(Instr::Const(id), 1);
            e.emit(Instr::Syscall(Syscall::TxCommit), 0);
            e.emit(Instr::Pop, -1);
        }
        // Call into the helper (runtime-mediated: decoded falls back to
        // reference dispatch for the Call itself).
        _ => {
            e.emit(Instr::Const(konst(rng)), 1);
            e.emit(Instr::Call(1), 0);
            e.emit(Instr::StoreLocal(lslot(rng)), -1);
        }
    }
    debug_assert_eq!(e.depth, 0, "templates must be depth-neutral");
}

/// A random program: initialized locals/globals, 4–10 template blocks,
/// a helper function, and a `Ret` of a global.
fn gen_program(rng: &mut u64) -> Program {
    let locals: u16 = 2 + pick(rng, 4) as u16;
    let globals: u32 = 2 + pick(rng, 4) as u32;

    let mut e = Emitter::new();
    for slot in 0..locals {
        e.emit(Instr::Const((splitmix64(rng) as i32) % 500), 1);
        e.emit(Instr::StoreLocal(slot * 4), -1);
    }
    let blocks = 4 + pick(rng, 7);
    for _ in 0..blocks {
        emit_block(&mut e, rng, locals, globals);
    }
    e.emit(Instr::LoadGlobal(0), 1);
    e.emit(Instr::Ret, -1);

    // One in four programs gets an undersized operand stack: the
    // decoder must refuse to verify and fall back to reference
    // semantics, and the runtime overflow trap must be identical.
    let undersized = pick(rng, 4) == 0;
    let max_ostack = if undersized {
        e.max_depth.saturating_sub(1)
    } else {
        e.max_depth
    };

    let main = Function {
        name: "main".to_string(),
        n_args: 0,
        locals_bytes: locals * 4,
        max_ostack,
        code: e.code,
        entry_checked: false,
    };
    let helper = Function {
        name: "helper".to_string(),
        n_args: 1,
        locals_bytes: 0,
        max_ostack: 2,
        code: vec![
            Instr::LoadLocal(0),
            Instr::Const(3),
            Instr::Mul,
            Instr::Ret,
        ],
        entry_checked: false,
    };
    let global_vars = (0..globals)
        .map(|i| GlobalVar {
            name: format!("g{i}"),
            offset: i * 4,
            size: 4,
            nv: pick(rng, 2) == 0,
            init: if pick(rng, 2) == 0 {
                vec![(splitmix64(rng) as i32) % 9_000]
            } else {
                Vec::new()
            },
            var_id: None,
        })
        .collect();
    Program {
        functions: vec![main, helper],
        globals: global_vars,
        globals_size: globals * 4,
        entry: 0,
        ..Program::default()
    }
}

// ---------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Snapshot {
    outcome: String,
    trace: Vec<TraceRecord>,
    cycles: u64,
    stats: ExecStats,
    mem_stats: MemoryStats,
    span: [u64; SpanKind::COUNT],
    sram: Vec<u8>,
    fram: Vec<u8>,
}

#[derive(Debug, Clone, Copy)]
enum Scenario {
    Continuous,
    /// Short on-periods: restart-from-`main` with torn stores at each
    /// period boundary.
    Torn,
    /// Torn periods plus the brown-out corruption model.
    Corrupted { seed: u64 },
}

fn run_one(prog: &Program, engine: DispatchEngine, scenario: Scenario) -> Snapshot {
    let mut m = Machine::new(prog.clone(), MachineConfig::default()).expect("machine");
    if let Scenario::Corrupted { seed } = scenario {
        m.mem
            .set_corruption(Some(CorruptionModel::new(600, 0.3, 0.3, seed).with_sram_decay(1.0)));
    }
    let mut supply: Box<dyn PowerSupply> = match scenario {
        Scenario::Continuous => Box::new(ContinuousPower::new()),
        // Short enough to cut most generated programs mid-run several
        // times; BareRuntime restarts from `main` with nv state kept.
        Scenario::Torn | Scenario::Corrupted { .. } => Box::new(PeriodicTrace::new(900, 120)),
    };
    let mut rt = BareRuntime::new();
    let exec = Executor::new()
        .with_engine(engine)
        .with_time_budget(400_000)
        .with_progress_guard(24);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.run(&mut m, &mut rt, supply.as_mut())
    }));
    let outcome = match result {
        Ok(Ok(o)) => format!("{o:?}"),
        Ok(Err(err)) => format!("error: {err}"),
        Err(payload) => {
            let text = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("panic: {text}")
        }
    };
    let layout = *m.mem.layout();
    Snapshot {
        outcome,
        trace: m.trace().records().to_vec(),
        cycles: m.cycles(),
        stats: m.stats().clone(),
        mem_stats: m.mem.stats(),
        span: m.mem.span_cycles_all(),
        sram: m.mem.peek_bytes(layout.sram.start, layout.sram.len()).unwrap(),
        fram: m.mem.peek_bytes(layout.fram.start, layout.fram.len()).unwrap(),
    }
}

fn assert_roundtrip(seed: u64, prog: &Program, scenario: Scenario) {
    let reference = run_one(prog, DispatchEngine::Reference, scenario);
    let decoded = run_one(prog, DispatchEngine::Decoded, scenario);
    assert_eq!(
        reference, decoded,
        "engines diverge on generated program (seed {seed:#x}, {scenario:?});\n\
         code: {:?}",
        prog.functions[0].code
    );
}

#[test]
fn generated_programs_roundtrip_on_continuous_power() {
    let mut rng = 0xD1FF_0001u64;
    for _ in 0..48 {
        let seed = rng;
        let prog = gen_program(&mut rng);
        assert_roundtrip(seed, &prog, Scenario::Continuous);
    }
}

#[test]
fn generated_programs_roundtrip_under_torn_restarts() {
    let mut rng = 0xD1FF_0002u64;
    for _ in 0..32 {
        let seed = rng;
        let prog = gen_program(&mut rng);
        assert_roundtrip(seed, &prog, Scenario::Torn);
    }
}

#[test]
fn generated_programs_roundtrip_under_brownout_corruption() {
    let mut rng = 0xD1FF_0003u64;
    for i in 0..32 {
        let seed = rng;
        let prog = gen_program(&mut rng);
        assert_roundtrip(seed, &prog, Scenario::Corrupted { seed: 0xBAD_F00D + i });
    }
}

/// The generator must actually exercise the fused fast path: decode the
/// generated programs and require a healthy superinstruction count.
#[test]
fn generated_programs_exercise_fusion() {
    let mut rng = 0xD1FF_0004u64;
    let mut fused = 0usize;
    let mut programs = 0usize;
    for _ in 0..16 {
        let prog = gen_program(&mut rng);
        let m = Machine::new(prog, MachineConfig::default()).expect("machine");
        fused += m.loaded().decoded.fused;
        programs += 1;
    }
    assert!(
        fused >= programs * 4,
        "expected ≥4 fused superinstructions per generated program on average, got {fused}/{programs}"
    );
}
