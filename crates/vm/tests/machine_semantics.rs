//! Integration tests of machine semantics that unit tests inside the
//! crate do not reach: deadline-bounded atomic operations, the heap
//! allocator, frame linkage under deep nesting, and the event timeline.

use tics_energy::{ContinuousPower, RecordedTrace};
use tics_minic::{compile, opt::OptLevel};
use tics_vm::{BareRuntime, Executor, Machine, MachineConfig, RunOutcome};

fn machine(src: &str) -> Machine {
    let prog = compile(src, OptLevel::O2).unwrap();
    Machine::new(prog, MachineConfig::default()).unwrap()
}

#[test]
fn charge_atomic_reports_deadline_crossing() {
    let mut m = machine("int main() { return 0; }");
    m.set_period_deadline(m.cycles() + 100);
    assert!(m.charge_atomic(50), "within budget");
    assert!(!m.charge_atomic(500), "crosses the deadline");
    // The cycles are charged either way — the device spent the energy.
    assert!(m.cycles() >= 550);
}

#[test]
fn true_time_includes_off_periods() {
    let mut m = machine("int main() { return 0; }");
    m.mem.add_cycles(1_000);
    assert_eq!(m.true_now_us(), 1_000);
    m.power_failure(9_000);
    assert_eq!(m.true_now_us(), 10_000);
    m.mem.add_cycles(5);
    assert_eq!(m.true_now_us(), 10_005);
}

#[test]
fn heap_alloc_is_aligned_and_bounded() {
    let prog = compile("int main() { return 0; }", OptLevel::O2).unwrap();
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_bytes: 4 + 24,
            ..MachineConfig::default()
        },
    )
    .unwrap();
    let mut rt = BareRuntime::new();
    let a = m.heap_alloc(&mut rt, 5).unwrap(); // rounds to 8
    let b = m.heap_alloc(&mut rt, 1).unwrap(); // rounds to 4
    let c = m.heap_alloc(&mut rt, 12).unwrap();
    let d = m.heap_alloc(&mut rt, 1).unwrap(); // exhausted
    assert_ne!(a, 0);
    assert_eq!(b, a + 8);
    assert_eq!(c, b + 4);
    assert_eq!(d, 0, "exhaustion returns null");
    assert_eq!(a % 4, 0);
}

#[test]
fn zero_heap_always_returns_null() {
    let prog = compile("int main() { return alloc(4); }", OptLevel::O2).unwrap();
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_bytes: 0,
            ..MachineConfig::default()
        },
    )
    .unwrap();
    let mut rt = BareRuntime::new();
    let out = Executor::new()
        .run(&mut m, &mut rt, &mut ContinuousPower::new())
        .unwrap();
    assert_eq!(out.exit_code(), Some(0));
}

#[test]
fn deep_call_chains_link_and_unwind() {
    // 12 distinct nesting levels, each adding its depth.
    let mut src = String::new();
    src.push_str("int f0(int x) { return x + 1; }\n");
    for i in 1..12 {
        src.push_str(&format!(
            "int f{i}(int x) {{ return f{}(x) + 1; }}\n",
            i - 1
        ));
    }
    src.push_str("int main() { return f11(0); }");
    let mut m = machine(&src);
    let mut rt = BareRuntime::new();
    let out = Executor::new()
        .run(&mut m, &mut rt, &mut ContinuousPower::new())
        .unwrap();
    assert_eq!(out.exit_code(), Some(12));
}

#[test]
fn event_timeline_orders_marks_sends_and_failures() {
    let mut m = machine(
        "nv int phase;
         int main() {
             if (phase == 0) {
                 mark(1);
                 phase = 1;
                 while (1) { }
             }
             send(42);
             return 0;
         }",
    );
    let mut rt = BareRuntime::new();
    let mut supply = RecordedTrace::new([(2_000, 3_000), (1_000_000, 0)]);
    let out = Executor::new().run(&mut m, &mut rt, &mut supply).unwrap();
    assert_eq!(out, RunOutcome::Finished(0));
    let s = m.stats();
    let t_mark = s.marks_timed[0].1;
    let t_fail = s.failure_times[0];
    let (v, t_send) = s.sends_timed[0];
    assert_eq!(v, 42);
    assert!(t_mark < t_fail, "mark precedes the failure");
    assert!(t_fail < t_send, "send happens after reboot");
    assert!(t_send >= 5_000, "send sits past the 3 ms outage");
}

#[test]
fn instruction_budget_bounds_runs() {
    let mut m = machine("int main() { while (1) { } return 0; }");
    let mut rt = BareRuntime::new();
    let out = Executor::new()
        .with_instruction_budget(10_000)
        .run(&mut m, &mut rt, &mut ContinuousPower::new())
        .unwrap();
    assert_eq!(out, RunOutcome::BudgetExhausted);
    assert!(m.stats().instructions <= 10_001);
}

#[test]
fn swap_and_ternary_chains_evaluate_correctly() {
    let mut m = machine(
        "int main() {
             int a = 3;
             int b = 9;
             // force Swap-backed sequences via mixed compound targets
             a += b > 5 ? b : -b;
             b -= a < 20 ? 1 : 2;
             return a * 100 + b;
         }",
    );
    let mut rt = BareRuntime::new();
    let out = Executor::new()
        .run(&mut m, &mut rt, &mut ContinuousPower::new())
        .unwrap();
    assert_eq!(out.exit_code(), Some(12 * 100 + 8));
}
