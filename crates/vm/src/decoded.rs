//! One-time bytecode decoding for the fast-dispatch interpreter.
//!
//! [`DecodedProgram`] is built once per [`LoadedProgram`](crate::LoadedProgram)
//! and shared (via `Arc`) by every machine running that image. It lowers
//! [`Instr`] into a flat dense [`Op`] stream the executor can dispatch
//! without touching the source program, and it runs a JVM-style abstract
//! interpretation over every function to prove the operand-stack depth at
//! each pc. Verified functions execute with the per-push/per-pop frame
//! bound checks elided (each of which costs two `Vec` indexations through
//! `function_at` in the reference interpreter); anything the verifier
//! cannot prove falls back to [`Op::Ref`], which delegates to the
//! reference `step` and is therefore always exact.
//!
//! # Invariants
//!
//! * `ops.len() == plain.len() == code.len()`: a pc is an index into
//!   either stream, so checkpoint restores and jumps need no remapping.
//! * `plain[pc]` never holds a superinstruction. `ops[pc]` may hold one
//!   covering `[pc, pc + len)`; the covered slots `pc+1 ..` still hold
//!   their individual plain ops, so control transfers *into* the middle
//!   of a fused sequence execute unfused and stay exact.
//! * Every op performs *identical simulated memory traffic* (addresses,
//!   order, cycle charges, span attribution, torn-store outcomes) to the
//!   reference interpreter. Decoding only removes host-side overhead:
//!   dispatch, redundant range checks, and stack-bound bookkeeping.
//! * In an unverified function every slot is [`Op::Ref`].

use tics_minic::isa::Instr;
use tics_minic::program::{Program, FRAME_HEADER_BYTES};

/// A binary ALU/compare operation, shared by plain and fused ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Checked divide (traps on zero or overflow).
    Div,
    /// Checked remainder (traps on zero or overflow).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `rhs & 31`.
    Shl,
    /// Arithmetic shift right by `rhs & 31`.
    Shr,
    /// Equality compare (pushes 0/1).
    Eq,
    /// Inequality compare.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl BinOp {
    /// Maps an ISA instruction to its ALU operation, if it is one.
    #[must_use]
    pub fn from_instr(i: Instr) -> Option<BinOp> {
        Some(match i {
            Instr::Add => BinOp::Add,
            Instr::Sub => BinOp::Sub,
            Instr::Mul => BinOp::Mul,
            Instr::Div => BinOp::Div,
            Instr::Mod => BinOp::Mod,
            Instr::BitAnd => BinOp::And,
            Instr::BitOr => BinOp::Or,
            Instr::BitXor => BinOp::Xor,
            Instr::Shl => BinOp::Shl,
            Instr::Shr => BinOp::Shr,
            Instr::Eq => BinOp::Eq,
            Instr::Ne => BinOp::Ne,
            Instr::Lt => BinOp::Lt,
            Instr::Le => BinOp::Le,
            Instr::Gt => BinOp::Gt,
            Instr::Ge => BinOp::Ge,
            _ => return None,
        })
    }
}

/// A unary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Wrapping negate.
    Neg,
    /// Bitwise not.
    BitNot,
    /// Logical not (pushes `1` iff the operand is `0`).
    LogNot,
}

/// A decoded operation. Offsets are pre-resolved: local slots fold in the
/// [`FRAME_HEADER_BYTES`] so execution is a single add to `fp`; global
/// slots stay data-segment-relative (the data base differs per machine
/// layout, the decoded image is shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i32),
    /// Push the local at `fp + offset` (header already folded in).
    LoadLocal(u32),
    /// Pop into the local at `fp + offset`.
    StoreLocal(u32),
    /// Push the address of the local at `fp + offset`.
    AddrLocal(u32),
    /// Push the global at `data_base + offset`.
    LoadGlobal(u32),
    /// Pop into the global at `data_base + offset`.
    StoreGlobal(u32),
    /// Push the address of the global at `data_base + offset`.
    AddrGlobal(u32),
    /// Pop an address, push the word at it.
    LoadInd,
    /// Pop a value, pop an address, store the value.
    StoreInd,
    /// Duplicate the stack top.
    Dup,
    /// Pop and discard.
    Pop,
    /// Swap the top two entries.
    Swap,
    /// Pop rhs, pop lhs, push the result.
    Bin(BinOp),
    /// Pop, transform, push.
    Un(UnOp),
    /// Unconditional jump (absolute pc).
    Jmp(u32),
    /// Pop; jump if zero.
    Jz(u32),
    /// Pop; jump if non-zero.
    Jnz(u32),

    // ---- superinstructions (head slots of the `ops` stream only) ----
    //
    // Each one executes its constituent plain ops back to back — same
    // memory traffic, same cycle charges, same trap points — but with a
    // single dispatch. The selection comes from an n-gram census of the
    // seven fault-corpus programs across all five systems: local/global
    // load-immediate-ALU(-store) chains and compare-and-branch loop
    // headers dominate.
    /// `LoadLocal a; Const k; Bin op` (3 instructions).
    LdLKBin {
        /// Local offset of the lhs (header folded in).
        a: u32,
        /// Immediate rhs.
        k: i32,
        /// ALU operation.
        op: BinOp,
    },
    /// `LoadLocal a; Const k; Bin op; StoreLocal d` (4 instructions) —
    /// the `x = x OP imm` increment idiom.
    LdLKBinSt {
        /// Local offset of the lhs.
        a: u32,
        /// Immediate rhs.
        k: i32,
        /// ALU operation.
        op: BinOp,
        /// Local offset of the destination.
        d: u32,
    },
    /// `LoadLocal a; Const k; Bin op; Jz/Jnz t` (4 instructions) — the
    /// `while (i < N)` loop-header idiom.
    LdLKBinBr {
        /// Local offset of the lhs.
        a: u32,
        /// Immediate rhs.
        k: i32,
        /// Compare (or any ALU) operation feeding the branch.
        op: BinOp,
        /// Branch target (absolute pc).
        t: u32,
        /// `true` for `Jnz`, `false` for `Jz`.
        on_nz: bool,
    },
    /// `LoadGlobal g; Const k; Bin op` (3 instructions).
    LdGKBin {
        /// Global offset of the lhs.
        g: u32,
        /// Immediate rhs.
        k: i32,
        /// ALU operation.
        op: BinOp,
    },
    /// `LoadGlobal g; Const k; Bin op; StoreGlobal d` (4 instructions).
    LdGKBinSt {
        /// Global offset of the lhs.
        g: u32,
        /// Immediate rhs.
        k: i32,
        /// ALU operation.
        op: BinOp,
        /// Global offset of the destination.
        d: u32,
    },
    /// `Const k; Bin op` (2 instructions) — immediate rhs applied to
    /// whatever the preceding code left on the stack.
    KBin {
        /// Immediate rhs.
        k: i32,
        /// ALU operation.
        op: BinOp,
    },
    /// `Const k; StoreLocal d` (2 instructions).
    KStL {
        /// Immediate value.
        k: i32,
        /// Local offset of the destination.
        d: u32,
    },
    /// `Const k; StoreGlobal d` (2 instructions).
    KStG {
        /// Immediate value.
        k: i32,
        /// Global offset of the destination.
        d: u32,
    },

    /// Delegate this pc to the reference interpreter's `step` — used for
    /// calls, returns, syscalls, runtime-mediated instructions (logged
    /// stores, checkpoints, atomics, time annotations), `Halt`, and every
    /// pc of a function the verifier could not prove.
    Ref,
}

/// Sentinel depth for pcs the verifier never reached (dead code) or pcs
/// in unverified functions.
pub const DEPTH_UNKNOWN: i32 = -1;

/// The decoded image: dual op streams plus verification metadata. Built
/// once in [`LoadedProgram::load`](crate::LoadedProgram::load) and shared
/// across machines.
#[derive(Debug)]
pub struct DecodedProgram {
    /// Dispatch stream with superinstructions at fusion head slots.
    pub ops: Vec<Op>,
    /// Dispatch stream with only individual ops — used when an ISR or an
    /// instruction hook must run between every two instructions, and at
    /// mid-fusion entry points.
    pub plain: Vec<Op>,
    /// Proven operand-stack depth (in words) at each pc, or
    /// [`DEPTH_UNKNOWN`]. Only meaningful in verified functions.
    pub depths: Vec<i32>,
    /// Per-function: did depth verification succeed?
    pub verified: Vec<bool>,
    /// Number of superinstruction head slots in `ops` (diagnostics).
    pub fused: usize,
}

impl DecodedProgram {
    /// Decodes a flattened program. `code`, `entries`, and `owner` are the
    /// [`LoadedProgram`](crate::LoadedProgram) fields (jump targets
    /// already rebased to absolute pcs, one `Halt` appended per function).
    #[must_use]
    pub fn decode(program: &Program, code: &[Instr], entries: &[u32], owner: &[u16]) -> Self {
        let mut dp = DecodedProgram {
            ops: vec![Op::Ref; code.len()],
            plain: vec![Op::Ref; code.len()],
            depths: vec![DEPTH_UNKNOWN; code.len()],
            verified: vec![false; program.functions.len()],
            fused: 0,
        };
        for (fi, f) in program.functions.iter().enumerate() {
            let base = entries[fi] as usize;
            // Body plus the appended defensive Halt.
            let len = f.code.len() + 1;
            debug_assert!(base + len <= code.len() && owner[base] as usize == fi);
            if verify_function(program, fi, &code[base..base + len], base, &mut dp.depths) {
                dp.verified[fi] = true;
                lower_function(&code[base..base + len], base, &mut dp);
            }
        }
        dp.ops.clone_from(&dp.plain);
        fuse(code, &mut dp);
        dp
    }

    /// Whether the function owning `pc` was verified (used by the boot
    /// consistency check in the executor).
    #[must_use]
    pub fn pc_verified(&self, owner: &[u16], pc: u32) -> bool {
        owner
            .get(pc as usize)
            .is_some_and(|&fi| self.verified[fi as usize])
    }
}

/// Net operand-stack effect of one instruction: `(min_depth_before,
/// delta)`, or `None` for control transfers handled specially.
fn stack_effect(program: &Program, i: Instr) -> (i32, i32) {
    match i {
        Instr::Const(_)
        | Instr::LoadLocal(_)
        | Instr::AddrLocal(_)
        | Instr::LoadGlobal(_)
        | Instr::AddrGlobal(_)
        | Instr::ExpiresCheck(_) => (0, 1),
        Instr::StoreLocal(_)
        | Instr::StoreGlobal(_)
        | Instr::StoreGlobalLogged(_)
        | Instr::Pop => (1, -1),
        Instr::LoadInd | Instr::Neg | Instr::BitNot | Instr::LogNot | Instr::TimelyCheck => (1, 0),
        Instr::StoreInd | Instr::StoreIndLogged => (2, -2),
        Instr::Dup => (1, 1),
        Instr::Swap => (2, 0),
        Instr::Add
        | Instr::Sub
        | Instr::Mul
        | Instr::Div
        | Instr::Mod
        | Instr::BitAnd
        | Instr::BitOr
        | Instr::BitXor
        | Instr::Shl
        | Instr::Shr
        | Instr::Eq
        | Instr::Ne
        | Instr::Lt
        | Instr::Le
        | Instr::Gt
        | Instr::Ge => (2, -1),
        Instr::Call(fidx) => {
            let n = i32::from(program.functions[fidx as usize].n_args);
            (n, 1 - n)
        }
        Instr::Syscall(s) => {
            let n = s.arg_count() as i32;
            (n, 1 - n)
        }
        Instr::Checkpoint(_)
        | Instr::AtomicBegin
        | Instr::AtomicEnd
        | Instr::TimestampVar(_)
        | Instr::ExpiresBlockEnd
        | Instr::ExpiresBlockBegin(..)
        | Instr::Jmp(_) => (0, 0),
        Instr::Jz(_) | Instr::Jnz(_) => (1, -1),
        // Terminal; no successor (Ret still needs its return value).
        Instr::Ret => (1, 0),
        Instr::Halt => (0, 0),
    }
}

/// Abstract interpretation of one function's operand-stack depth: a
/// worklist fixpoint proving an exact depth per reachable pc. Returns
/// `false` (leaving the function unverified → all [`Op::Ref`]) on any
/// join mismatch, underflow, or overflow past `max_ostack`; on success
/// the global `depths` entries for this function are filled in.
///
/// Soundness note: the reference interpreter's per-push overflow check is
/// `depth + 1 <= max_ostack` against the owning frame and its per-pop
/// underflow check is `depth >= 1` — exactly the constraints enforced
/// here, so eliding them on a verified path can never change behavior.
fn verify_function(
    program: &Program,
    fi: usize,
    code: &[Instr],
    base: usize,
    depths: &mut [i32],
) -> bool {
    let f = &program.functions[fi];
    let max = i32::from(f.max_ostack);
    let n = code.len();
    let mut local: Vec<i32> = vec![DEPTH_UNKNOWN; n];
    let mut work: Vec<usize> = vec![0];
    local[0] = 0;
    let join = |local: &mut Vec<i32>, work: &mut Vec<usize>, t: usize, d: i32| -> bool {
        if t >= n {
            return false;
        }
        if local[t] == DEPTH_UNKNOWN {
            local[t] = d;
            work.push(t);
            true
        } else {
            local[t] == d
        }
    };
    while let Some(pc) = work.pop() {
        let d = local[pc];
        let i = code[pc];
        let (need, delta) = stack_effect(program, i);
        if d < need {
            return false;
        }
        let d2 = d + delta;
        // Intermediate depths never exceed max(d, d2): every op pops its
        // operands before pushing results (Swap/Dup pop first too), so
        // checking the endpoints covers the whole op.
        if d2 > max {
            return false;
        }
        let ok = match i {
            Instr::Halt | Instr::Ret => true,
            Instr::Jmp(t) => join(&mut local, &mut work, t as usize - base, d2),
            Instr::Jz(t) | Instr::Jnz(t) => {
                join(&mut local, &mut work, t as usize - base, d2)
                    && join(&mut local, &mut work, pc + 1, d2)
            }
            // The catch target is entered with the operand stack reset to
            // empty (`sp = operand_base` on rollback).
            Instr::ExpiresBlockBegin(_, t) => {
                join(&mut local, &mut work, t as usize - base, 0)
                    && join(&mut local, &mut work, pc + 1, d2)
            }
            _ => join(&mut local, &mut work, pc + 1, d2),
        };
        if !ok {
            return false;
        }
    }
    depths[base..base + n].copy_from_slice(&local);
    true
}

/// Lowers one verified function's instructions into `plain` ops.
/// Unreachable pcs and instructions outside the fast set stay
/// [`Op::Ref`].
fn lower_function(code: &[Instr], base: usize, dp: &mut DecodedProgram) {
    for (off, &i) in code.iter().enumerate() {
        let pc = base + off;
        if dp.depths[pc] == DEPTH_UNKNOWN {
            continue;
        }
        dp.plain[pc] = lower(i);
    }
}

/// The plain decoding of one instruction.
fn lower(i: Instr) -> Op {
    if let Some(b) = BinOp::from_instr(i) {
        return Op::Bin(b);
    }
    match i {
        Instr::Const(v) => Op::Const(v),
        Instr::LoadLocal(o) => Op::LoadLocal(FRAME_HEADER_BYTES + u32::from(o)),
        Instr::StoreLocal(o) => Op::StoreLocal(FRAME_HEADER_BYTES + u32::from(o)),
        Instr::AddrLocal(o) => Op::AddrLocal(FRAME_HEADER_BYTES + u32::from(o)),
        Instr::LoadGlobal(o) => Op::LoadGlobal(o),
        Instr::StoreGlobal(o) => Op::StoreGlobal(o),
        Instr::AddrGlobal(o) => Op::AddrGlobal(o),
        Instr::LoadInd => Op::LoadInd,
        Instr::StoreInd => Op::StoreInd,
        Instr::Dup => Op::Dup,
        Instr::Pop => Op::Pop,
        Instr::Swap => Op::Swap,
        Instr::Neg => Op::Un(UnOp::Neg),
        Instr::BitNot => Op::Un(UnOp::BitNot),
        Instr::LogNot => Op::Un(UnOp::LogNot),
        Instr::Jmp(t) => Op::Jmp(t),
        Instr::Jz(t) => Op::Jz(t),
        Instr::Jnz(t) => Op::Jnz(t),
        // Runtime-mediated or frame-changing instructions: the reference
        // interpreter is the implementation.
        _ => Op::Ref,
    }
}

/// Superinstruction selection: greedy longest-match over the original
/// instruction stream, head slots rewritten in `ops`. A fused window
/// never contains control-flow except as its final element, never spans
/// a `Ref` slot, and only covers reachable verified pcs — but it does
/// *not* need to avoid jump targets, because the covered slots keep their
/// plain ops and a mid-window entry simply executes unfused.
fn fuse(code: &[Instr], dp: &mut DecodedProgram) {
    let n = code.len();
    let mut pc = 0;
    while pc < n {
        if dp.depths[pc] == DEPTH_UNKNOWN || matches!(dp.plain[pc], Op::Ref) {
            pc += 1;
            continue;
        }
        let win = &code[pc..n.min(pc + 4)];
        let (op, len) = match *win {
            [Instr::LoadLocal(a), Instr::Const(k), b, Instr::StoreLocal(d), ..]
                if BinOp::from_instr(b).is_some() =>
            {
                (
                    Op::LdLKBinSt {
                        a: FRAME_HEADER_BYTES + u32::from(a),
                        k,
                        op: BinOp::from_instr(b).unwrap(),
                        d: FRAME_HEADER_BYTES + u32::from(d),
                    },
                    4,
                )
            }
            [Instr::LoadLocal(a), Instr::Const(k), b, Instr::Jz(t), ..]
                if BinOp::from_instr(b).is_some() =>
            {
                (
                    Op::LdLKBinBr {
                        a: FRAME_HEADER_BYTES + u32::from(a),
                        k,
                        op: BinOp::from_instr(b).unwrap(),
                        t,
                        on_nz: false,
                    },
                    4,
                )
            }
            [Instr::LoadLocal(a), Instr::Const(k), b, Instr::Jnz(t), ..]
                if BinOp::from_instr(b).is_some() =>
            {
                (
                    Op::LdLKBinBr {
                        a: FRAME_HEADER_BYTES + u32::from(a),
                        k,
                        op: BinOp::from_instr(b).unwrap(),
                        t,
                        on_nz: true,
                    },
                    4,
                )
            }
            [Instr::LoadGlobal(g), Instr::Const(k), b, Instr::StoreGlobal(d), ..]
                if BinOp::from_instr(b).is_some() =>
            {
                (
                    Op::LdGKBinSt {
                        g,
                        k,
                        op: BinOp::from_instr(b).unwrap(),
                        d,
                    },
                    4,
                )
            }
            [Instr::LoadLocal(a), Instr::Const(k), b, ..] if BinOp::from_instr(b).is_some() => (
                Op::LdLKBin {
                    a: FRAME_HEADER_BYTES + u32::from(a),
                    k,
                    op: BinOp::from_instr(b).unwrap(),
                },
                3,
            ),
            [Instr::LoadGlobal(g), Instr::Const(k), b, ..] if BinOp::from_instr(b).is_some() => (
                Op::LdGKBin {
                    g,
                    k,
                    op: BinOp::from_instr(b).unwrap(),
                },
                3,
            ),
            [Instr::Const(k), b, ..] if BinOp::from_instr(b).is_some() => (
                Op::KBin {
                    k,
                    op: BinOp::from_instr(b).unwrap(),
                },
                2,
            ),
            [Instr::Const(k), Instr::StoreLocal(d), ..] => (
                Op::KStL {
                    k,
                    d: FRAME_HEADER_BYTES + u32::from(d),
                },
                2,
            ),
            [Instr::Const(k), Instr::StoreGlobal(d), ..] => (Op::KStG { k, d }, 2),
            _ => {
                pc += 1;
                continue;
            }
        };
        // Every covered pc must be a reachable fast slot of the same
        // function; the window length guarantee plus the appended Halt
        // (which never matches a pattern element) keeps windows inside
        // one function, but dead tails guard anyway.
        if (pc..pc + len).all(|p| dp.depths[p] != DEPTH_UNKNOWN && !matches!(dp.plain[p], Op::Ref))
        {
            dp.ops[pc] = op;
            dp.fused += 1;
            pc += len;
        } else {
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loaded::LoadedProgram;
    use tics_minic::{compile, opt::OptLevel};

    fn decode_src(src: &str) -> (LoadedProgram, DecodedProgram) {
        let prog = compile(src, OptLevel::O2).unwrap();
        let loaded = LoadedProgram::load(prog).unwrap();
        let dp = DecodedProgram::decode(
            &loaded.program,
            &loaded.code,
            &loaded.entries,
            &loaded.owner,
        );
        (loaded, dp)
    }

    #[test]
    fn compiled_functions_verify() {
        let (loaded, dp) = decode_src(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int g;
             int main() { int s = 0; for (int i = 0; i < 10; i++) { s += fib(i); } g = s; return s; }",
        );
        assert!(dp.verified.iter().all(|&v| v), "compiler output verifies");
        assert_eq!(dp.ops.len(), loaded.code.len());
        assert_eq!(dp.plain.len(), loaded.code.len());
        // Entry of every function is reachable at depth 0.
        for &e in &loaded.entries {
            assert_eq!(dp.depths[e as usize], 0);
        }
    }

    #[test]
    fn loops_get_fused() {
        let (_, dp) = decode_src(
            "int main() { int s = 0; for (int i = 0; i < 100; i++) { s = s + 3; } return s; }",
        );
        assert!(dp.fused > 0, "loop body should produce superinstructions");
        // Covered slots keep their plain ops: no superinstruction ever
        // appears in the plain stream.
        assert!(dp.plain.iter().all(|op| !matches!(
            op,
            Op::LdLKBin { .. }
                | Op::LdLKBinSt { .. }
                | Op::LdLKBinBr { .. }
                | Op::LdGKBin { .. }
                | Op::LdGKBinSt { .. }
                | Op::KBin { .. }
                | Op::KStL { .. }
                | Op::KStG { .. }
        )));
    }

    #[test]
    fn undersized_ostack_leaves_function_unverified() {
        let prog = compile("int main() { return 1 + 2 + 3; }", OptLevel::O0).unwrap();
        let mut bad = prog.clone();
        bad.functions[0].max_ostack = 0;
        let loaded = LoadedProgram::load(bad).unwrap();
        let dp = DecodedProgram::decode(
            &loaded.program,
            &loaded.code,
            &loaded.entries,
            &loaded.owner,
        );
        assert!(!dp.verified[0]);
        assert!(dp.ops.iter().all(|op| matches!(op, Op::Ref)));
    }

    #[test]
    fn runtime_mediated_instrs_stay_ref() {
        let (loaded, dp) = decode_src(
            "int main() { int x = sample(); send(x); checkpoint(); return 0; }",
        );
        for (pc, i) in loaded.code.iter().enumerate() {
            if matches!(
                i,
                Instr::Syscall(_) | Instr::Checkpoint(_) | Instr::Call(_) | Instr::Ret | Instr::Halt
            ) {
                assert!(matches!(dp.plain[pc], Op::Ref), "pc {pc}: {i:?}");
            }
        }
    }

    #[test]
    fn header_offset_is_folded_into_locals() {
        let (loaded, dp) = decode_src("int main() { int x = 7; return x; }");
        let found = loaded.code.iter().enumerate().any(|(pc, i)| {
            matches!(i, Instr::LoadLocal(o)
                if dp.plain[pc] == Op::LoadLocal(FRAME_HEADER_BYTES + u32::from(*o)))
        });
        // O2 may fuse or transform, but the plain stream must still hold
        // the folded op wherever a LoadLocal survives.
        for (pc, i) in loaded.code.iter().enumerate() {
            if let Instr::LoadLocal(o) = i {
                assert_eq!(dp.plain[pc], Op::LoadLocal(FRAME_HEADER_BYTES + u32::from(*o)));
            }
        }
        let _ = found;
    }
}
