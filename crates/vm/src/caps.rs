//! Runtime capability matrix (the paper's Table 5).

use std::fmt;

/// How much manual work porting legacy code to a runtime requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortingEffort {
    /// Recompile and go (TICS, Chinchilla).
    None,
    /// Rewrite into a task graph / custom model (Alpaca, InK, MayFly).
    High,
}

impl fmt::Display for PortingEffort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortingEffort::None => write!(f, "None"),
            PortingEffort::High => write!(f, "High"),
        }
    }
}

/// The feature matrix a runtime reports — one row of the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuntimeCapabilities {
    /// Supports arbitrary pointer manipulation.
    pub pointer_support: bool,
    /// Supports recursive functions.
    pub recursion_support: bool,
    /// Checkpoint cost stays bounded as programs grow ("Scalability").
    pub scalable: bool,
    /// Provides time-aware semantics (data expiration, timely branches).
    pub timely_execution: bool,
    /// Claims crash consistency of memory: the externally visible event
    /// trace under arbitrary power failures stays idempotent-prefix
    /// equivalent to a continuously powered run. Plain C (no runtime) is
    /// the one row that does not claim this — the fault-injection oracle
    /// holds every claiming runtime to it.
    pub memory_consistency: bool,
    /// Manual effort to port legacy code.
    pub porting_effort: PortingEffort,
}

impl RuntimeCapabilities {
    /// The TICS row of Table 5: everything, with no porting effort.
    #[must_use]
    pub fn tics() -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: true,
            recursion_support: true,
            scalable: true,
            timely_execution: true,
            memory_consistency: true,
            porting_effort: PortingEffort::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tics_row_matches_table5() {
        let c = RuntimeCapabilities::tics();
        assert!(c.pointer_support && c.recursion_support && c.scalable && c.timely_execution);
        assert!(c.memory_consistency);
        assert_eq!(c.porting_effort, PortingEffort::None);
        assert_eq!(c.porting_effort.to_string(), "None");
    }
}
