//! The instruction interpreter and the intermittent executor.

use tics_energy::PowerSupply;
use tics_mcu::Addr;
use tics_minic::isa::{Instr, Syscall};
use tics_trace::TraceEvent;

use crate::error::VmError;
use crate::machine::Machine;
use crate::runtime::{CheckpointKind, IntermittentRuntime, ResumeAction};
use crate::Result;

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `main` returned with this exit code.
    Finished(i32),
    /// The power supply produced no more periods (experiment window
    /// ended).
    OutOfEnergy,
    /// The executor's total time or instruction budget ran out (used to
    /// bound infinite sense-loops).
    BudgetExhausted,
    /// The system made no forward progress for the configured number of
    /// consecutive boots — the paper's *system starvation*.
    Starved {
        /// Boots observed without a new checkpoint or completion.
        boots: u64,
    },
}

impl RunOutcome {
    /// The exit code, if the program finished.
    #[must_use]
    pub fn exit_code(self) -> Option<i32> {
        match self {
            RunOutcome::Finished(c) => Some(c),
            _ => None,
        }
    }
}

/// Drives a [`Machine`] + [`IntermittentRuntime`] pair through a
/// [`PowerSupply`], injecting power failures at on-period boundaries.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Stop after this much total on-time (µs). Bounds infinite loops.
    pub max_total_us: u64,
    /// Stop after this many instructions.
    pub max_instructions: u64,
    /// Declare starvation after this many consecutive boots with no new
    /// checkpoint and no program completion. `u64::MAX` disables.
    pub starvation_boots: u64,
    /// Forward-progress guard: after this many consecutive boots with no
    /// new checkpoint, no new externally visible event, and no
    /// completion, `run` returns [`VmError::NoForwardProgress`] instead
    /// of spinning forever on an infinite supply. Unlike
    /// [`Executor::starvation_boots`] (a measured outcome for runtimes
    /// that checkpoint), this is a harness-level diagnosis: it fires only
    /// when *nothing at all* is happening. `u64::MAX` disables.
    pub progress_guard_boots: u64,
    /// Hardware-assisted checkpointing (§4's policy ii): when set, a
    /// low-voltage comparator interrupt fires this many µs before the
    /// supply dies, giving the runtime one [`CheckpointKind::Voltage`]
    /// opportunity per on-period. `None` models a board without the
    /// comparator.
    pub voltage_warning_us: Option<u64>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            max_total_us: u64::MAX / 4,
            max_instructions: u64::MAX,
            starvation_boots: u64::MAX,
            progress_guard_boots: u64::MAX,
            voltage_warning_us: None,
        }
    }
}

impl Executor {
    /// An executor with effectively unlimited budgets.
    #[must_use]
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Caps the total on-time (µs of cycles).
    #[must_use]
    pub fn with_time_budget(mut self, us: u64) -> Executor {
        self.max_total_us = us;
        self
    }

    /// Caps the instruction count.
    #[must_use]
    pub fn with_instruction_budget(mut self, n: u64) -> Executor {
        self.max_instructions = n;
        self
    }

    /// Enables starvation detection after `boots` unproductive boots.
    #[must_use]
    pub fn with_starvation_detection(mut self, boots: u64) -> Executor {
        self.starvation_boots = boots;
        self
    }

    /// Enables the forward-progress guard after `boots` consecutive
    /// boots with no checkpoint, no visible event, and no completion.
    #[must_use]
    pub fn with_progress_guard(mut self, boots: u64) -> Executor {
        self.progress_guard_boots = boots;
        self
    }

    /// Enables the low-voltage comparator interrupt `margin_us` before
    /// each power failure.
    #[must_use]
    pub fn with_voltage_warning(mut self, margin_us: u64) -> Executor {
        self.voltage_warning_us = Some(margin_us);
        self
    }

    /// Runs to completion, budget exhaustion, supply exhaustion, or
    /// starvation.
    ///
    /// # Errors
    ///
    /// Propagates traps, stack overflows, and memory errors.
    pub fn run(
        &self,
        m: &mut Machine,
        rt: &mut dyn IntermittentRuntime,
        supply: &mut dyn PowerSupply,
    ) -> Result<RunOutcome> {
        rt.check_program(&m.loaded().program)?;
        let mut unproductive_boots = 0u64;
        let mut stalled_boots = 0u64;
        loop {
            let Some(period) = supply.next_period() else {
                return Ok(RunOutcome::OutOfEnergy);
            };
            m.emit(TraceEvent::Boot);
            let ckpts_at_boot = m.stats().checkpoints;
            // Progress is counted on the trace's incremental fold — the
            // same `is_externally_visible` predicate the fault oracle
            // replays, so the two can never disagree.
            let events_at_boot = m.trace().visible_events();
            // Boot-time recovery draws from the same energy budget as the
            // rest of the period; a restore that exceeds it dies mid-way
            // (the paper's starvation-by-recovery-cost).
            let period_start = m.cycles();
            let deadline = period_start.saturating_add(period.on_us);
            m.set_period_deadline(deadline);
            match rt.on_boot(m)? {
                ResumeAction::Restart { reinit_globals } => {
                    if reinit_globals {
                        m.init_globals(false)?;
                    }
                    m.start_main(rt)?;
                }
                ResumeAction::Restored => {}
            }
            let mut voltage_fired = false;
            let warn_at = self
                .voltage_warning_us
                .map(|margin| deadline.saturating_sub(margin));
            loop {
                if m.is_halted() {
                    let code = m.exit_code().ok_or_else(|| {
                        VmError::Trap(format!(
                            "machine halted without an exit code under {} at cycle {}",
                            rt.name(),
                            m.cycles()
                        ))
                    })?;
                    return Ok(RunOutcome::Finished(code));
                }
                if m.cycles() >= deadline {
                    break;
                }
                if m.cycles() >= self.max_total_us
                    || m.stats().instructions >= self.max_instructions
                {
                    return Ok(RunOutcome::BudgetExhausted);
                }
                if let Some(warn_at) = warn_at {
                    if !voltage_fired && m.cycles() >= warn_at {
                        voltage_fired = true;
                        rt.checkpoint(m, CheckpointKind::Voltage)?;
                    }
                }
                step(m, rt)?;
            }
            // Power failure at the end of the on-period.
            m.power_failure(period.off_us);
            rt.on_power_failure(m);
            if m.stats().checkpoints == ckpts_at_boot {
                unproductive_boots += 1;
                if unproductive_boots >= self.starvation_boots {
                    return Ok(RunOutcome::Starved {
                        boots: unproductive_boots,
                    });
                }
            } else {
                unproductive_boots = 0;
            }
            // The progress guard is stricter about what counts as stalled:
            // a reboot that produced *any* visible event is still moving,
            // even without a checkpoint (plain C re-executing from main).
            if m.stats().checkpoints == ckpts_at_boot
                && m.trace().visible_events() == events_at_boot
            {
                stalled_boots += 1;
                if stalled_boots >= self.progress_guard_boots {
                    return Err(VmError::NoForwardProgress {
                        boots: stalled_boots,
                        runtime: rt.name().to_string(),
                    });
                }
            } else {
                stalled_boots = 0;
            }
        }
    }
}

/// Executes one instruction.
///
/// # Errors
///
/// Propagates traps (divide by zero, stack under/overflow), stack
/// overflows from frame allocation, and memory errors.
pub fn step(m: &mut Machine, rt: &mut dyn IntermittentRuntime) -> Result<()> {
    m.maybe_fire_isr(rt)?;
    let pc = m.regs.pc;
    let instr = *m
        .loaded()
        .code
        .get(pc as usize)
        .ok_or_else(|| VmError::Trap(format!("pc {pc} out of range")))?;
    m.regs.pc = pc + 1;
    m.stats_mut().instructions += 1;
    let base = m.mem.costs().instr_base;
    m.mem.add_cycles(base);

    match instr {
        Instr::Const(v) => m.push(v)?,
        Instr::LoadLocal(off) => {
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreLocal(off) => {
            let v = m.pop()?;
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            m.mem.write_i32(a, v)?;
        }
        Instr::AddrLocal(off) => {
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            m.push(a.raw() as i32)?;
        }
        Instr::LoadGlobal(off) => {
            let a = m.global_addr(off);
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreGlobal(off) => {
            let v = m.pop()?;
            let a = m.global_addr(off);
            m.mem.write_i32(a, v)?;
        }
        Instr::StoreGlobalLogged(off) => {
            // The runtime may take a *forced* checkpoint inside
            // `logged_store` (undo log full). Point pc back at this
            // instruction while it runs so a restore re-executes the
            // whole store; the operand stack is still intact here.
            let next = m.regs.pc;
            m.regs.pc = pc;
            let a = m.global_addr(off);
            rt.logged_store(m, a, 4)?;
            m.regs.pc = next;
            let v = m.pop()?;
            m.mem.write_i32(a, v)?;
        }
        Instr::AddrGlobal(off) => {
            let a = m.global_addr(off);
            m.push(a.raw() as i32)?;
        }
        Instr::LoadInd => {
            let a = Addr(m.pop()? as u32);
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreInd => {
            let v = m.pop()?;
            let a = Addr(m.pop()? as u32);
            m.mem.write_i32(a, v)?;
        }
        Instr::StoreIndLogged => {
            // See StoreGlobalLogged: keep the operand stack intact and pc
            // on this instruction while the runtime may checkpoint.
            let next = m.regs.pc;
            m.regs.pc = pc;
            let a = Addr(m.mem.peek_i32(Addr(m.regs.sp.raw() - 8))? as u32);
            rt.logged_store(m, a, 4)?;
            m.regs.pc = next;
            let v = m.pop()?;
            let a2 = Addr(m.pop()? as u32);
            debug_assert_eq!(a, a2);
            m.mem.write_i32(a2, v)?;
        }
        Instr::Dup => {
            let v = m.peek_top()?;
            m.push(v)?;
        }
        Instr::Pop => {
            m.pop()?;
        }
        Instr::Swap => {
            let a = m.pop()?;
            let b = m.pop()?;
            m.push(a)?;
            m.push(b)?;
        }
        Instr::Add => binary(m, |a, b| Ok(a.wrapping_add(b)))?,
        Instr::Sub => binary(m, |a, b| Ok(a.wrapping_sub(b)))?,
        Instr::Mul => binary(m, |a, b| Ok(a.wrapping_mul(b)))?,
        Instr::Div => binary(m, |a, b| {
            a.checked_div(b)
                .ok_or_else(|| VmError::Trap("division by zero or overflow".into()))
        })?,
        Instr::Mod => binary(m, |a, b| {
            a.checked_rem(b)
                .ok_or_else(|| VmError::Trap("remainder by zero or overflow".into()))
        })?,
        Instr::Neg => unary(m, |a| a.wrapping_neg())?,
        Instr::BitAnd => binary(m, |a, b| Ok(a & b))?,
        Instr::BitOr => binary(m, |a, b| Ok(a | b))?,
        Instr::BitXor => binary(m, |a, b| Ok(a ^ b))?,
        Instr::Shl => binary(m, |a, b| Ok(a.wrapping_shl(b as u32 & 31)))?,
        Instr::Shr => binary(m, |a, b| Ok(a.wrapping_shr(b as u32 & 31)))?,
        Instr::BitNot => unary(m, |a| !a)?,
        Instr::Eq => binary(m, |a, b| Ok(i32::from(a == b)))?,
        Instr::Ne => binary(m, |a, b| Ok(i32::from(a != b)))?,
        Instr::Lt => binary(m, |a, b| Ok(i32::from(a < b)))?,
        Instr::Le => binary(m, |a, b| Ok(i32::from(a <= b)))?,
        Instr::Gt => binary(m, |a, b| Ok(i32::from(a > b)))?,
        Instr::Ge => binary(m, |a, b| Ok(i32::from(a >= b)))?,
        Instr::LogNot => unary(m, |a| i32::from(a == 0))?,
        Instr::Jmp(t) => m.regs.pc = t,
        Instr::Jz(t) => {
            if m.pop()? == 0 {
                m.regs.pc = t;
            }
        }
        Instr::Jnz(t) => {
            if m.pop()? != 0 {
                m.regs.pc = t;
            }
        }
        Instr::Call(fidx) => {
            let ret = m.regs.pc;
            m.call_function(rt, fidx, ret)?;
        }
        Instr::Ret => m.do_return(rt)?,
        Instr::Halt => {
            let f = m.loaded().function_at(pc).name.clone();
            return Err(VmError::Trap(format!("fell off the end of `{f}`")));
        }
        Instr::Syscall(Syscall::Alloc) => {
            // Like the logged stores: the bump-pointer log may force a
            // checkpoint, so keep pc on this instruction and the argument
            // on the operand stack until the allocation is durable.
            m.mem.add_cycles(m.mem.costs().syscall_base);
            let next = m.regs.pc;
            m.regs.pc = pc;
            let bytes = m.peek_top()? as u32;
            let addr = m.heap_alloc(rt, bytes)?;
            m.regs.pc = next;
            m.pop()?;
            m.push(addr as i32)?;
        }
        Instr::Syscall(sys) => do_syscall(m, rt, sys)?,
        Instr::Checkpoint(site) => rt.checkpoint(m, CheckpointKind::Site(site))?,
        Instr::AtomicBegin => rt.atomic_begin(m)?,
        Instr::AtomicEnd => rt.atomic_end(m)?,
        Instr::TimestampVar(v) => rt.timestamp_var(m, v)?,
        Instr::ExpiresCheck(v) => {
            let fresh = rt.expires_check(m, v)?;
            if !fresh {
                m.emit(TraceEvent::ExpireDiscard);
            }
            m.push(i32::from(fresh))?;
        }
        Instr::TimelyCheck => {
            let deadline_ms = m.pop()?;
            let ok = rt.timely_check(m, deadline_ms)?;
            if !ok {
                m.emit(TraceEvent::TimelyMiss);
            }
            m.push(i32::from(ok))?;
        }
        Instr::ExpiresBlockBegin(v, catch_pc) => rt.expires_block_begin(m, v, catch_pc)?,
        Instr::ExpiresBlockEnd => rt.expires_block_end(m)?,
    }

    rt.on_instruction(m)?;
    Ok(())
}

fn binary(m: &mut Machine, f: impl FnOnce(i32, i32) -> Result<i32>) -> Result<()> {
    let b = m.pop()?;
    let a = m.pop()?;
    let r = f(a, b)?;
    m.push(r)
}

fn unary(m: &mut Machine, f: impl FnOnce(i32) -> i32) -> Result<()> {
    let a = m.pop()?;
    m.push(f(a))
}

fn do_syscall(m: &mut Machine, rt: &mut dyn IntermittentRuntime, sys: Syscall) -> Result<()> {
    let cost = m.mem.costs().syscall_base;
    m.mem.add_cycles(cost);
    match sys {
        Syscall::Sample | Syscall::SampleAccel | Syscall::SampleMoisture | Syscall::SampleTemp => {
            let v = m.next_sensor();
            m.push(v)?;
        }
        Syscall::Send => {
            let v = m.pop()?;
            // A virtualizing runtime buffers the transmission until its
            // state commits; otherwise the radio fires immediately.
            if !rt.io_send(m, v)? {
                m.record_send(v);
            }
            m.push(0)?;
        }
        Syscall::TimeMs => {
            let t = (m.now().as_micros() / 1_000) as i32;
            m.push(t)?;
        }
        Syscall::TimeUs => {
            let t = (m.now().as_micros() & 0x7FFF_FFFF) as i32;
            m.push(t)?;
        }
        Syscall::Led => {
            let v = m.pop()?;
            m.emit(TraceEvent::Led { value: v });
            m.push(0)?;
        }
        Syscall::Rand => {
            let v = m.rand16();
            m.push(v)?;
        }
        Syscall::Mark => {
            let id = m.pop()?;
            m.emit(TraceEvent::Mark { id });
            m.push(0)?;
        }
        Syscall::Print => {
            let v = m.pop()?;
            m.emit(TraceEvent::Print { value: v });
            m.push(0)?;
        }
        Syscall::CheckpointNow => {
            // Push the result *before* committing: the checkpoint must
            // capture the post-syscall operand stack, since a restore
            // resumes at the next instruction.
            m.push(0)?;
            rt.checkpoint(m, CheckpointKind::Site(tics_minic::isa::CkptSite::Manual))?;
        }
        Syscall::Alloc => unreachable!("Alloc is handled in step() for checkpoint safety"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::runtime::BareRuntime;
    use tics_energy::{ContinuousPower, PeriodicTrace, RecordedTrace};
    use tics_minic::{compile, opt::OptLevel};

    fn run_src(src: &str) -> (RunOutcome, Machine) {
        run_src_opt(src, OptLevel::O0)
    }

    fn run_src_opt(src: &str, lvl: OptLevel) -> (RunOutcome, Machine) {
        let prog = compile(src, lvl).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        (out, m)
    }

    #[test]
    fn arithmetic_program() {
        let (out, _) = run_src("int main() { return (3 + 4) * 5 - 36 / 6 % 4; }");
        assert_eq!(out.exit_code(), Some(35 - 2));
    }

    #[test]
    fn bitwise_program() {
        let (out, _) = run_src("int main() { return ((0xF0 & 0x3C) | 0x01) ^ (1 << 3); }");
        assert_eq!(out.exit_code(), Some(((0xF0 & 0x3C) | 0x01) ^ 8));
    }

    #[test]
    fn locals_and_loops() {
        let (out, _) = run_src(
            "int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }",
        );
        assert_eq!(out.exit_code(), Some(55));
    }

    #[test]
    fn while_break_continue() {
        let (out, _) = run_src(
            "int main() {
                int i = 0; int s = 0;
                while (1) {
                    i++;
                    if (i > 10) break;
                    if (i % 2) continue;
                    s += i;
                }
                return s;
            }",
        );
        assert_eq!(out.exit_code(), Some(2 + 4 + 6 + 8 + 10));
    }

    #[test]
    fn functions_and_arguments() {
        let (out, _) = run_src(
            "int add3(int a, int b, int c) { return a + b + c; }
             int main() { return add3(10, 20, 12); }",
        );
        assert_eq!(out.exit_code(), Some(42));
    }

    #[test]
    fn recursion_fibonacci() {
        let (out, _) = run_src(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(12); }",
        );
        assert_eq!(out.exit_code(), Some(144));
    }

    #[test]
    fn pointers_into_globals_and_locals() {
        let (out, _) = run_src(
            "int g[4];
             int main() {
                 int x = 5;
                 int *p = &x;
                 *p = 7;
                 int *q = g;
                 q[2] = x;
                 return g[2] + x;
             }",
        );
        assert_eq!(out.exit_code(), Some(14));
    }

    #[test]
    fn pointer_arithmetic_walks_arrays() {
        let (out, _) = run_src(
            "int a[5];
             int main() {
                 for (int i = 0; i < 5; i++) { a[i] = i * i; }
                 int *p = a;
                 int s = 0;
                 for (int i = 0; i < 5; i++) { s += *(p + i); }
                 return s;
             }",
        );
        assert_eq!(out.exit_code(), Some(1 + 4 + 9 + 16));
    }

    #[test]
    fn double_pointers() {
        let (out, _) = run_src(
            "int main() {
                 int x = 1;
                 int *p = &x;
                 int **pp = &p;
                 **pp = 9;
                 return x;
             }",
        );
        assert_eq!(out.exit_code(), Some(9));
    }

    #[test]
    fn ternary_and_logic() {
        let (out, _) =
            run_src("int main() { int a = 3; return (a > 2 && a < 5) ? (a == 3 || 0) : 99; }");
        assert_eq!(out.exit_code(), Some(1));
    }

    #[test]
    fn post_increment_semantics() {
        let (out, _) = run_src(
            "int a[3]; int i;
             int main() {
                 a[i++] = 10;
                 a[i++] = 20;
                 int old = i++;
                 return a[0] + a[1] + old * 100 + i;
             }",
        );
        assert_eq!(out.exit_code(), Some(10 + 20 + 200 + 3));
    }

    #[test]
    fn division_by_zero_traps() {
        let prog = compile("int z; int main() { return 5 / z; }", OptLevel::O0).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(matches!(err, VmError::Trap(_)));
    }

    #[test]
    fn syscalls_record_stats() {
        let (out, m) = run_src(
            "int main() { send(7); send(8); mark(1); mark(1); print(99); led(1); return 0; }",
        );
        assert_eq!(out.exit_code(), Some(0));
        assert_eq!(m.stats().sends(), vec![7, 8]);
        assert_eq!(m.stats().mark_count(1), 2);
        assert_eq!(m.stats().prints, vec![99]);
        assert_eq!(m.stats().led_events, 1);
    }

    #[test]
    fn optimization_preserves_semantics() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                   int a[6];
                   int main() {
                       for (int i = 0; i < 6; i++) { a[i] = fib(i); }
                       int s = 0;
                       int *p = a;
                       for (int i = 0; i < 6; i++) { s = s * 2 + *p; p++; }
                       return s;
                   }";
        let (o0, _) = run_src_opt(src, OptLevel::O0);
        let (o1, _) = run_src_opt(src, OptLevel::O1);
        let (o2, _) = run_src_opt(src, OptLevel::O2);
        assert_eq!(o0.exit_code(), o2.exit_code());
        assert_eq!(o1.exit_code(), o2.exit_code());
    }

    #[test]
    fn o2_executes_fewer_instructions() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 100; i++) { s += 2 * 3; } return s; }";
        let (_, m0) = run_src_opt(src, OptLevel::O0);
        let (_, m2) = run_src_opt(src, OptLevel::O2);
        assert!(m2.stats().instructions < m0.stats().instructions);
    }

    #[test]
    fn plain_c_restarts_and_nv_accumulates() {
        // The Table 1 failure mode: `nv` counters accumulate across
        // reboots, the final send never happens, state is inconsistent.
        let prog = compile(
            "nv int sensed;
             int main() {
                 while (1) {
                     sample();
                     sensed++;
                     mark(1);
                 }
                 return 0;
             }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        // 4 short on-periods, then the window ends.
        let mut supply = RecordedTrace::new([(3_000, 100); 4]);
        let out = Executor::new().run(&mut m, &mut rt, &mut supply).unwrap();
        assert_eq!(out, RunOutcome::OutOfEnergy);
        assert_eq!(m.stats().boots, 4);
        let sensed_addr = m.global_addr(0);
        let sensed = m.mem.peek_i32(sensed_addr).unwrap();
        assert!(sensed > 0, "nv counter must survive reboots");
        assert_eq!(u64::from(sensed as u32), m.stats().mark_count(1));
    }

    #[test]
    fn budget_exhaustion_stops_infinite_loops() {
        let (out, _) = {
            let prog = compile("int main() { while (1) {} return 0; }", OptLevel::O0).unwrap();
            let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
            let mut rt = BareRuntime::new();
            let out = Executor::new()
                .with_time_budget(50_000)
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            (out, m)
        };
        assert_eq!(out, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn short_periods_never_let_plain_c_finish() {
        // A program needing ~many cycles, powered in tiny slices, never
        // completes under plain C (it always restarts).
        let prog = compile(
            "int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return s; }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let mut supply = RecordedTrace::new([(2_000, 500); 20]);
        let out = Executor::new().run(&mut m, &mut rt, &mut supply).unwrap();
        assert_eq!(out, RunOutcome::OutOfEnergy);
        assert_eq!(m.stats().boots, 20);
    }

    #[test]
    fn isr_fires_periodically() {
        let prog = compile(
            "nv int ticks;
             void on_timer() { ticks++; }
             int main() { int i; for (i = 0; i < 10000; i++) {} return ticks; }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(
            prog,
            MachineConfig {
                isr: Some(("on_timer".into(), 10_000)),
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let mut rt = BareRuntime::new();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ticks = out.exit_code().unwrap();
        assert!(ticks > 0, "ISR should have fired");
        assert_eq!(m.stats().isr_entries, ticks as u64);
    }

    #[test]
    fn starvation_detection_fires_for_checkpointless_loops() {
        let prog = compile("int main() { while (1) {} return 0; }", OptLevel::O0).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let mut supply = PeriodicTrace::new(1_000, 100);
        let out = Executor::new()
            .with_starvation_detection(5)
            .run(&mut m, &mut rt, &mut supply)
            .unwrap();
        assert_eq!(out, RunOutcome::Starved { boots: 5 });
    }

    #[test]
    fn time_ms_reflects_cycles() {
        let (out, _) = run_src(
            "int main() {
                 int t0 = time_ms();
                 for (int i = 0; i < 20000; i++) {}
                 int t1 = time_ms();
                 return t1 >= t0;
             }",
        );
        assert_eq!(out.exit_code(), Some(1));
    }

    #[test]
    fn deep_recursion_overflows_sram_stack() {
        let prog = compile(
            "int deep(int n) { int pad[16]; pad[0] = n; if (n == 0) return 0; return deep(n - 1) + pad[0]; }
             int main() { return deep(100); }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }));
    }
}
