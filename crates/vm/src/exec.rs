//! The instruction interpreter and the intermittent executor.
//!
//! Two dispatch engines share this module:
//!
//! * the **reference** interpreter — [`step`], a per-instruction `match`
//!   over [`Instr`] with fully checked stack accesses; and
//! * the **decoded** interpreter — a tight loop over the pre-lowered
//!   [`DecodedProgram`] op stream, with fused
//!   superinstructions, elided stack-bound checks in verified functions,
//!   and the word fast path in `tics-mcu`.
//!
//! The two are bit-exact: same simulated memory traffic, cycles, span
//! attribution, traps, and trace events (`tests/differential_exec.rs`
//! and `tests/decode_roundtrip.rs` enforce this). The decoded engine is
//! the default; the reference engine survives as the differential-testing
//! oracle, selectable per executor or via `TICS_VM_ENGINE=reference`.

use std::sync::Arc;

use tics_energy::PowerSupply;
use tics_mcu::periph::{I2C_PHASE_CYCLES, UART_BYTE_CYCLES};
use tics_mcu::{Addr, Registers, WordBurst};
use tics_minic::isa::{Instr, Syscall};
use tics_minic::program::FRAME_HEADER_BYTES;
use tics_trace::{I2cPhase, TraceEvent};

use crate::decoded::{BinOp, DecodedProgram, Op, UnOp, DEPTH_UNKNOWN};
use crate::error::VmError;
use crate::machine::Machine;
use crate::runtime::{CheckpointKind, IntermittentRuntime, ResumeAction};
use crate::Result;

/// Which interpreter drives the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchEngine {
    /// The decoded fast-dispatch interpreter (default).
    #[default]
    Decoded,
    /// The original per-instruction reference interpreter, kept as the
    /// differential-testing oracle.
    Reference,
}

impl DispatchEngine {
    /// Engine selection from the `TICS_VM_ENGINE` environment variable:
    /// `reference`/`ref` picks the oracle, anything else (or unset) the
    /// decoded engine. Read once per [`Executor`] construction.
    #[must_use]
    pub fn from_env() -> DispatchEngine {
        match std::env::var("TICS_VM_ENGINE").as_deref() {
            Ok("reference" | "ref") => DispatchEngine::Reference,
            _ => DispatchEngine::Decoded,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `main` returned with this exit code.
    Finished(i32),
    /// The power supply produced no more periods (experiment window
    /// ended).
    OutOfEnergy,
    /// The executor's total time or instruction budget ran out (used to
    /// bound infinite sense-loops).
    BudgetExhausted,
    /// The system made no forward progress for the configured number of
    /// consecutive boots — the paper's *system starvation*.
    Starved {
        /// Boots observed without a new checkpoint or completion.
        boots: u64,
    },
}

impl RunOutcome {
    /// The exit code, if the program finished.
    #[must_use]
    pub fn exit_code(self) -> Option<i32> {
        match self {
            RunOutcome::Finished(c) => Some(c),
            _ => None,
        }
    }
}

/// Drives a [`Machine`] + [`IntermittentRuntime`] pair through a
/// [`PowerSupply`], injecting power failures at on-period boundaries.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Stop after this much total on-time (µs). Bounds infinite loops.
    pub max_total_us: u64,
    /// Stop after this many instructions.
    pub max_instructions: u64,
    /// Declare starvation after this many consecutive boots with no new
    /// checkpoint and no program completion. `u64::MAX` disables.
    pub starvation_boots: u64,
    /// Forward-progress guard: after this many consecutive boots with no
    /// new checkpoint, no new externally visible event, and no
    /// completion, `run` returns [`VmError::NoForwardProgress`] instead
    /// of spinning forever on an infinite supply. Unlike
    /// [`Executor::starvation_boots`] (a measured outcome for runtimes
    /// that checkpoint), this is a harness-level diagnosis: it fires only
    /// when *nothing at all* is happening. `u64::MAX` disables.
    pub progress_guard_boots: u64,
    /// Hardware-assisted checkpointing (§4's policy ii): when set, a
    /// low-voltage comparator interrupt fires this many µs before the
    /// supply dies, giving the runtime one [`CheckpointKind::Voltage`]
    /// opportunity per on-period. `None` models a board without the
    /// comparator.
    pub voltage_warning_us: Option<u64>,
    /// Which interpreter to dispatch with. Defaults from
    /// [`DispatchEngine::from_env`].
    pub engine: DispatchEngine,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            max_total_us: u64::MAX / 4,
            max_instructions: u64::MAX,
            starvation_boots: u64::MAX,
            progress_guard_boots: u64::MAX,
            voltage_warning_us: None,
            engine: DispatchEngine::from_env(),
        }
    }
}

impl Executor {
    /// An executor with effectively unlimited budgets.
    #[must_use]
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Caps the total on-time (µs of cycles).
    #[must_use]
    pub fn with_time_budget(mut self, us: u64) -> Executor {
        self.max_total_us = us;
        self
    }

    /// Caps the instruction count.
    #[must_use]
    pub fn with_instruction_budget(mut self, n: u64) -> Executor {
        self.max_instructions = n;
        self
    }

    /// Enables starvation detection after `boots` unproductive boots.
    #[must_use]
    pub fn with_starvation_detection(mut self, boots: u64) -> Executor {
        self.starvation_boots = boots;
        self
    }

    /// Enables the forward-progress guard after `boots` consecutive
    /// boots with no checkpoint, no visible event, and no completion.
    #[must_use]
    pub fn with_progress_guard(mut self, boots: u64) -> Executor {
        self.progress_guard_boots = boots;
        self
    }

    /// Enables the low-voltage comparator interrupt `margin_us` before
    /// each power failure.
    #[must_use]
    pub fn with_voltage_warning(mut self, margin_us: u64) -> Executor {
        self.voltage_warning_us = Some(margin_us);
        self
    }

    /// Selects the dispatch engine explicitly (overriding the
    /// `TICS_VM_ENGINE` default).
    #[must_use]
    pub fn with_engine(mut self, engine: DispatchEngine) -> Executor {
        self.engine = engine;
        self
    }

    /// Runs to completion, budget exhaustion, supply exhaustion, or
    /// starvation.
    ///
    /// # Errors
    ///
    /// Propagates traps, stack overflows, and memory errors.
    pub fn run(
        &self,
        m: &mut Machine,
        rt: &mut dyn IntermittentRuntime,
        supply: &mut dyn PowerSupply,
    ) -> Result<RunOutcome> {
        let out = self.run_loop(m, rt, supply);
        // Detail events batch until the next observable boundary; the
        // run-loop exit (on any outcome) is the final one.
        m.flush_trace();
        out
    }

    fn run_loop(
        &self,
        m: &mut Machine,
        rt: &mut dyn IntermittentRuntime,
        supply: &mut dyn PowerSupply,
    ) -> Result<RunOutcome> {
        rt.check_program(&m.loaded().program)?;
        let mut unproductive_boots = 0u64;
        let mut stalled_boots = 0u64;
        loop {
            let Some(period) = supply.next_period() else {
                return Ok(RunOutcome::OutOfEnergy);
            };
            m.emit(TraceEvent::Boot);
            let ckpts_at_boot = m.stats().checkpoints;
            // Progress is counted on the trace's incremental fold — the
            // same `is_externally_visible` predicate the fault oracle
            // replays, so the two can never disagree.
            let events_at_boot = m.trace().visible_events();
            // Boot-time recovery draws from the same energy budget as the
            // rest of the period; a restore that exceeds it dies mid-way
            // (the paper's starvation-by-recovery-cost).
            let period_start = m.cycles();
            let deadline = period_start.saturating_add(period.on_us);
            m.set_period_deadline(deadline);
            match rt.on_boot(m)? {
                ResumeAction::Restart { reinit_globals } => {
                    if reinit_globals {
                        m.init_globals(false)?;
                    }
                    m.start_main(rt)?;
                }
                ResumeAction::Restored => {}
            }
            // Reconcile the peripheral transaction journal after boot
            // recovery (for runtimes that harden wire I/O): in-flight
            // descriptors from the previous life become retryable (with
            // backoff charged against this period) or poisoned. One call
            // site covers every runtime under both dispatch engines.
            if let Some(d) = rt.tx_driver() {
                d.reconcile(m)?;
            }
            // Engine choice is fixed per on-period, *after* boot/restore
            // resolved the register file: a restore from a corrupted
            // (un-CRC'd) checkpoint bank can leave registers violating the
            // decoded engine's verified-depth invariant, in which case the
            // period falls back to the reference interpreter — a dispatch
            // decision only, bit-exact either way.
            let mode = self.period_mode(m, rt);
            let mut voltage_fired = false;
            let warn_at = self
                .voltage_warning_us
                .map(|margin| deadline.saturating_sub(margin));
            loop {
                if m.is_halted() {
                    let code = m.exit_code().ok_or_else(|| {
                        VmError::Trap(format!(
                            "machine halted without an exit code under {} at cycle {}",
                            rt.name(),
                            m.cycles()
                        ))
                    })?;
                    return Ok(RunOutcome::Finished(code));
                }
                if m.cycles() >= deadline {
                    break;
                }
                if m.cycles() >= self.max_total_us
                    || m.stats().instructions >= self.max_instructions
                {
                    return Ok(RunOutcome::BudgetExhausted);
                }
                if let Some(warn_at) = warn_at {
                    if !voltage_fired && m.cycles() >= warn_at {
                        voltage_fired = true;
                        rt.checkpoint(m, CheckpointKind::Voltage)?;
                    }
                }
                match mode {
                    PeriodMode::Reference => step(m, rt)?,
                    PeriodMode::Safe {
                        ref decoded,
                        isr,
                        hook,
                    } => step_decoded_safe(m, rt, decoded, isr, hook)?,
                    PeriodMode::Fast { ref decoded } => {
                        // The burst runs until the nearest stop boundary;
                        // the outer checks above are idempotent and
                        // disambiguate which one fired.
                        let mut stop_at = deadline.min(self.max_total_us);
                        if let Some(w) = warn_at {
                            if !voltage_fired {
                                stop_at = stop_at.min(w);
                            }
                        }
                        run_burst(m, rt, decoded, stop_at, self.max_instructions)?;
                    }
                }
            }
            // Power failure at the end of the on-period.
            m.power_failure(period.off_us);
            rt.on_power_failure(m);
            if m.stats().checkpoints == ckpts_at_boot {
                unproductive_boots += 1;
                if unproductive_boots >= self.starvation_boots {
                    return Ok(RunOutcome::Starved {
                        boots: unproductive_boots,
                    });
                }
            } else {
                unproductive_boots = 0;
            }
            // The progress guard is stricter about what counts as stalled:
            // a reboot that produced *any* visible event is still moving,
            // even without a checkpoint (plain C re-executing from main).
            if m.stats().checkpoints == ckpts_at_boot
                && m.trace().visible_events() == events_at_boot
            {
                stalled_boots += 1;
                if stalled_boots >= self.progress_guard_boots {
                    return Err(VmError::NoForwardProgress {
                        boots: stalled_boots,
                        runtime: rt.name().to_string(),
                    });
                }
            } else {
                stalled_boots = 0;
            }
        }
    }
}

/// How one on-period is dispatched. Fixed at boot; see
/// [`Executor::period_mode`].
enum PeriodMode {
    /// The original interpreter (engine override or failed boot check).
    Reference,
    /// Decoded plain ops, with the ISR poll and/or the per-instruction
    /// runtime hook between every two instructions. No fusion: the hook
    /// may observe or redirect the machine at every boundary.
    Safe {
        decoded: Arc<DecodedProgram>,
        isr: bool,
        hook: bool,
    },
    /// Decoded ops with superinstructions in an uninterrupted burst loop
    /// — no ISR, no instruction hook.
    Fast { decoded: Arc<DecodedProgram> },
}

impl Executor {
    /// Picks the dispatch mode for the period that just booted.
    fn period_mode(&self, m: &Machine, rt: &dyn IntermittentRuntime) -> PeriodMode {
        if self.engine == DispatchEngine::Reference {
            return PeriodMode::Reference;
        }
        if !boot_state_consistent(m) {
            return PeriodMode::Reference;
        }
        let decoded = m.loaded().decoded.clone();
        let isr = m.has_isr();
        let hook = rt.instruction_hook();
        if isr || hook {
            PeriodMode::Safe { decoded, isr, hook }
        } else {
            PeriodMode::Fast { decoded }
        }
    }
}

/// Checks that the just-booted register file is consistent with the
/// verifier's depth map: `pc` in range and, when the owning function was
/// verified at a known depth, `sp` exactly where that depth puts it.
/// A mismatch means a restore produced a state the reference interpreter
/// would police with its per-access checks (e.g. a corrupted checkpoint
/// bank that passed no CRC) — the period then runs on the reference
/// engine so behavior stays identical.
fn boot_state_consistent(m: &Machine) -> bool {
    let loaded = m.loaded();
    let dp = &loaded.decoded;
    let pc = m.regs.pc as usize;
    let Some(&fi) = loaded.owner.get(pc) else {
        // Out-of-range pc traps with the same message in both engines.
        return true;
    };
    if !dp.verified[fi as usize] {
        // Unverified functions are all-Ref: reference semantics anyway.
        return true;
    }
    let depth = dp.depths[pc];
    if depth == DEPTH_UNKNOWN {
        return false;
    }
    let f = &loaded.program.functions[fi as usize];
    let operand_base = m
        .regs
        .fp
        .offset(FRAME_HEADER_BYTES + f.arg_bytes() + u32::from(f.locals_bytes));
    m.regs.sp.raw() == operand_base.raw().wrapping_add(4 * depth as u32)
}

/// Executes one instruction.
///
/// # Errors
///
/// Propagates traps (divide by zero, stack under/overflow), stack
/// overflows from frame allocation, and memory errors.
pub fn step(m: &mut Machine, rt: &mut dyn IntermittentRuntime) -> Result<()> {
    m.maybe_fire_isr(rt)?;
    step_after_isr(m, rt)
}

/// The reference interpreter body: fetch, dispatch, instruction hook —
/// everything in [`step`] except the ISR poll (which the decoded safe
/// loop has already performed when it delegates here).
fn step_after_isr(m: &mut Machine, rt: &mut dyn IntermittentRuntime) -> Result<()> {
    let pc = m.regs.pc;
    let instr = *m
        .loaded()
        .code
        .get(pc as usize)
        .ok_or_else(|| VmError::Trap(format!("pc {pc} out of range")))?;
    m.regs.pc = pc + 1;
    m.stats_mut().instructions += 1;
    let base = m.mem.costs().instr_base;
    m.mem.add_cycles(base);

    match instr {
        Instr::Const(v) => m.push(v)?,
        Instr::LoadLocal(off) => {
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreLocal(off) => {
            let v = m.pop()?;
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            m.mem.write_i32(a, v)?;
        }
        Instr::AddrLocal(off) => {
            let a = Machine::frame_body(m.regs.fp).offset(u32::from(off));
            m.push(a.raw() as i32)?;
        }
        Instr::LoadGlobal(off) => {
            let a = m.global_addr(off);
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreGlobal(off) => {
            let v = m.pop()?;
            let a = m.global_addr(off);
            m.mem.write_i32(a, v)?;
        }
        Instr::StoreGlobalLogged(off) => {
            // The runtime may take a *forced* checkpoint inside
            // `logged_store` (undo log full). Point pc back at this
            // instruction while it runs so a restore re-executes the
            // whole store; the operand stack is still intact here.
            let next = m.regs.pc;
            m.regs.pc = pc;
            let a = m.global_addr(off);
            rt.logged_store(m, a, 4)?;
            m.regs.pc = next;
            let v = m.pop()?;
            m.mem.write_i32(a, v)?;
        }
        Instr::AddrGlobal(off) => {
            let a = m.global_addr(off);
            m.push(a.raw() as i32)?;
        }
        Instr::LoadInd => {
            let a = Addr(m.pop()? as u32);
            let v = m.mem.read_i32(a)?;
            m.push(v)?;
        }
        Instr::StoreInd => {
            let v = m.pop()?;
            let a = Addr(m.pop()? as u32);
            m.mem.write_i32(a, v)?;
        }
        Instr::StoreIndLogged => {
            // See StoreGlobalLogged: keep the operand stack intact and pc
            // on this instruction while the runtime may checkpoint.
            let next = m.regs.pc;
            m.regs.pc = pc;
            let a = Addr(m.mem.peek_i32(Addr(m.regs.sp.raw() - 8))? as u32);
            rt.logged_store(m, a, 4)?;
            m.regs.pc = next;
            let v = m.pop()?;
            let a2 = Addr(m.pop()? as u32);
            debug_assert_eq!(a, a2);
            m.mem.write_i32(a2, v)?;
        }
        Instr::Dup => {
            let v = m.peek_top()?;
            m.push(v)?;
        }
        Instr::Pop => {
            m.pop()?;
        }
        Instr::Swap => {
            let a = m.pop()?;
            let b = m.pop()?;
            m.push(a)?;
            m.push(b)?;
        }
        Instr::Add => binary(m, |a, b| Ok(a.wrapping_add(b)))?,
        Instr::Sub => binary(m, |a, b| Ok(a.wrapping_sub(b)))?,
        Instr::Mul => binary(m, |a, b| Ok(a.wrapping_mul(b)))?,
        Instr::Div => binary(m, |a, b| {
            a.checked_div(b)
                .ok_or_else(|| VmError::Trap("division by zero or overflow".into()))
        })?,
        Instr::Mod => binary(m, |a, b| {
            a.checked_rem(b)
                .ok_or_else(|| VmError::Trap("remainder by zero or overflow".into()))
        })?,
        Instr::Neg => unary(m, |a| a.wrapping_neg())?,
        Instr::BitAnd => binary(m, |a, b| Ok(a & b))?,
        Instr::BitOr => binary(m, |a, b| Ok(a | b))?,
        Instr::BitXor => binary(m, |a, b| Ok(a ^ b))?,
        Instr::Shl => binary(m, |a, b| Ok(a.wrapping_shl(b as u32 & 31)))?,
        Instr::Shr => binary(m, |a, b| Ok(a.wrapping_shr(b as u32 & 31)))?,
        Instr::BitNot => unary(m, |a| !a)?,
        Instr::Eq => binary(m, |a, b| Ok(i32::from(a == b)))?,
        Instr::Ne => binary(m, |a, b| Ok(i32::from(a != b)))?,
        Instr::Lt => binary(m, |a, b| Ok(i32::from(a < b)))?,
        Instr::Le => binary(m, |a, b| Ok(i32::from(a <= b)))?,
        Instr::Gt => binary(m, |a, b| Ok(i32::from(a > b)))?,
        Instr::Ge => binary(m, |a, b| Ok(i32::from(a >= b)))?,
        Instr::LogNot => unary(m, |a| i32::from(a == 0))?,
        Instr::Jmp(t) => m.regs.pc = t,
        Instr::Jz(t) => {
            if m.pop()? == 0 {
                m.regs.pc = t;
            }
        }
        Instr::Jnz(t) => {
            if m.pop()? != 0 {
                m.regs.pc = t;
            }
        }
        Instr::Call(fidx) => {
            let ret = m.regs.pc;
            m.call_function(rt, fidx, ret)?;
        }
        Instr::Ret => m.do_return(rt)?,
        Instr::Halt => {
            let f = m.loaded().function_at(pc).name.clone();
            return Err(VmError::Trap(format!("fell off the end of `{f}`")));
        }
        Instr::Syscall(Syscall::Alloc) => {
            // Like the logged stores: the bump-pointer log may force a
            // checkpoint, so keep pc on this instruction and the argument
            // on the operand stack until the allocation is durable.
            m.mem.add_cycles(m.mem.costs().syscall_base);
            let next = m.regs.pc;
            m.regs.pc = pc;
            let bytes = m.peek_top()? as u32;
            let addr = m.heap_alloc(rt, bytes)?;
            m.regs.pc = next;
            m.pop()?;
            m.push(addr as i32)?;
        }
        Instr::Syscall(sys) => do_syscall(m, rt, sys)?,
        Instr::Checkpoint(site) => rt.checkpoint(m, CheckpointKind::Site(site))?,
        Instr::AtomicBegin => rt.atomic_begin(m)?,
        Instr::AtomicEnd => rt.atomic_end(m)?,
        Instr::TimestampVar(v) => rt.timestamp_var(m, v)?,
        Instr::ExpiresCheck(v) => {
            let fresh = rt.expires_check(m, v)?;
            if !fresh {
                m.emit(TraceEvent::ExpireDiscard);
            }
            m.push(i32::from(fresh))?;
        }
        Instr::TimelyCheck => {
            let deadline_ms = m.pop()?;
            let ok = rt.timely_check(m, deadline_ms)?;
            if !ok {
                m.emit(TraceEvent::TimelyMiss);
            }
            m.push(i32::from(ok))?;
        }
        Instr::ExpiresBlockBegin(v, catch_pc) => rt.expires_block_begin(m, v, catch_pc)?,
        Instr::ExpiresBlockEnd => rt.expires_block_end(m)?,
    }

    rt.on_instruction(m)?;
    Ok(())
}

fn binary(m: &mut Machine, f: impl FnOnce(i32, i32) -> Result<i32>) -> Result<()> {
    let b = m.pop()?;
    let a = m.pop()?;
    let r = f(a, b)?;
    m.push(r)
}

fn unary(m: &mut Machine, f: impl FnOnce(i32) -> i32) -> Result<()> {
    let a = m.pop()?;
    m.push(f(a))
}

fn do_syscall(m: &mut Machine, rt: &mut dyn IntermittentRuntime, sys: Syscall) -> Result<()> {
    let cost = m.mem.costs().syscall_base;
    m.mem.add_cycles(cost);
    match sys {
        Syscall::Sample | Syscall::SampleAccel | Syscall::SampleMoisture | Syscall::SampleTemp => {
            let v = m.next_sensor();
            m.push(v)?;
        }
        Syscall::Send => {
            let v = m.pop()?;
            // A virtualizing runtime buffers the transmission until its
            // state commits; otherwise the radio fires immediately.
            if !rt.io_send(m, v)? {
                m.record_send(v);
            }
            m.push(0)?;
        }
        Syscall::TimeMs => {
            let t = (m.now().as_micros() / 1_000) as i32;
            m.push(t)?;
        }
        Syscall::TimeUs => {
            let t = (m.now().as_micros() & 0x7FFF_FFFF) as i32;
            m.push(t)?;
        }
        Syscall::Led => {
            let v = m.pop()?;
            m.emit(TraceEvent::Led { value: v });
            m.push(0)?;
        }
        Syscall::Rand => {
            let v = m.rand16();
            m.push(v)?;
        }
        Syscall::Mark => {
            let id = m.pop()?;
            m.emit(TraceEvent::Mark { id });
            m.push(0)?;
        }
        Syscall::Print => {
            let v = m.pop()?;
            m.emit(TraceEvent::Print { value: v });
            m.push(0)?;
        }
        Syscall::CheckpointNow => {
            // Push the result *before* committing: the checkpoint must
            // capture the post-syscall operand stack, since a restore
            // resumes at the next instruction.
            m.push(0)?;
            rt.checkpoint(m, CheckpointKind::Site(tics_minic::isa::CkptSite::Manual))?;
        }
        // ---- wire peripherals ----
        //
        // Wire traffic is charged with `charge_atomic`: a byte or bus
        // phase whose cycles cross the period deadline is *torn* — the
        // device saw a partial symbol. Torn traffic still reaches the
        // wire log (and the trace: it left the pin), but devices NACK or
        // garble it. Both engines route here via `Op::Ref`, so the wire
        // behavior is bit-exact by construction.
        Syscall::UartTx => {
            let byte = (m.pop()? & 0xFF) as u8;
            let torn = !m.charge_atomic(UART_BYTE_CYCLES);
            let at = m.true_now_us();
            m.periph.uart.tx(byte, torn, at);
            m.emit(TraceEvent::UartTx { byte, torn });
            m.push(i32::from(!torn))?;
        }
        Syscall::UartRx => {
            let byte = m.periph.uart.rx();
            m.emit(TraceEvent::UartRx { byte });
            m.push(byte)?;
        }
        Syscall::I2cStart => {
            let addr = (m.pop()? & 0x7F) as u8;
            let torn = !m.charge_atomic(I2C_PHASE_CYCLES);
            let at = m.true_now_us();
            let ack = m.periph.i2c.start(addr, torn, at);
            m.emit(TraceEvent::I2cOp {
                op: I2cPhase::Start,
                value: addr,
                ack,
            });
            m.push(i32::from(ack))?;
        }
        Syscall::I2cWrite => {
            let byte = (m.pop()? & 0xFF) as u8;
            let torn = !m.charge_atomic(I2C_PHASE_CYCLES);
            let at = m.true_now_us();
            let ack = m.periph.i2c.write(byte, torn, at);
            m.emit(TraceEvent::I2cOp {
                op: I2cPhase::Write,
                value: byte,
                ack,
            });
            m.push(i32::from(ack))?;
        }
        Syscall::I2cRead => {
            let torn = !m.charge_atomic(I2C_PHASE_CYCLES);
            let at = m.true_now_us();
            let r = m.periph.i2c.read(torn, at);
            m.emit(TraceEvent::I2cOp {
                op: I2cPhase::Read,
                value: r.unwrap_or(0xFF),
                ack: r.is_some(),
            });
            m.push(r.map_or(-1, i32::from))?;
        }
        Syscall::I2cStop => {
            let torn = !m.charge_atomic(I2C_PHASE_CYCLES);
            let at = m.true_now_us();
            let ok = m.periph.i2c.stop(torn, at);
            m.emit(TraceEvent::I2cOp {
                op: I2cPhase::Stop,
                value: 0,
                ack: ok,
            });
            m.push(i32::from(ok))?;
        }
        Syscall::I2cReset => {
            m.mem.add_cycles(I2C_PHASE_CYCLES);
            let at = m.true_now_us();
            let ok = m.periph.i2c.reset(at);
            m.emit(TraceEvent::I2cOp {
                op: I2cPhase::Reset,
                value: 0,
                ack: ok,
            });
            m.push(i32::from(ok))?;
        }
        // ---- transactional driver ----
        //
        // Without a driver (`tx_driver() == None`, the naive control),
        // `tx_begin` always answers "proceed, attempt 0" and `tx_commit`
        // journals nothing — legacy code's exposure to torn-wire replay.
        Syscall::TxBegin => {
            let id = m.pop()? as u32;
            let r = match rt.tx_driver() {
                Some(d) => d.begin(m, id)?,
                None => 0,
            };
            m.push(r)?;
        }
        Syscall::TxCommit => {
            let id = m.pop()? as u32;
            if let Some(d) = rt.tx_driver() {
                d.commit(m, id)?;
            }
            m.push(0)?;
        }
        Syscall::Alloc => unreachable!("Alloc is handled in step() for checkpoint safety"),
    }
    Ok(())
}

// ---- decoded dispatch ----
//
// Everything below must stay bit-exact with the reference interpreter:
// same simulated memory operations in the same order, same cycle charges
// and span attribution, same trap points with the machine in the same
// state. The only things removed are host-side costs — the per-push
// `function_at` bound checks (proven unnecessary by the decoder's depth
// verification), the generic byte-slice memory path (replaced by the
// word fast path), and per-instruction dispatch (fused away in bursts).

/// Push without the frame-bound check: legal only at verified pcs, where
/// the decoder proved `depth + 1 <= max_ostack` — exactly the reference
/// check in [`Machine::push`].
#[inline(always)]
fn fast_push(m: &mut Machine, v: i32) -> Result<()> {
    m.mem.write_word(m.regs.sp, v as u32)?;
    m.regs.sp = Addr(m.regs.sp.raw() + 4);
    Ok(())
}

/// Pop without the underflow check: legal only at verified pcs, where
/// the decoder proved `depth >= 1`.
#[inline(always)]
fn fast_pop(m: &mut Machine) -> Result<i32> {
    let sp = Addr(m.regs.sp.raw() - 4);
    m.regs.sp = sp;
    Ok(m.mem.read_word(sp)? as i32)
}

/// The ALU, shared by plain and fused ops; trap messages match the
/// reference interpreter's exactly.
#[inline(always)]
fn bin_apply(op: BinOp, a: i32, b: i32) -> Result<i32> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a
            .checked_div(b)
            .ok_or_else(|| VmError::Trap("division by zero or overflow".into()))?,
        BinOp::Mod => a
            .checked_rem(b)
            .ok_or_else(|| VmError::Trap("remainder by zero or overflow".into()))?,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 31),
        BinOp::Shr => a.wrapping_shr(b as u32 & 31),
        BinOp::Eq => i32::from(a == b),
        BinOp::Ne => i32::from(a != b),
        BinOp::Lt => i32::from(a < b),
        BinOp::Le => i32::from(a <= b),
        BinOp::Gt => i32::from(a > b),
        BinOp::Ge => i32::from(a >= b),
    })
}

/// Executes one plain (non-`Ref`, non-fused) decoded op, mirroring the
/// reference `step_after_isr` body for that instruction: pc increment,
/// instruction count, base cycle charge, then the op's memory traffic in
/// reference order.
#[inline(always)]
fn exec_plain(m: &mut Machine, op: Op) -> Result<()> {
    m.regs.pc += 1;
    m.stats_mut().instructions += 1;
    let base = m.mem.costs().instr_base;
    m.mem.add_cycles(base);
    match op {
        Op::Const(v) => fast_push(m, v),
        Op::LoadLocal(off) => {
            let a = Addr(m.regs.fp.raw() + off);
            let v = m.mem.read_word(a)? as i32;
            fast_push(m, v)
        }
        Op::StoreLocal(off) => {
            let v = fast_pop(m)?;
            let a = Addr(m.regs.fp.raw() + off);
            m.mem.write_word(a, v as u32)?;
            Ok(())
        }
        Op::AddrLocal(off) => fast_push(m, (m.regs.fp.raw() + off) as i32),
        Op::LoadGlobal(off) => {
            let a = m.global_addr(off);
            let v = m.mem.read_word(a)? as i32;
            fast_push(m, v)
        }
        Op::StoreGlobal(off) => {
            let v = fast_pop(m)?;
            let a = m.global_addr(off);
            m.mem.write_word(a, v as u32)?;
            Ok(())
        }
        Op::AddrGlobal(off) => {
            let a = m.global_addr(off);
            fast_push(m, a.raw() as i32)
        }
        Op::LoadInd => {
            let a = Addr(fast_pop(m)? as u32);
            let v = m.mem.read_word(a)? as i32;
            fast_push(m, v)
        }
        Op::StoreInd => {
            let v = fast_pop(m)?;
            let a = Addr(fast_pop(m)? as u32);
            m.mem.write_word(a, v as u32)?;
            Ok(())
        }
        Op::Dup => {
            // `peek_top` charges nothing in the reference interpreter;
            // only the push is bus traffic.
            let v = m.mem.peek_word(Addr(m.regs.sp.raw() - 4))? as i32;
            fast_push(m, v)
        }
        Op::Pop => {
            fast_pop(m)?;
            Ok(())
        }
        Op::Swap => {
            let a = fast_pop(m)?;
            let b = fast_pop(m)?;
            fast_push(m, a)?;
            fast_push(m, b)
        }
        Op::Bin(op) => {
            let b = fast_pop(m)?;
            let a = fast_pop(m)?;
            let r = bin_apply(op, a, b)?;
            fast_push(m, r)
        }
        Op::Un(op) => {
            let a = fast_pop(m)?;
            let r = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::BitNot => !a,
                UnOp::LogNot => i32::from(a == 0),
            };
            fast_push(m, r)
        }
        Op::Jmp(t) => {
            m.regs.pc = t;
            Ok(())
        }
        Op::Jz(t) => {
            if fast_pop(m)? == 0 {
                m.regs.pc = t;
            }
            Ok(())
        }
        Op::Jnz(t) => {
            if fast_pop(m)? != 0 {
                m.regs.pc = t;
            }
            Ok(())
        }
        Op::Ref
        | Op::LdLKBin { .. }
        | Op::LdLKBinSt { .. }
        | Op::LdLKBinBr { .. }
        | Op::LdGKBin { .. }
        | Op::LdGKBinSt { .. }
        | Op::KBin { .. }
        | Op::KStL { .. }
        | Op::KStG { .. } => unreachable!("exec_plain only receives plain ops"),
    }
}

/// The fast-mode burst loop: dispatches decoded ops (including fused
/// superinstructions) until a stop boundary — period deadline, voltage
/// warning, budget — or a halt via a `Ref` op.
///
/// Non-`Ref` stretches execute inside a *fast zone*: a
/// [`WordBurst`](tics_mcu::WordBurst) view over the memory keeps the
/// cycle and traffic counters in locals (registers), and the
/// instruction count accumulates in a local too, folding back into the
/// machine at every zone boundary — before any `Ref` dispatch, stop
/// condition, or trap — so the machine state at every observable point
/// is identical to the reference interpreter's.
fn run_burst(
    m: &mut Machine,
    rt: &mut dyn IntermittentRuntime,
    dp: &DecodedProgram,
    stop_at: u64,
    max_instr: u64,
) -> Result<()> {
    loop {
        if m.cycles() >= stop_at || m.stats().instructions >= max_instr {
            return Ok(());
        }
        let pc = m.regs.pc;
        let Some(&op) = dp.ops.get(pc as usize) else {
            return Err(VmError::Trap(format!("pc {pc} out of range")));
        };
        if let Op::Ref = op {
            // Calls, returns, syscalls, runtime-mediated instructions,
            // and everything in unverified functions. Fast mode has no
            // ISR, so the skipped `maybe_fire_isr` is a no-op.
            step_after_isr(m, rt)?;
            if m.is_halted() {
                return Ok(());
            }
            continue;
        }
        let data_base = m.data_base().raw();
        let instr_left = max_instr.saturating_sub(m.stats().instructions);
        let mut instr = 0u64;
        let res = {
            let (mem, regs) = m.burst_parts();
            let mut bm = mem.word_burst();
            let r = fast_zone(&mut bm, regs, dp, data_base, stop_at, instr_left, &mut instr);
            bm.commit();
            r
        };
        m.stats_mut().instructions += instr;
        res?;
    }
}

/// Executes decoded ops against a [`WordBurst`] until a stop boundary,
/// a `Ref` op (returned to the caller's slow loop), or a trap. Between
/// the sub-ops of a fused sequence the same boundary is checked; on
/// trigger the pc already points at the next sub-instruction's slot
/// (which holds its plain op), so execution resumes exactly where the
/// reference interpreter would.
fn fast_zone(
    bm: &mut WordBurst<'_>,
    regs: &mut Registers,
    dp: &DecodedProgram,
    data_base: u32,
    stop_at: u64,
    instr_left: u64,
    instr: &mut u64,
) -> Result<()> {
    macro_rules! fused {
        ($first:expr $(, $rest:expr)+) => {{
            exec_burst(bm, regs, data_base, instr, $first)?;
            $(
                if bm.cycles() >= stop_at || *instr >= instr_left {
                    continue;
                }
                exec_burst(bm, regs, data_base, instr, $rest)?;
            )+
        }};
    }
    loop {
        if bm.cycles() >= stop_at || *instr >= instr_left {
            return Ok(());
        }
        let pc = regs.pc;
        let Some(&op) = dp.ops.get(pc as usize) else {
            return Err(VmError::Trap(format!("pc {pc} out of range")));
        };
        match op {
            Op::Ref => return Ok(()),
            Op::LdLKBin { a, k, op } => {
                fused!(Op::LoadLocal(a), Op::Const(k), Op::Bin(op));
            }
            Op::LdLKBinSt { a, k, op, d } => {
                fused!(
                    Op::LoadLocal(a),
                    Op::Const(k),
                    Op::Bin(op),
                    Op::StoreLocal(d)
                );
            }
            Op::LdLKBinBr { a, k, op, t, on_nz } => {
                let br = if on_nz { Op::Jnz(t) } else { Op::Jz(t) };
                fused!(Op::LoadLocal(a), Op::Const(k), Op::Bin(op), br);
            }
            Op::LdGKBin { g, k, op } => {
                fused!(Op::LoadGlobal(g), Op::Const(k), Op::Bin(op));
            }
            Op::LdGKBinSt { g, k, op, d } => {
                fused!(
                    Op::LoadGlobal(g),
                    Op::Const(k),
                    Op::Bin(op),
                    Op::StoreGlobal(d)
                );
            }
            Op::KBin { k, op } => {
                fused!(Op::Const(k), Op::Bin(op));
            }
            Op::KStL { k, d } => {
                fused!(Op::Const(k), Op::StoreLocal(d));
            }
            Op::KStG { k, d } => {
                fused!(Op::Const(k), Op::StoreGlobal(d));
            }
            plain => exec_burst(bm, regs, data_base, instr, plain)?,
        }
    }
}

/// Burst-view twin of [`exec_plain`]: same prologue (pc, instruction
/// count, base charge) and the same memory traffic in the same order,
/// but against the register-resident [`WordBurst`] counters.
#[inline(always)]
fn exec_burst(
    bm: &mut WordBurst<'_>,
    regs: &mut Registers,
    data_base: u32,
    instr: &mut u64,
    op: Op,
) -> Result<()> {
    #[inline(always)]
    fn bpush(bm: &mut WordBurst<'_>, regs: &mut Registers, v: i32) -> Result<()> {
        bm.write_word(regs.sp, v as u32)?;
        regs.sp = Addr(regs.sp.raw() + 4);
        Ok(())
    }
    #[inline(always)]
    fn bpop(bm: &mut WordBurst<'_>, regs: &mut Registers) -> Result<i32> {
        let sp = Addr(regs.sp.raw() - 4);
        regs.sp = sp;
        Ok(bm.read_word(sp)? as i32)
    }
    regs.pc += 1;
    *instr += 1;
    bm.add_cycles(bm.instr_base());
    match op {
        Op::Const(v) => bpush(bm, regs, v),
        Op::LoadLocal(off) => {
            let a = Addr(regs.fp.raw() + off);
            let v = bm.read_word(a)? as i32;
            bpush(bm, regs, v)
        }
        Op::StoreLocal(off) => {
            let v = bpop(bm, regs)?;
            let a = Addr(regs.fp.raw() + off);
            bm.write_word(a, v as u32)?;
            Ok(())
        }
        Op::AddrLocal(off) => bpush(bm, regs, (regs.fp.raw() + off) as i32),
        Op::LoadGlobal(off) => {
            let a = Addr(data_base + off);
            let v = bm.read_word(a)? as i32;
            bpush(bm, regs, v)
        }
        Op::StoreGlobal(off) => {
            let v = bpop(bm, regs)?;
            let a = Addr(data_base + off);
            bm.write_word(a, v as u32)?;
            Ok(())
        }
        Op::AddrGlobal(off) => bpush(bm, regs, (data_base + off) as i32),
        Op::LoadInd => {
            let a = Addr(bpop(bm, regs)? as u32);
            let v = bm.read_word(a)? as i32;
            bpush(bm, regs, v)
        }
        Op::StoreInd => {
            let v = bpop(bm, regs)?;
            let a = Addr(bpop(bm, regs)? as u32);
            bm.write_word(a, v as u32)?;
            Ok(())
        }
        Op::Dup => {
            // `peek_top` charges nothing in the reference interpreter;
            // only the push is bus traffic.
            let v = bm.peek_word(Addr(regs.sp.raw() - 4))? as i32;
            bpush(bm, regs, v)
        }
        Op::Pop => {
            bpop(bm, regs)?;
            Ok(())
        }
        Op::Swap => {
            let a = bpop(bm, regs)?;
            let b = bpop(bm, regs)?;
            bpush(bm, regs, a)?;
            bpush(bm, regs, b)
        }
        Op::Bin(op) => {
            let b = bpop(bm, regs)?;
            let a = bpop(bm, regs)?;
            let r = bin_apply(op, a, b)?;
            bpush(bm, regs, r)
        }
        Op::Un(op) => {
            let a = bpop(bm, regs)?;
            let r = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::BitNot => !a,
                UnOp::LogNot => i32::from(a == 0),
            };
            bpush(bm, regs, r)
        }
        Op::Jmp(t) => {
            regs.pc = t;
            Ok(())
        }
        Op::Jz(t) => {
            if bpop(bm, regs)? == 0 {
                regs.pc = t;
            }
            Ok(())
        }
        Op::Jnz(t) => {
            if bpop(bm, regs)? != 0 {
                regs.pc = t;
            }
            Ok(())
        }
        Op::Ref
        | Op::LdLKBin { .. }
        | Op::LdLKBinSt { .. }
        | Op::LdLKBinBr { .. }
        | Op::LdGKBin { .. }
        | Op::LdGKBinSt { .. }
        | Op::KBin { .. }
        | Op::KStL { .. }
        | Op::KStG { .. } => unreachable!("exec_burst only receives plain ops"),
    }
}

/// The safe-mode stepper: one decoded plain op per call, with the ISR
/// poll and/or the runtime's per-instruction hook at exactly the points
/// the reference interpreter has them. Used whenever a runtime does real
/// work in `on_instruction` (TICS timer checkpoints, expiration timers)
/// or the machine has a periodic ISR armed — both may redirect the pc
/// between any two instructions, so no fusion is allowed.
fn step_decoded_safe(
    m: &mut Machine,
    rt: &mut dyn IntermittentRuntime,
    dp: &DecodedProgram,
    isr: bool,
    hook: bool,
) -> Result<()> {
    if isr {
        m.maybe_fire_isr(rt)?;
    }
    let pc = m.regs.pc;
    let Some(&op) = dp.plain.get(pc as usize) else {
        return Err(VmError::Trap(format!("pc {pc} out of range")));
    };
    if matches!(op, Op::Ref) {
        // Includes the hook call at its end, like the reference step.
        return step_after_isr(m, rt);
    }
    exec_plain(m, op)?;
    if hook {
        rt.on_instruction(m)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::runtime::BareRuntime;
    use tics_energy::{ContinuousPower, PeriodicTrace, RecordedTrace};
    use tics_minic::{compile, opt::OptLevel};

    fn run_src(src: &str) -> (RunOutcome, Machine) {
        run_src_opt(src, OptLevel::O0)
    }

    fn run_src_opt(src: &str, lvl: OptLevel) -> (RunOutcome, Machine) {
        let prog = compile(src, lvl).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        (out, m)
    }

    #[test]
    fn arithmetic_program() {
        let (out, _) = run_src("int main() { return (3 + 4) * 5 - 36 / 6 % 4; }");
        assert_eq!(out.exit_code(), Some(35 - 2));
    }

    #[test]
    fn bitwise_program() {
        let (out, _) = run_src("int main() { return ((0xF0 & 0x3C) | 0x01) ^ (1 << 3); }");
        assert_eq!(out.exit_code(), Some(((0xF0 & 0x3C) | 0x01) ^ 8));
    }

    #[test]
    fn locals_and_loops() {
        let (out, _) = run_src(
            "int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }",
        );
        assert_eq!(out.exit_code(), Some(55));
    }

    #[test]
    fn while_break_continue() {
        let (out, _) = run_src(
            "int main() {
                int i = 0; int s = 0;
                while (1) {
                    i++;
                    if (i > 10) break;
                    if (i % 2) continue;
                    s += i;
                }
                return s;
            }",
        );
        assert_eq!(out.exit_code(), Some(2 + 4 + 6 + 8 + 10));
    }

    #[test]
    fn functions_and_arguments() {
        let (out, _) = run_src(
            "int add3(int a, int b, int c) { return a + b + c; }
             int main() { return add3(10, 20, 12); }",
        );
        assert_eq!(out.exit_code(), Some(42));
    }

    #[test]
    fn recursion_fibonacci() {
        let (out, _) = run_src(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(12); }",
        );
        assert_eq!(out.exit_code(), Some(144));
    }

    #[test]
    fn pointers_into_globals_and_locals() {
        let (out, _) = run_src(
            "int g[4];
             int main() {
                 int x = 5;
                 int *p = &x;
                 *p = 7;
                 int *q = g;
                 q[2] = x;
                 return g[2] + x;
             }",
        );
        assert_eq!(out.exit_code(), Some(14));
    }

    #[test]
    fn pointer_arithmetic_walks_arrays() {
        let (out, _) = run_src(
            "int a[5];
             int main() {
                 for (int i = 0; i < 5; i++) { a[i] = i * i; }
                 int *p = a;
                 int s = 0;
                 for (int i = 0; i < 5; i++) { s += *(p + i); }
                 return s;
             }",
        );
        assert_eq!(out.exit_code(), Some(1 + 4 + 9 + 16));
    }

    #[test]
    fn double_pointers() {
        let (out, _) = run_src(
            "int main() {
                 int x = 1;
                 int *p = &x;
                 int **pp = &p;
                 **pp = 9;
                 return x;
             }",
        );
        assert_eq!(out.exit_code(), Some(9));
    }

    #[test]
    fn ternary_and_logic() {
        let (out, _) =
            run_src("int main() { int a = 3; return (a > 2 && a < 5) ? (a == 3 || 0) : 99; }");
        assert_eq!(out.exit_code(), Some(1));
    }

    #[test]
    fn post_increment_semantics() {
        let (out, _) = run_src(
            "int a[3]; int i;
             int main() {
                 a[i++] = 10;
                 a[i++] = 20;
                 int old = i++;
                 return a[0] + a[1] + old * 100 + i;
             }",
        );
        assert_eq!(out.exit_code(), Some(10 + 20 + 200 + 3));
    }

    #[test]
    fn division_by_zero_traps() {
        let prog = compile("int z; int main() { return 5 / z; }", OptLevel::O0).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(matches!(err, VmError::Trap(_)));
    }

    #[test]
    fn syscalls_record_stats() {
        let (out, m) = run_src(
            "int main() { send(7); send(8); mark(1); mark(1); print(99); led(1); return 0; }",
        );
        assert_eq!(out.exit_code(), Some(0));
        assert_eq!(m.stats().sends(), vec![7, 8]);
        assert_eq!(m.stats().mark_count(1), 2);
        assert_eq!(m.stats().prints, vec![99]);
        assert_eq!(m.stats().led_events, 1);
    }

    #[test]
    fn optimization_preserves_semantics() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                   int a[6];
                   int main() {
                       for (int i = 0; i < 6; i++) { a[i] = fib(i); }
                       int s = 0;
                       int *p = a;
                       for (int i = 0; i < 6; i++) { s = s * 2 + *p; p++; }
                       return s;
                   }";
        let (o0, _) = run_src_opt(src, OptLevel::O0);
        let (o1, _) = run_src_opt(src, OptLevel::O1);
        let (o2, _) = run_src_opt(src, OptLevel::O2);
        assert_eq!(o0.exit_code(), o2.exit_code());
        assert_eq!(o1.exit_code(), o2.exit_code());
    }

    #[test]
    fn o2_executes_fewer_instructions() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 100; i++) { s += 2 * 3; } return s; }";
        let (_, m0) = run_src_opt(src, OptLevel::O0);
        let (_, m2) = run_src_opt(src, OptLevel::O2);
        assert!(m2.stats().instructions < m0.stats().instructions);
    }

    #[test]
    fn plain_c_restarts_and_nv_accumulates() {
        // The Table 1 failure mode: `nv` counters accumulate across
        // reboots, the final send never happens, state is inconsistent.
        let prog = compile(
            "nv int sensed;
             int main() {
                 while (1) {
                     sample();
                     sensed++;
                     mark(1);
                 }
                 return 0;
             }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        // 4 short on-periods, then the window ends.
        let mut supply = RecordedTrace::new([(3_000, 100); 4]);
        let out = Executor::new().run(&mut m, &mut rt, &mut supply).unwrap();
        assert_eq!(out, RunOutcome::OutOfEnergy);
        assert_eq!(m.stats().boots, 4);
        let sensed_addr = m.global_addr(0);
        let sensed = m.mem.peek_i32(sensed_addr).unwrap();
        assert!(sensed > 0, "nv counter must survive reboots");
        assert_eq!(u64::from(sensed as u32), m.stats().mark_count(1));
    }

    #[test]
    fn budget_exhaustion_stops_infinite_loops() {
        let (out, _) = {
            let prog = compile("int main() { while (1) {} return 0; }", OptLevel::O0).unwrap();
            let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
            let mut rt = BareRuntime::new();
            let out = Executor::new()
                .with_time_budget(50_000)
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            (out, m)
        };
        assert_eq!(out, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn short_periods_never_let_plain_c_finish() {
        // A program needing ~many cycles, powered in tiny slices, never
        // completes under plain C (it always restarts).
        let prog = compile(
            "int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return s; }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let mut supply = RecordedTrace::new([(2_000, 500); 20]);
        let out = Executor::new().run(&mut m, &mut rt, &mut supply).unwrap();
        assert_eq!(out, RunOutcome::OutOfEnergy);
        assert_eq!(m.stats().boots, 20);
    }

    #[test]
    fn isr_fires_periodically() {
        let prog = compile(
            "nv int ticks;
             void on_timer() { ticks++; }
             int main() { int i; for (i = 0; i < 10000; i++) {} return ticks; }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(
            prog,
            MachineConfig {
                isr: Some(("on_timer".into(), 10_000)),
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let mut rt = BareRuntime::new();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ticks = out.exit_code().unwrap();
        assert!(ticks > 0, "ISR should have fired");
        assert_eq!(m.stats().isr_entries, ticks as u64);
    }

    #[test]
    fn starvation_detection_fires_for_checkpointless_loops() {
        let prog = compile("int main() { while (1) {} return 0; }", OptLevel::O0).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let mut supply = PeriodicTrace::new(1_000, 100);
        let out = Executor::new()
            .with_starvation_detection(5)
            .run(&mut m, &mut rt, &mut supply)
            .unwrap();
        assert_eq!(out, RunOutcome::Starved { boots: 5 });
    }

    #[test]
    fn time_ms_reflects_cycles() {
        let (out, _) = run_src(
            "int main() {
                 int t0 = time_ms();
                 for (int i = 0; i < 20000; i++) {}
                 int t1 = time_ms();
                 return t1 >= t0;
             }",
        );
        assert_eq!(out.exit_code(), Some(1));
    }

    #[test]
    fn deep_recursion_overflows_sram_stack() {
        let prog = compile(
            "int deep(int n) { int pad[16]; pad[0] = n; if (n == 0) return 0; return deep(n - 1) + pad[0]; }
             int main() { return deep(100); }",
            OptLevel::O0,
        )
        .unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = BareRuntime::new();
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }));
    }
}
