//! The simulated machine: memory + registers + clock + program image.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use tics_clock::{PerfectClock, TimeMicros, Timekeeper};
use tics_mcu::{Addr, CostModel, Memory, MemoryLayout, PeripheralBus, Registers};
use tics_minic::program::{Program, FRAME_HEADER_BYTES};
use tics_trace::{SpanKind, TraceEvent, TraceRecord, TraceSink};

use crate::error::VmError;
use crate::loaded::{LoadedProgram, RET_SENTINEL};
use crate::runtime::IntermittentRuntime;
use crate::stats::ExecStats;
use crate::Result;

/// Configuration for building a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Physical memory map.
    pub layout: MemoryLayout,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Seed for the deterministic `rand16` builtin and synthetic sensors.
    pub seed: u64,
    /// Scripted sensor values consumed (in order) by the `sample*`
    /// builtins; when exhausted, synthetic values continue. Lets tests
    /// and experiments fix the sensed data exactly. Shared: every
    /// machine built from this config reads the same backing slice.
    pub sensor_trace: Arc<[i32]>,
    /// Periodic interrupt: `(function_name, period_us)`. The named
    /// function is invoked as an ISR whenever the period elapses.
    pub isr: Option<(String, u64)>,
    /// Bytes reserved for the persistent FRAM heap served by the
    /// `alloc` builtin (first word is the allocator's bump pointer).
    pub heap_bytes: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            layout: MemoryLayout::default(),
            costs: CostModel::default(),
            seed: 0x5EED,
            sensor_trace: Vec::new().into(),
            isr: None,
            heap_bytes: 2_048,
        }
    }
}

/// A frame header as stored at the base of every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Return pc (or [`RET_SENTINEL`] for the bottom frame).
    pub ret_pc: u32,
    /// Caller's frame pointer.
    pub caller_fp: Addr,
    /// Caller's operand-stack pointer after the arguments were consumed.
    pub caller_sp: Addr,
}

#[derive(Debug, Clone, Copy)]
struct LoadedIsr {
    fidx: u16,
    period_us: u64,
    next_at: u64,
}

/// Everything about a device that is identical across a fleet: the
/// loaded (and decoded) program, the memory layout and cost model, the
/// scripted sensor trace, the ISR binding, and the heap reservation.
///
/// Built once per `(program, config)` pair with [`MachineImage::build`]
/// and shared by `Arc`: [`Machine::from_image`] instantiates a device
/// against it without re-loading the program or re-allocating any of the
/// immutable state, and [`Machine::reset`] recycles an existing device's
/// mutable block in place. One image plus one recycled machine is the
/// whole per-device cost of a million-device Monte Carlo sweep.
#[derive(Debug)]
pub struct MachineImage {
    loaded: LoadedProgram,
    layout: MemoryLayout,
    costs: Arc<CostModel>,
    sensor_trace: Arc<[i32]>,
    /// Resolved ISR binding: `(function index, period_us)`.
    isr: Option<(u16, u64)>,
    heap_bytes: u32,
}

impl MachineImage {
    /// Loads `program` and captures the immutable device description
    /// from `config`. The per-device `config.seed` is *not* part of the
    /// image — every instantiation supplies its own.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] under the same conditions as
    /// [`Machine::new`]: malformed program, globals exceeding FRAM, or a
    /// missing/arity-mismatched ISR function.
    pub fn build(program: Program, config: &MachineConfig) -> Result<Arc<MachineImage>> {
        let loaded = LoadedProgram::load(program)?;
        if loaded.program.globals_size > config.layout.fram.len() {
            return Err(VmError::Load("globals exceed FRAM".into()));
        }
        let isr = match &config.isr {
            None => None,
            Some((name, period_us)) => {
                let (fidx, f) = loaded
                    .program
                    .function(name)
                    .ok_or_else(|| VmError::Load(format!("ISR function `{name}` not found")))?;
                if f.n_args != 0 {
                    return Err(VmError::Load(format!(
                        "ISR `{name}` must take no arguments"
                    )));
                }
                Some((fidx, *period_us))
            }
        };
        Ok(Arc::new(MachineImage {
            loaded,
            layout: config.layout,
            costs: Arc::new(config.costs.clone()),
            sensor_trace: config.sensor_trace.clone(),
            isr,
            heap_bytes: config.heap_bytes,
        }))
    }

    /// The loaded program image.
    #[must_use]
    pub fn loaded(&self) -> &LoadedProgram {
        &self.loaded
    }

    /// The physical memory layout devices are built with.
    #[must_use]
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }
}

/// The complete simulated device.
///
/// The memory and register fields are public: runtime implementations in
/// `tics-core` and `tics-baselines` manipulate them exactly as the real
/// runtimes manipulate the MSP430's memory and registers.
pub struct Machine {
    /// Simulated memory (SRAM + FRAM) with cycle accounting.
    pub mem: Memory,
    /// Volatile register file.
    pub regs: Registers,
    /// Wire-level peripherals (UART, I2C sensor). Device-side state
    /// persists across power failures; MCU-side FIFOs do not.
    pub periph: PeripheralBus,
    /// Shared immutable half of the device (program, layout, costs,
    /// sensor script); everything below is the per-device mutable block
    /// that [`Machine::reset`] rewinds.
    image: Arc<MachineImage>,
    clock: Box<dyn Timekeeper>,
    data_base: Addr,
    halted: Option<i32>,
    stats: ExecStats,
    rng_state: u64,
    sensor_pos: usize,
    last_clock_sync: u64,
    in_isr: bool,
    isr_frame_fp: Addr,
    isr: Option<LoadedIsr>,
    period_deadline: u64,
    total_off_us: u64,
    trace: TraceSink,
    torn_reported: u64,
    /// Detail events batched since the last observable boundary. Fixed
    /// capacity: the buffer never reallocates; filling it forces a
    /// flush.
    pending_detail: Vec<TraceRecord>,
    detail_batching: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.regs.pc)
            .field("fp", &self.regs.fp)
            .field("sp", &self.regs.sp)
            .field("halted", &self.halted)
            .field("cycles", &self.mem.cycles())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine with a [`PerfectClock`]. Use
    /// [`Machine::with_clock`] to model volatile or remanence timekeeping.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] if the program is malformed, its globals
    /// do not fit in FRAM, or the configured ISR function does not exist.
    pub fn new(program: Program, config: MachineConfig) -> Result<Machine> {
        Machine::with_clock(program, config, Box::new(PerfectClock::new()))
    }

    /// Builds a machine with an explicit timekeeper.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::new`].
    pub fn with_clock(
        program: Program,
        config: MachineConfig,
        clock: Box<dyn Timekeeper>,
    ) -> Result<Machine> {
        let image = MachineImage::build(program, &config)?;
        Machine::from_image(image, config.seed, clock)
    }

    /// Instantiates a device against a shared [`MachineImage`] — the
    /// mass-production constructor. Only the mutable block is allocated;
    /// the program, layout, costs, and sensor script are borrowed from
    /// the image.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] if global initialization fails (the
    /// image's load-time checks make this unreachable in practice).
    pub fn from_image(
        image: Arc<MachineImage>,
        seed: u64,
        clock: Box<dyn Timekeeper>,
    ) -> Result<Machine> {
        let mem = Memory::with_shared_costs(image.layout, Arc::clone(&image.costs));
        let data_base = image.layout.fram.start;
        let isr = image.isr.map(|(fidx, period_us)| LoadedIsr {
            fidx,
            period_us,
            next_at: period_us,
        });
        let mut machine = Machine {
            mem,
            regs: Registers::new(),
            periph: PeripheralBus::new(seed),
            image,
            clock,
            data_base,
            halted: None,
            stats: ExecStats::default(),
            rng_state: seed | 1,
            sensor_pos: 0,
            last_clock_sync: 0,
            in_isr: false,
            isr_frame_fp: Addr(0),
            isr,
            period_deadline: u64::MAX,
            total_off_us: 0,
            trace: TraceSink::new(),
            torn_reported: 0,
            pending_detail: Vec::with_capacity(64),
            detail_batching: true,
        };
        machine.init_globals(true)?;
        Ok(machine)
    }

    /// Rewinds the device to the state [`Machine::from_image`] would
    /// build with `seed`, reusing every backing allocation (memory
    /// regions, dirty bitmaps, wire logs, stat streams, trace buffers).
    /// The fleet engine recycles one machine across thousands of
    /// devices; the reset differential test proves the recycled machine
    /// trace-identical to a fresh construction on both dispatch engines.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] if global initialization fails.
    pub fn reset(&mut self, seed: u64) -> Result<()> {
        self.mem.reset();
        self.regs.reset();
        self.periph.recycle(seed);
        self.clock.reset();
        self.halted = None;
        self.stats.reset();
        self.rng_state = seed | 1;
        self.sensor_pos = 0;
        self.last_clock_sync = 0;
        self.in_isr = false;
        self.isr_frame_fp = Addr(0);
        if let Some(isr) = &mut self.isr {
            isr.next_at = isr.period_us;
        }
        self.period_deadline = u64::MAX;
        self.total_off_us = 0;
        self.trace.reset();
        self.torn_reported = 0;
        self.pending_detail.clear();
        self.detail_batching = true;
        self.init_globals(true)
    }

    /// The shared immutable image this machine was instantiated from.
    #[must_use]
    pub fn image(&self) -> &Arc<MachineImage> {
        &self.image
    }

    // ---- accessors ----

    /// The loaded program image.
    #[must_use]
    pub fn loaded(&self) -> &LoadedProgram {
        &self.image.loaded
    }

    /// Base address of the data segment (globals).
    #[must_use]
    pub fn data_base(&self) -> Addr {
        self.data_base
    }

    /// Absolute address of a data-segment byte offset.
    #[must_use]
    pub fn global_addr(&self, offset: u32) -> Addr {
        self.data_base.offset(offset)
    }

    /// Splits the machine into the disjoint `(memory, registers)` pair
    /// the decoded burst loop mutates, so a [`tics_mcu::WordBurst`] over
    /// the memory can coexist with register updates.
    pub(crate) fn burst_parts(&mut self) -> (&mut Memory, &mut Registers) {
        (&mut self.mem, &mut self.regs)
    }

    /// Base of the persistent FRAM heap: first word is the allocator's
    /// bump pointer, allocations follow.
    #[must_use]
    pub fn heap_base(&self) -> Addr {
        let raw = self.data_base.raw() + self.image.loaded.program.globals_size;
        Addr((raw + 7) & !7)
    }

    /// First free FRAM address after the data segment and heap — where a
    /// runtime lays out its own persistent structures.
    #[must_use]
    pub fn runtime_area_base(&self) -> Addr {
        let raw = self.heap_base().raw() + self.image.heap_bytes;
        Addr((raw + 7) & !7)
    }

    /// Serves one `alloc(bytes)` call from the persistent heap. The bump
    /// pointer update is routed through the runtime's `logged_store`, so
    /// consistency-managing runtimes roll it back with everything else —
    /// a replayed execution re-allocates the *same* addresses. Returns 0
    /// when the heap is exhausted (C's out-of-memory convention).
    ///
    /// # Errors
    ///
    /// Propagates memory and logging errors.
    pub fn heap_alloc(&mut self, rt: &mut dyn IntermittentRuntime, bytes: u32) -> Result<u32> {
        if self.image.heap_bytes < 8 {
            return Ok(0);
        }
        let base = self.heap_base();
        let bump = self.mem.read_u32(base)?;
        let aligned = bytes.max(1).div_ceil(4) * 4;
        if 4 + bump + aligned > self.image.heap_bytes {
            return Ok(0);
        }
        rt.logged_store(self, base, 4)?;
        self.mem.write_u32(base, bump + aligned)?;
        Ok(base.raw() + 4 + bump)
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Mutable statistics. Event-backed fields must be updated through
    /// [`Machine::emit`] so the trace and the counters stay in lockstep;
    /// this accessor remains for the executor's hot `instructions`
    /// counter and for tests.
    pub fn stats_mut(&mut self) -> &mut ExecStats {
        &mut self.stats
    }

    /// The structured event trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable trace access (profilers enable detailed recording with
    /// [`TraceSink::set_detailed`]).
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Emits one structured event, stamped with the true wall-clock µs
    /// and the cycle position. The event is folded into [`ExecStats`]
    /// and appended to the trace — the single update path shared by the
    /// VM, the runtimes, and the executor.
    ///
    /// High-frequency *detail* events ([`TraceEvent::is_detail`]) are
    /// batched: the stamped record is parked in a fixed buffer and
    /// folded in bulk at the next observable boundary — any non-detail
    /// event (checkpoint commits, I/O, power cuts are all non-detail),
    /// a full buffer, or an explicit [`Machine::flush_trace`]. The
    /// timestamp and cycle position are captured *here*, so the drained
    /// stream is byte-identical to unbatched emission.
    pub fn emit(&mut self, event: TraceEvent) {
        let at_us = self.true_now_us();
        let cycle = self.mem.cycles();
        let rec = TraceRecord { at_us, cycle, event };
        if self.detail_batching && event.is_detail() {
            if self.pending_detail.len() == self.pending_detail.capacity() {
                self.flush_trace();
            }
            self.pending_detail.push(rec);
            return;
        }
        // Batched detail events precede this one in emission order.
        self.flush_trace();
        self.stats.fold_event(&rec.event, rec.at_us);
        self.trace.push(rec);
    }

    /// Drains the batched detail events into the stats and the trace in
    /// emission order. The executor calls this at every run-loop exit;
    /// it is implicit before every non-detail (observable) event.
    pub fn flush_trace(&mut self) {
        for i in 0..self.pending_detail.len() {
            let rec = self.pending_detail[i];
            self.stats.fold_event(&rec.event, rec.at_us);
            self.trace.push(rec);
        }
        self.pending_detail.clear();
    }

    /// Enables or disables batched detail emission (on by default).
    /// With batching off, every event folds and records immediately —
    /// the differential trace oracle runs both ways to prove the
    /// streams identical.
    pub fn set_detail_batching(&mut self, on: bool) {
        self.flush_trace();
        self.detail_batching = on;
    }

    /// Opens cycle-attribution span `kind`: every cycle charged until
    /// the returned guard drops is attributed to `kind`. The guard
    /// derefs to the machine, so runtime code does
    /// `let mut g = m.span(SpanKind::Checkpoint); let m = &mut *g;` and
    /// proceeds unchanged.
    pub fn span(&mut self, kind: SpanKind) -> SpanGuard<'_> {
        let prev = self.mem.set_span(kind);
        self.emit(TraceEvent::SpanEnter { kind });
        SpanGuard {
            machine: self,
            prev,
            kind,
        }
    }

    /// Exit code if `main` returned.
    #[must_use]
    pub fn exit_code(&self) -> Option<i32> {
        self.halted
    }

    /// Whether the program has finished.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted.is_some()
    }

    /// Marks the machine halted with `code` (used by `Ret` to the
    /// sentinel and by `Halt`).
    pub fn set_halted(&mut self, code: i32) {
        self.halted = Some(code);
    }

    /// Total cycles executed (1 cycle = 1 µs).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.mem.cycles()
    }

    /// Whether a periodic ISR is configured on this machine.
    #[must_use]
    pub fn has_isr(&self) -> bool {
        self.isr.is_some()
    }

    /// Whether the machine is currently servicing an interrupt.
    #[must_use]
    pub fn in_isr(&self) -> bool {
        self.in_isr
    }

    /// Cycle count at which the current on-period ends (power dies).
    /// Runtimes consult this to model atomic operations that cannot
    /// complete on the remaining energy: a two-phase commit whose cost
    /// crosses the deadline must not flip its valid flag.
    #[must_use]
    pub fn period_deadline(&self) -> u64 {
        self.period_deadline
    }

    /// Sets the end-of-period deadline (called by the executor at each
    /// period start). Also arms the memory's torn-write boundary so a
    /// multi-word store straddling the deadline commits only a prefix —
    /// power death is not aligned to store boundaries.
    pub fn set_period_deadline(&mut self, deadline: u64) {
        self.period_deadline = deadline;
        self.mem.set_power_cut(Some(deadline));
    }

    /// Charges `cost` cycles for an atomic runtime operation and reports
    /// whether it completed before the power deadline. When this returns
    /// `false`, the caller must leave its commit flag untouched — the
    /// device dies mid-operation.
    pub fn charge_atomic(&mut self, cost: u64) -> bool {
        let completes = self.mem.cycles().saturating_add(cost) <= self.period_deadline;
        self.mem.add_cycles(cost);
        completes
    }

    // ---- time ----

    /// Current time from the device's timekeeper, synchronized with the
    /// cycle counter.
    pub fn now(&mut self) -> TimeMicros {
        let cycles = self.mem.cycles();
        let delta = cycles - self.last_clock_sync;
        if delta > 0 {
            self.clock.advance_on(delta);
            self.last_clock_sync = cycles;
        }
        self.clock.now()
    }

    /// Whether the timekeeper trusts its own reading.
    pub fn time_known(&mut self) -> bool {
        let _ = self.now();
        self.clock.is_time_known()
    }

    /// Ground-truth wall-clock time in µs (on-time cycles plus all
    /// outage durations). This is the *simulation oracle* — the device
    /// itself only sees its (possibly volatile) timekeeper via
    /// [`Machine::now`]. Experiments use it the way the paper uses an
    /// external logic analyzer.
    #[must_use]
    pub fn true_now_us(&self) -> u64 {
        self.mem.cycles() + self.total_off_us
    }

    // ---- operand stack ----

    /// Pushes a value onto the operand stack of the current frame.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Trap`] if the frame's operand area overflows
    /// (indicates a codegen bug) or [`VmError::Memory`] on bad addresses.
    pub fn push(&mut self, v: i32) -> Result<()> {
        let f = self.image.loaded.function_at(self.regs.pc);
        let frame_end = self.regs.fp.offset(f.frame_size());
        if self.regs.sp.offset(4) > frame_end {
            return Err(VmError::Trap(format!(
                "operand stack overflow in `{}`",
                f.name
            )));
        }
        self.mem.write_i32(self.regs.sp, v)?;
        self.regs.sp = self.regs.sp.offset(4);
        Ok(())
    }

    /// Pops a value from the operand stack.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Trap`] on underflow.
    pub fn pop(&mut self) -> Result<i32> {
        let f = self.image.loaded.function_at(self.regs.pc);
        let operand_base = self
            .regs
            .fp
            .offset(FRAME_HEADER_BYTES + f.arg_bytes() + u32::from(f.locals_bytes));
        if self.regs.sp <= operand_base {
            return Err(VmError::Trap(format!(
                "operand stack underflow in `{}`",
                f.name
            )));
        }
        self.regs.sp = Addr(self.regs.sp.raw() - 4);
        Ok(self.mem.read_i32(self.regs.sp)?)
    }

    /// Reads the top of the operand stack without popping.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] on bad addresses.
    pub fn peek_top(&self) -> Result<i32> {
        Ok(self.mem.peek_i32(Addr(self.regs.sp.raw() - 4))?)
    }

    // ---- frames ----

    /// Address of the first body byte (args) of the frame at `fp`.
    #[must_use]
    pub fn frame_body(fp: Addr) -> Addr {
        fp.offset(FRAME_HEADER_BYTES)
    }

    /// Reads the frame header at `fp`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] on bad addresses.
    pub fn read_header(&mut self, fp: Addr) -> Result<FrameHeader> {
        Ok(FrameHeader {
            ret_pc: self.mem.read_word(fp)?,
            caller_fp: Addr(self.mem.read_word(fp.offset(4))?),
            caller_sp: Addr(self.mem.read_word(fp.offset(8))?),
        })
    }

    /// Writes a frame header at `fp`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] on bad addresses.
    pub fn write_header(&mut self, fp: Addr, h: FrameHeader) -> Result<()> {
        self.mem.write_word(fp, h.ret_pc)?;
        self.mem.write_word(fp.offset(4), h.caller_fp.raw())?;
        self.mem.write_word(fp.offset(8), h.caller_sp.raw())?;
        Ok(())
    }

    /// Calls function `fidx`: arguments must already be on the operand
    /// stack. `ret_pc` is where `Ret` resumes ([`RET_SENTINEL`] halts).
    ///
    /// # Errors
    ///
    /// Propagates frame-allocation failures (e.g. stack overflow).
    pub fn call_function(
        &mut self,
        rt: &mut dyn IntermittentRuntime,
        fidx: u16,
        ret_pc: u32,
    ) -> Result<()> {
        let f = &self.image.loaded.program.functions[fidx as usize];
        let frame_size = f.frame_size();
        let arg_bytes = f.arg_bytes();
        let locals = u32::from(f.locals_bytes);
        let entry = self.image.loaded.entry_of(fidx);
        let args_src = Addr(self.regs.sp.raw().wrapping_sub(arg_bytes));
        let caller_sp = args_src;
        let caller_fp = self.regs.fp;

        let new_fp = rt.alloc_frame(self, fidx, frame_size, arg_bytes)?;
        if arg_bytes > 0 {
            self.mem
                .copy(args_src, Machine::frame_body(new_fp), arg_bytes)?;
        }
        self.write_header(
            new_fp,
            FrameHeader {
                ret_pc,
                caller_fp,
                caller_sp,
            },
        )?;
        self.regs.fp = new_fp;
        self.regs.sp = Machine::frame_body(new_fp).offset(arg_bytes + locals);
        self.regs.pc = entry;
        Ok(())
    }

    /// Executes a `Ret`: pops the return value, unwinds the frame, and
    /// either resumes the caller, exits an ISR, or halts the machine.
    ///
    /// # Errors
    ///
    /// Propagates memory and runtime failures.
    pub fn do_return(&mut self, rt: &mut dyn IntermittentRuntime) -> Result<()> {
        let value = self.pop()?;
        let fp = self.regs.fp;
        let hdr = self.read_header(fp)?;
        rt.free_frame(self, fp)?;
        if self.in_isr && fp == self.isr_frame_fp {
            // Return-from-interrupt: discard the value, no push; the
            // runtime may take its implicit post-ISR checkpoint.
            self.in_isr = false;
            self.mem.set_span(SpanKind::App);
            self.emit(TraceEvent::IsrExit);
            self.regs.fp = hdr.caller_fp;
            self.regs.sp = hdr.caller_sp;
            self.regs.pc = hdr.ret_pc;
            rt.on_isr_exit(self)?;
            return Ok(());
        }
        if hdr.ret_pc == RET_SENTINEL {
            self.set_halted(value);
            return Ok(());
        }
        self.regs.fp = hdr.caller_fp;
        self.regs.sp = hdr.caller_sp;
        self.regs.pc = hdr.ret_pc;
        self.push(value)?;
        Ok(())
    }

    /// Starts (or restarts) the program at `main` with a fresh bottom
    /// frame.
    ///
    /// # Errors
    ///
    /// Propagates frame-allocation failures.
    pub fn start_main(&mut self, rt: &mut dyn IntermittentRuntime) -> Result<()> {
        self.in_isr = false;
        self.regs.sp = Addr(0);
        self.regs.fp = Addr(0);
        let entry_fn = self.image.loaded.program.entry;
        self.call_function(rt, entry_fn, RET_SENTINEL)
    }

    /// Fires the configured ISR if its period has elapsed.
    ///
    /// # Errors
    ///
    /// Propagates frame-allocation failures.
    pub fn maybe_fire_isr(&mut self, rt: &mut dyn IntermittentRuntime) -> Result<()> {
        let Some(isr) = self.isr else { return Ok(()) };
        if self.in_isr || self.is_halted() {
            return Ok(());
        }
        let now = self.now().as_micros();
        if now < isr.next_at {
            return Ok(());
        }
        if let Some(i) = &mut self.isr {
            while i.next_at <= now {
                i.next_at += i.period_us;
            }
        }
        self.emit(TraceEvent::IsrEnter);
        rt.on_isr_enter(self)?;
        self.in_isr = true;
        let ret_pc = self.regs.pc;
        self.call_function(rt, isr.fidx, ret_pc)?;
        self.isr_frame_fp = self.regs.fp;
        // The ISR body executes in the main loop, so the span is set
        // non-lexically here and restored at return-from-interrupt.
        self.mem.set_span(SpanKind::Isr);
        Ok(())
    }

    // ---- globals & boot ----

    /// (Re)initializes globals: `.data` gets its initializer image,
    /// `.bss` is zeroed. When `include_nv` is false, `nv`-qualified
    /// variables keep their values (the crt0 of an FRAM device preserves
    /// the persistent section across reboots).
    ///
    /// The clear is issued word-by-word, matching crt0's `.bss`/`.data`
    /// loops: each store fits the memory controller's atomic write
    /// buffer, so startup initialization cannot be silently bit-flipped
    /// by a brown-out the way a multi-word burst store can.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Memory`] on bad addresses.
    pub fn init_globals(&mut self, include_nv: bool) -> Result<()> {
        let globals: Vec<_> = self
            .image
            .loaded
            .program
            .globals
            .iter()
            .map(|g| (g.offset, g.size, g.nv, g.init.clone()))
            .collect();
        for (offset, size, nv, init) in globals {
            if nv && !include_nv {
                continue;
            }
            let base = self.global_addr(offset);
            let word = tics_mcu::ATOMIC_STORE_BYTES as u32;
            let mut cleared = 0;
            while cleared < size {
                let n = (size - cleared).min(word);
                self.mem.fill(base.offset(cleared), n, 0)?;
                cleared += n;
            }
            for (i, v) in init.iter().enumerate() {
                self.mem.write_i32(base.offset(4 * i as u32), *v)?;
            }
        }
        Ok(())
    }

    /// Injects a power failure followed by `off_us` of darkness: volatile
    /// memory and registers are lost, the timekeeper experiences the
    /// outage, and the machine is ready for the runtime's `on_boot`.
    pub fn power_failure(&mut self, off_us: u64) {
        let _ = self.now(); // sync on-time into the clock first
        let torn = self.mem.stats().torn_writes;
        if torn > self.torn_reported {
            self.emit(TraceEvent::TornWrite {
                count: torn - self.torn_reported,
            });
            self.torn_reported = torn;
        }
        self.emit(TraceEvent::PowerFailure { off_us });
        self.mem.power_fail();
        self.periph.power_fail();
        // Whatever span was open died with the power; the next boot
        // starts attributing to the application again.
        self.mem.set_span(SpanKind::App);
        self.regs.reset();
        self.clock.power_cycle(off_us);
        self.total_off_us += off_us;
        self.in_isr = false;
    }

    // ---- syscall support ----

    /// Records a completed radio transmission (called by the VM for
    /// immediate sends and by virtualizing runtimes when they flush
    /// their committed I/O buffers).
    pub fn record_send(&mut self, value: i32) {
        self.emit(TraceEvent::Send { value });
    }

    /// Next deterministic pseudo-random value in `[0, 65536)`.
    pub fn rand16(&mut self) -> i32 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) & 0xFFFF) as i32
    }

    /// Next sensor value: scripted trace first, then synthetic.
    pub fn next_sensor(&mut self) -> i32 {
        let v = if self.sensor_pos < self.image.sensor_trace.len() {
            let v = self.image.sensor_trace[self.sensor_pos];
            self.sensor_pos += 1;
            v
        } else {
            self.rand16() & 0x3FF
        };
        self.emit(TraceEvent::Sample { value: v });
        v
    }
}

/// RAII cycle-attribution span: returned by [`Machine::span`], derefs to
/// the machine, and restores the previously open span on drop (emitting
/// the matching [`TraceEvent::SpanExit`]).
pub struct SpanGuard<'a> {
    machine: &'a mut Machine,
    prev: SpanKind,
    kind: SpanKind,
}

impl Deref for SpanGuard<'_> {
    type Target = Machine;

    fn deref(&self) -> &Machine {
        self.machine
    }
}

impl DerefMut for SpanGuard<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        self.machine
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.machine.emit(TraceEvent::SpanExit { kind: self.kind });
        self.machine.mem.set_span(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::BareRuntime;
    use tics_minic::{compile, opt::OptLevel};

    fn machine(src: &str) -> Machine {
        let prog = compile(src, OptLevel::O0).unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    #[test]
    fn globals_are_initialized_at_load() {
        let m = machine("int a = 7; int b[3] = {1,2}; int main() { return 0; }");
        assert_eq!(m.mem.peek_i32(m.global_addr(0)).unwrap(), 7);
        assert_eq!(m.mem.peek_i32(m.global_addr(4)).unwrap(), 1);
        assert_eq!(m.mem.peek_i32(m.global_addr(8)).unwrap(), 2);
        assert_eq!(m.mem.peek_i32(m.global_addr(12)).unwrap(), 0);
    }

    #[test]
    fn nv_globals_survive_reinit() {
        let mut m = machine("nv int keep = 1; int lose = 2; int main() { return 0; }");
        m.mem.poke_i32(m.global_addr(0), 99).unwrap();
        m.mem.poke_i32(m.global_addr(4), 98).unwrap();
        m.init_globals(false).unwrap();
        assert_eq!(m.mem.peek_i32(m.global_addr(0)).unwrap(), 99);
        assert_eq!(m.mem.peek_i32(m.global_addr(4)).unwrap(), 2);
    }

    #[test]
    fn start_main_builds_bottom_frame() {
        let mut m = machine("int main() { int x = 1; return x; }");
        let mut rt = BareRuntime::new();
        m.start_main(&mut rt).unwrap();
        assert_eq!(m.regs.pc, m.loaded().entry_of(m.loaded().program.entry));
        let hdr = m.read_header(m.regs.fp).unwrap();
        assert_eq!(hdr.ret_pc, RET_SENTINEL);
    }

    #[test]
    fn push_pop_roundtrip_in_memory() {
        // Three-arg call gives main an operand area of ≥ 3 words.
        let mut m =
            machine("int f(int a, int b, int c) { return a; } int main() { return f(1, 2, 3); }");
        let mut rt = BareRuntime::new();
        m.start_main(&mut rt).unwrap();
        m.push(123).unwrap();
        m.push(-5).unwrap();
        // Values live in simulated memory, not host state.
        assert_eq!(m.peek_top().unwrap(), -5);
        assert_eq!(m.pop().unwrap(), -5);
        assert_eq!(m.pop().unwrap(), 123);
        assert!(m.pop().is_err(), "underflow must trap");
    }

    #[test]
    fn power_failure_clears_volatile_state() {
        let mut m = machine("int main() { return 0; }");
        let mut rt = BareRuntime::new();
        m.start_main(&mut rt).unwrap();
        m.push(42).unwrap();
        m.power_failure(1_000);
        assert_eq!(m.regs.pc, 0);
        assert_eq!(m.regs.sp, Addr(0));
        assert_eq!(m.stats().power_failures, 1);
    }

    #[test]
    fn clock_follows_cycles_and_outages() {
        let mut m = machine("int main() { return 0; }");
        m.mem.add_cycles(500);
        assert_eq!(m.now().as_micros(), 500);
        m.power_failure(1_500);
        assert_eq!(m.now().as_micros(), 2_000);
    }

    #[test]
    fn sensor_trace_is_consumed_then_synthetic() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        let mut m = Machine::new(
            prog,
            MachineConfig {
                sensor_trace: vec![10, 20].into(),
                ..MachineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(m.next_sensor(), 10);
        assert_eq!(m.next_sensor(), 20);
        let v = m.next_sensor();
        assert!((0..1024).contains(&v));
        assert_eq!(m.stats().samples, 3);
    }

    #[test]
    fn rand16_is_deterministic_per_seed() {
        let mk = || machine("int main() { return 0; }");
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..10 {
            assert_eq!(a.rand16(), b.rand16());
        }
    }

    #[test]
    fn isr_requires_existing_function() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        let r = Machine::new(
            prog,
            MachineConfig {
                isr: Some(("nope".into(), 100)),
                ..MachineConfig::default()
            },
        );
        assert!(matches!(r, Err(VmError::Load(_))));
    }

    /// Detail events park in the pending buffer until the next
    /// non-detail (observable-boundary) emit, which drains them first so
    /// the recorded stream is identical to per-event emission.
    #[test]
    fn batched_details_flush_at_observable_boundary() {
        let events = [
            TraceEvent::UndoAppend { bytes: 4 },
            TraceEvent::StackGrow,
            TraceEvent::CheckpointCommit {
                cause: tics_trace::CkptCause::Site,
                bytes: 64,
            },
            TraceEvent::StackShrink,
            TraceEvent::Rollback { bytes: 4 },
        ];

        let mut batched = machine("int main() { return 0; }");
        batched.trace_mut().set_detailed(true);
        for (i, ev) in events.iter().enumerate() {
            batched.mem.add_cycles(10); // distinct timestamps per event
            batched.emit(*ev);
            if i == 1 {
                assert_eq!(
                    batched.trace().len(),
                    0,
                    "detail events must not reach the sink before a boundary"
                );
            }
            if i == 2 {
                assert_eq!(
                    batched.trace().len(),
                    3,
                    "a boundary event must drain the batch ahead of itself"
                );
            }
        }
        batched.flush_trace();

        let mut unbatched = machine("int main() { return 0; }");
        unbatched.trace_mut().set_detailed(true);
        unbatched.set_detail_batching(false);
        for ev in &events {
            unbatched.mem.add_cycles(10);
            unbatched.emit(*ev);
        }

        assert_eq!(batched.trace().records(), unbatched.trace().records());
        assert_eq!(
            batched.stats().checkpoint_bytes,
            unbatched.stats().checkpoint_bytes
        );
    }
}
