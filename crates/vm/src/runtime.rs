//! The [`IntermittentRuntime`] trait and the bare (plain C) runtime.

use tics_mcu::Addr;
use tics_minic::isa::{CkptSite, VarId};
use tics_minic::program::{Instrumentation, Program};

use crate::caps::{PortingEffort, RuntimeCapabilities};
use crate::error::VmError;
use crate::machine::Machine;
use crate::Result;

/// What the machine should do after a (re)boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeAction {
    /// Start from `main` with a fresh stack. `reinit_globals` re-runs
    /// crt0-style initialization of non-`nv` globals.
    Restart {
        /// Whether to re-initialize non-`nv` globals.
        reinit_globals: bool,
    },
    /// The runtime has restored registers (and any needed memory); resume
    /// where they point.
    Restored,
}

/// Why a checkpoint was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// An inserted or manual checkpoint site in the code.
    Site(CkptSite),
    /// The runtime's periodic timer fired.
    Timer,
    /// The supply's low-voltage interrupt fired.
    Voltage,
}

/// The policy layer between the VM and the MCU: frame placement, store
/// interception, checkpointing, recovery, and time semantics.
///
/// Implementations (the TICS runtime in `tics-core`, the baselines in
/// `tics-baselines`, [`BareRuntime`] here) hold *their persistent state
/// inside simulated FRAM* — a runtime that cached state in host memory
/// would silently survive power failures it should not survive.
pub trait IntermittentRuntime {
    /// Short display name ("TICS", "MementOS", ...).
    fn name(&self) -> &'static str;

    /// The Table 5 capability row for this runtime.
    fn capabilities(&self) -> RuntimeCapabilities;

    /// Validates that the program image carries the instrumentation this
    /// runtime expects. Called once before execution.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::IncompatibleInstrumentation`] on mismatch.
    fn check_program(&self, program: &Program) -> Result<()>;

    /// Returns the runtime to its as-constructed state so it can drive a
    /// recycled machine ([`Machine::reset`]) as if freshly built, keeping
    /// scratch allocations where possible. Runtimes whose entire state is
    /// host-side caches of FRAM structures rebuilt on boot use the
    /// default no-op only if they hold *no* such caches; everything
    /// stateful must override. The reset differential test runs every
    /// runtime through recycle-then-rerun to prove equivalence.
    fn recycle(&mut self) {}

    /// Called at every boot (first boot and after every power failure).
    ///
    /// # Errors
    ///
    /// Propagates memory errors during recovery.
    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction>;

    /// Places a frame of `frame_size` bytes for a call to `fidx` and
    /// returns its base address. `arg_bytes` of arguments will be copied
    /// into the frame body by the VM.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StackOverflow`] when the stack region is
    /// exhausted.
    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        fidx: u16,
        frame_size: u32,
        arg_bytes: u32,
    ) -> Result<Addr>;

    /// The frame at `fp` is being freed (function return).
    ///
    /// # Errors
    ///
    /// Propagates memory errors (e.g. from an enforced checkpoint).
    fn free_frame(&mut self, m: &mut Machine, fp: Addr) -> Result<()>;

    /// An instrumented store is about to write `len` bytes at `addr`
    /// (the old value is still in memory). TICS classifies the address
    /// and undo-logs it; baselines ignore it.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from logging.
    fn logged_store(&mut self, m: &mut Machine, addr: Addr, len: u32) -> Result<()>;

    /// A checkpoint site was reached (or the executor's timer/voltage
    /// event fired). The runtime decides whether to actually commit one.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from committing.
    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()>;

    /// Called after every instruction; cheap bookkeeping (timer-driven
    /// checkpoints, expiration timers).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn on_instruction(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Ok(())
    }

    /// Whether [`IntermittentRuntime::on_instruction`] does real work for
    /// this runtime. The decoded dispatcher only enters its fused fast
    /// loop when this returns `false`; the default is conservatively
    /// `true` so an overriding runtime that forgets to change it stays
    /// correct (just slower). Must be constant for the lifetime of a run.
    fn instruction_hook(&self) -> bool {
        true
    }

    /// A power failure just wiped volatile state; drop any volatile
    /// mirrors the runtime keeps outside simulated memory.
    fn on_power_failure(&mut self, m: &mut Machine) {
        let _ = m;
    }

    /// Entering an interrupt service routine.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn on_isr_enter(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Ok(())
    }

    /// Returned from an interrupt service routine.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn on_isr_exit(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Ok(())
    }

    // ---- time semantics (TICS annotations) ----

    /// `@=` executed: record "now" as the timestamp of annotated `var`.
    ///
    /// # Errors
    ///
    /// Default: time annotations need a time-aware runtime.
    fn timestamp_var(&mut self, m: &mut Machine, var: VarId) -> Result<()> {
        let _ = (m, var);
        Err(VmError::Trap(format!(
            "{}: time annotations require a time-aware runtime",
            self.name()
        )))
    }

    /// `@expires` guard: is `var` still fresh?
    ///
    /// # Errors
    ///
    /// Default: unsupported (see [`IntermittentRuntime::timestamp_var`]).
    fn expires_check(&mut self, m: &mut Machine, var: VarId) -> Result<bool> {
        let _ = (m, var);
        Err(VmError::Trap(format!(
            "{}: time annotations require a time-aware runtime",
            self.name()
        )))
    }

    /// `@timely(deadline_ms)`: is now strictly before the deadline?
    ///
    /// # Errors
    ///
    /// Default: unsupported.
    fn timely_check(&mut self, m: &mut Machine, deadline_ms: i32) -> Result<bool> {
        let _ = (m, deadline_ms);
        Err(VmError::Trap(format!(
            "{}: time annotations require a time-aware runtime",
            self.name()
        )))
    }

    /// Automatic checkpoints disabled (atomic region entered).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn atomic_begin(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Ok(())
    }

    /// Automatic checkpoints re-enabled.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    fn atomic_end(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Ok(())
    }

    /// Enter an `@expires`/`catch` block for `var`; `catch_pc` is the
    /// (flattened) handler address the runtime jumps to on expiration.
    ///
    /// # Errors
    ///
    /// Default: unsupported.
    fn expires_block_begin(&mut self, m: &mut Machine, var: VarId, catch_pc: u32) -> Result<()> {
        let _ = (m, var, catch_pc);
        Err(VmError::Trap(format!(
            "{}: time annotations require a time-aware runtime",
            self.name()
        )))
    }

    /// Leave an `@expires`/`catch` block normally.
    ///
    /// # Errors
    ///
    /// Default: unsupported.
    fn expires_block_end(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        Err(VmError::Trap(format!(
            "{}: time annotations require a time-aware runtime",
            self.name()
        )))
    }

    /// The runtime's transactional peripheral driver, if it hardens wire
    /// I/O with the FRAM journal ([`crate::driver::TxDriver`]). The
    /// executor uses this to reconcile in-flight transactions at boot, to
    /// route `tx_begin`/`tx_commit`, and to suppress checkpoints while a
    /// transaction is open. The default (`None`) is the un-hardened
    /// behavior: `tx_begin` always proceeds with attempt 0 and nothing is
    /// journaled — exactly what legacy code does today.
    fn tx_driver(&mut self) -> Option<&mut crate::driver::TxDriver> {
        None
    }

    /// A `send(value)` is about to transmit. Return `true` if the
    /// runtime *virtualizes* the I/O — buffering it until the enclosing
    /// state is committed, so a rollback cannot leave a transmission the
    /// program later un-executes (the paper's §7 "virtualizing the I/O
    /// interface across power failures"). Returning `false` (the
    /// default) lets the radio fire immediately.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from buffering.
    fn io_send(&mut self, m: &mut Machine, value: i32) -> Result<bool> {
        let _ = (m, value);
        Ok(false)
    }
}

/// The "plain C" runtime: a continuously-powered program's view of the
/// world. Frames live in volatile SRAM; there are no checkpoints; every
/// reboot restarts `main` and re-initializes non-`nv` globals.
///
/// Running legacy code under [`BareRuntime`] on intermittent power
/// produces exactly the paper's Table 1 failure mode: `nv` state mutated
/// before the failure survives, everything else restarts — inconsistent
/// mixes included.
#[derive(Debug, Clone, Default)]
pub struct BareRuntime {
    frames_high_water: u32,
}

impl BareRuntime {
    /// Creates a bare runtime.
    #[must_use]
    pub fn new() -> BareRuntime {
        BareRuntime::default()
    }
}

impl IntermittentRuntime for BareRuntime {
    fn name(&self) -> &'static str {
        "plain-C"
    }

    fn instruction_hook(&self) -> bool {
        false
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: true,
            recursion_support: true,
            scalable: true,
            timely_execution: false,
            // Unprotected legacy code: nv state survives a reboot while
            // volatile state restarts — the one row Table 5 does not
            // claim consistency for.
            memory_consistency: false,
            porting_effort: PortingEffort::None,
        }
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation == Instrumentation::None {
            Ok(())
        } else {
            Err(VmError::IncompatibleInstrumentation {
                expected: "none".into(),
                found: format!("{:?}", program.instrumentation),
            })
        }
    }

    fn on_boot(&mut self, _m: &mut Machine) -> Result<ResumeAction> {
        Ok(ResumeAction::Restart {
            reinit_globals: true,
        })
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        _fidx: u16,
        frame_size: u32,
        _arg_bytes: u32,
    ) -> Result<Addr> {
        let sram = m.mem.layout().sram;
        let base = if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            sram.start
        } else {
            m.regs.sp
        };
        if !sram.contains_range(base, frame_size) {
            return Err(VmError::StackOverflow {
                detail: format!("SRAM stack exhausted allocating {frame_size} bytes"),
            });
        }
        self.frames_high_water = self
            .frames_high_water
            .max(base.raw() + frame_size - sram.start.raw());
        Ok(base)
    }

    fn free_frame(&mut self, _m: &mut Machine, _fp: Addr) -> Result<()> {
        Ok(())
    }

    fn logged_store(&mut self, _m: &mut Machine, _addr: Addr, _len: u32) -> Result<()> {
        Ok(())
    }

    fn checkpoint(&mut self, _m: &mut Machine, _kind: CheckpointKind) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_minic::{compile, opt::OptLevel, passes};

    #[test]
    fn bare_rejects_instrumented_programs() {
        let mut prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let rt = BareRuntime::new();
        assert!(matches!(
            rt.check_program(&prog),
            Err(VmError::IncompatibleInstrumentation { .. })
        ));
    }

    #[test]
    fn bare_accepts_plain_programs() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        assert!(BareRuntime::new().check_program(&prog).is_ok());
    }
}
