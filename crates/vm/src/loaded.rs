//! Program loading: flattening per-function code into one image.

use std::sync::Arc;

use tics_minic::isa::Instr;
use tics_minic::program::{Function, Program};

use crate::decoded::DecodedProgram;
use crate::error::VmError;

/// A sentinel return address marking the bottom frame: returning to it
/// halts the machine with the returned value as exit code.
pub const RET_SENTINEL: u32 = u32::MAX;

/// A [`Program`] flattened for execution: one linear code vector with
/// per-function entry points; intra-function jump targets rebased to
/// global instruction indices.
#[derive(Debug, Clone)]
pub struct LoadedProgram {
    /// The source image (sizes, globals, annotations).
    pub program: Program,
    /// Flattened code.
    pub code: Vec<Instr>,
    /// Entry pc of each function.
    pub entries: Vec<u32>,
    /// Function index owning each pc (same length as `code`).
    pub owner: Vec<u16>,
    /// The decoded fast-dispatch image, built once here and shared (the
    /// `Arc` makes cloning a loaded program — and thus running many
    /// machines off one image — free of re-decoding).
    pub decoded: Arc<DecodedProgram>,
}

impl LoadedProgram {
    /// Flattens and validates a program.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] if a call or jump target is out of
    /// range, or the entry function is missing.
    pub fn load(program: Program) -> Result<LoadedProgram, VmError> {
        if program.functions.is_empty() {
            return Err(VmError::Load("program has no functions".into()));
        }
        if program.entry as usize >= program.functions.len() {
            return Err(VmError::Load("entry index out of range".into()));
        }
        let mut code = Vec::new();
        let mut entries = Vec::with_capacity(program.functions.len());
        let mut owner = Vec::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let base = code.len() as u32;
            entries.push(base);
            for instr in &f.code {
                let mut instr = *instr;
                if let Some(t) = instr.jump_target() {
                    if t as usize > f.code.len() {
                        return Err(VmError::Load(format!(
                            "function `{}`: jump target {t} out of range",
                            f.name
                        )));
                    }
                    instr.set_jump_target(base + t);
                } else if let Instr::ExpiresBlockBegin(v, t) = instr {
                    if t as usize > f.code.len() {
                        return Err(VmError::Load(format!(
                            "function `{}`: catch target {t} out of range",
                            f.name
                        )));
                    }
                    instr = Instr::ExpiresBlockBegin(v, base + t);
                } else if let Instr::Call(target) = instr {
                    if target as usize >= program.functions.len() {
                        return Err(VmError::Load(format!(
                            "function `{}`: call target f{target} out of range",
                            f.name
                        )));
                    }
                }
                code.push(instr);
                owner.push(fi as u16);
            }
            // Guarantee the function cannot run off its end even if the
            // compiler missed a return (defense in depth).
            code.push(Instr::Halt);
            owner.push(fi as u16);
        }
        let decoded = Arc::new(DecodedProgram::decode(&program, &code, &entries, &owner));
        Ok(LoadedProgram {
            program,
            code,
            entries,
            owner,
            decoded,
        })
    }

    /// The function metadata owning `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn function_at(&self, pc: u32) -> &Function {
        &self.program.functions[self.owner[pc as usize] as usize]
    }

    /// Entry pc of function `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn entry_of(&self, idx: u16) -> u32 {
        self.entries[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_minic::{compile, opt::OptLevel};

    #[test]
    fn flattening_rebases_targets() {
        let prog = compile(
            "int f() { int i = 0; while (i < 3) { i++; } return i; }
             int main() { return f(); }",
            OptLevel::O0,
        )
        .unwrap();
        let loaded = LoadedProgram::load(prog).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert!(loaded.entries[1] > 0);
        // All jump targets resolve inside the owning function's range.
        for (pc, instr) in loaded.code.iter().enumerate() {
            if let Some(t) = instr.jump_target() {
                assert_eq!(
                    loaded.owner[t as usize], loaded.owner[pc],
                    "target escaped its function"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_call_target() {
        let mut prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        prog.functions[0].code.insert(0, Instr::Call(9));
        assert!(matches!(LoadedProgram::load(prog), Err(VmError::Load(_))));
    }

    #[test]
    fn function_at_resolves_owner() {
        let prog = compile(
            "int f() { return 1; } int main() { return f(); }",
            OptLevel::O0,
        )
        .unwrap();
        let loaded = LoadedProgram::load(prog).unwrap();
        let e1 = loaded.entry_of(1);
        assert_eq!(loaded.function_at(e1).name, "main");
        assert_eq!(loaded.function_at(0).name, "f");
    }
}
