//! # tics-vm — bytecode VM with pluggable intermittency runtimes
//!
//! Executes [`tics_minic`] bytecode against the simulated MCU of
//! [`tics_mcu`], injecting power failures from a [`tics_energy`] supply.
//! Two design decisions make the paper's phenomena observable:
//!
//! 1. **All program state lives in simulated memory.** Call frames —
//!    including each frame's operand scratch area — are materialized at
//!    real simulated addresses, so pointers are ordinary addresses, stack
//!    contents in FRAM genuinely survive power failures, and partially
//!    updated state is exactly as inconsistent as it would be on the
//!    MSP430. The only volatile machine state is the register file.
//!
//! 2. **Intermittency policy is a trait.** Frame placement, store
//!    interception, checkpointing, boot recovery, and the TICS time
//!    semantics are all routed through [`IntermittentRuntime`]. The TICS
//!    runtime lives in `tics-core`; MementOS/Chinchilla/Ratchet and the
//!    task-based kernels live in `tics-baselines`; [`BareRuntime`] (plain
//!    C: restart from `main` on every reboot) lives here.
//!
//! The [`Executor`] drives a machine + runtime pair through a
//! [`tics_energy::PowerSupply`], producing [`ExecStats`] and a
//! [`RunOutcome`] (finished / out of time / starved).
//!
//! ```
//! use tics_minic::{compile, opt::OptLevel};
//! use tics_vm::{BareRuntime, Executor, Machine, MachineConfig};
//! use tics_energy::ContinuousPower;
//!
//! let prog = compile("int main() { return 6 * 7; }", OptLevel::O2)?;
//! let mut machine = Machine::new(prog, MachineConfig::default())?;
//! let mut runtime = BareRuntime::new();
//! let outcome = Executor::new().run(&mut machine, &mut runtime, &mut ContinuousPower::new())?;
//! assert_eq!(outcome.exit_code(), Some(42));
//! # Ok::<(), tics_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps;
pub mod decoded;
pub mod driver;
pub mod error;
pub mod exec;
pub mod loaded;
pub mod machine;
pub mod runtime;
pub mod stats;

pub use caps::{PortingEffort, RuntimeCapabilities};
pub use decoded::DecodedProgram;
pub use driver::{BackoffPolicy, TxDriver, TX_PROCEED, TX_SKIP_COMMITTED, TX_SKIP_POISONED};
pub use error::VmError;
pub use exec::{DispatchEngine, Executor, RunOutcome};
pub use loaded::LoadedProgram;
pub use machine::{Machine, MachineConfig, MachineImage, SpanGuard};
pub use runtime::{BareRuntime, CheckpointKind, IntermittentRuntime, ResumeAction};
pub use stats::ExecStats;

/// Result alias for VM operations.
pub type Result<T> = std::result::Result<T, VmError>;
