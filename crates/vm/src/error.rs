//! VM errors.

use std::error::Error;
use std::fmt;

use tics_mcu::MemoryError;

/// An error raised while loading or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A memory access failed (unmapped address).
    Memory(MemoryError),
    /// The program image is malformed (bad function index, jump target,
    /// missing entry, unresolved ISR, ...).
    Load(String),
    /// The stack cannot grow any further — the paper's "system
    /// starvation by stack overflow" for bounded segment arrays.
    StackOverflow {
        /// Human-readable context (which allocation failed).
        detail: String,
    },
    /// The program performed an illegal operation (division by zero,
    /// operand-stack underflow, ...).
    Trap(String),
    /// The runtime cannot execute this program image (wrong or missing
    /// instrumentation).
    IncompatibleInstrumentation {
        /// What the runtime expected.
        expected: String,
        /// What the program carries.
        found: String,
    },
    /// The executor's forward-progress guard tripped: `boots` consecutive
    /// reboots elapsed with no new checkpoint, no new externally visible
    /// event, and no termination — the classic checkpoint live-lock of a
    /// runtime whose recovery never outruns the power schedule.
    NoForwardProgress {
        /// Consecutive reboots observed without progress.
        boots: u64,
        /// Runtime that was executing when the guard tripped.
        runtime: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Memory(e) => write!(f, "memory error: {e}"),
            VmError::Load(m) => write!(f, "load error: {m}"),
            VmError::StackOverflow { detail } => write!(f, "stack overflow: {detail}"),
            VmError::Trap(m) => write!(f, "trap: {m}"),
            VmError::IncompatibleInstrumentation { expected, found } => {
                write!(
                    f,
                    "runtime expects {expected} instrumentation, program has {found}"
                )
            }
            VmError::NoForwardProgress { boots, runtime } => {
                write!(
                    f,
                    "no forward progress: {runtime} made no new checkpoint or \
                     visible event across {boots} consecutive reboots (live-lock)"
                )
            }
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for VmError {
    fn from(e: MemoryError) -> Self {
        VmError::Memory(e)
    }
}

impl From<tics_minic::CompileError> for VmError {
    fn from(e: tics_minic::CompileError) -> Self {
        VmError::Load(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_mcu::Addr;

    #[test]
    fn displays_are_informative() {
        let e = VmError::from(MemoryError::Unmapped {
            addr: Addr(4),
            len: 2,
        });
        assert!(e.to_string().contains("memory error"));
        assert!(VmError::Trap("divide by zero".into())
            .to_string()
            .contains("divide"));
        assert!(VmError::StackOverflow {
            detail: "segment array full".into()
        }
        .to_string()
        .contains("segment"));
    }
}
