//! Transactional peripheral driver: a journaled exactly-once layer for
//! wire I/O under intermittent power.
//!
//! The torn-wire problem (§2 of the paper, generalized): a power failure
//! can strike *between* the bytes of a multi-byte UART frame or I2C
//! transaction. The MCU reboots with empty FIFOs, but the device on the
//! other end of the wire remembers every byte it already received —
//! external state cannot be rolled back by a checkpoint. Replaying from
//! the last checkpoint then re-drives the same bytes, duplicating side
//! effects; skipping blindly silently drops the transaction.
//!
//! [`TxDriver`] closes the gap with a small FRAM **transaction journal**
//! at the top of FRAM, using the same two-phase discipline as the
//! checkpoint banks: a CRC-stamped descriptor (id, attempt counter) is
//! staged with read-back verification, then a *single atomic word* flips
//! the slot state (`inflight` → `committed`). Single-word stores are
//! never torn or corrupted ([`tics_mcu::ATOMIC_STORE_BYTES`]), so the
//! journal is itself crash-consistent.
//!
//! At every boot, [`TxDriver::reconcile`] classifies what the previous
//! life left behind:
//!
//! * `committed` — the transaction finished; a replayed `tx_begin`
//!   returns the *skip* sentinel so the program does not re-drive the
//!   wire.
//! * `inflight` — the wire may hold a half frame. The attempt counter is
//!   bumped and the transaction becomes **retryable** after a seeded
//!   exponential backoff ([`BackoffPolicy`]), charged as busy-wait
//!   cycles.
//! * attempts exhausted — the slot is **poisoned**: the driver gives up
//!   loudly (graceful degradation; the receiver sees a gap, never a
//!   duplicate).
//!
//! Runtimes opt in by returning `Some` from
//! [`IntermittentRuntime::tx_driver`](crate::IntermittentRuntime::tx_driver);
//! the naive baseline does not, which is exactly the un-hardened control
//! the `exp_periph` experiment needs.

use tics_mcu::{Addr, Crc32};
use tics_trace::{SpanKind, TraceEvent};

use crate::error::VmError;
use crate::machine::Machine;
use crate::Result;

/// Journal capacity: concurrent live descriptors (one in flight plus
/// recently committed ids kept for replay detection).
pub const TXJ_SLOTS: u32 = 8;
/// Bytes per journal slot: id, attempts, CRC, state word.
pub const TXJ_SLOT_BYTES: u32 = 16;
/// Total journal footprint at the top of FRAM (slots + high-water word
/// + reserved word).
pub const TXJ_BYTES: u32 = TXJ_SLOTS * TXJ_SLOT_BYTES + 8;

/// Slot states. The state word lives *outside* the descriptor CRC and is
/// only ever changed by single-word (atomic, corruption-immune) stores —
/// the flag-flip-last discipline of the checkpoint banks.
const ST_EMPTY: u32 = 0;
const ST_INFLIGHT: u32 = 1;
const ST_COMMITTED: u32 = 2;
const ST_POISONED: u32 = 3;

/// Offsets within a slot.
const SLOT_ID: u32 = 0;
const SLOT_ATTEMPTS: u32 = 4;
const SLOT_CRC: u32 = 8;
const SLOT_STATE: u32 = 12;

/// Read-back retries for staged descriptor writes before trapping: the
/// corruption model flips bits in multi-word bursts, so every staged
/// write is verified like a checkpoint bank.
const VERIFY_ATTEMPTS: usize = 16;

/// Flat cycle cost of scanning the journal (`tx_begin` / reconcile).
const JOURNAL_SCAN_CYCLES: u64 = 48;

/// `tx_begin` result: proceed with this attempt number (≥ 0).
pub const TX_PROCEED: i32 = 0;
/// `tx_begin` result: already committed in a previous life — skip.
pub const TX_SKIP_COMMITTED: i32 = -1;
/// `tx_begin` result: retry budget exhausted — skip (degraded).
pub const TX_SKIP_POISONED: i32 = -2;

/// Seeded exponential backoff with bounded jitter.
///
/// The delay for attempt `a` is `base_us << min(a, cap)` plus a
/// deterministic jitter strictly below `base_us / 4`, so delays are
/// strictly monotone in the attempt number for `a ≤ cap` and fully
/// reproducible under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay in µs (= cycles at the 1 MHz clock).
    pub base_us: u64,
    /// Exponent cap: delays stop doubling past this attempt.
    pub cap: u32,
    /// Attempts after which a transaction is poisoned.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_us: 100,
            cap: 5,
            max_attempts: 6,
        }
    }
}

impl BackoffPolicy {
    /// Backoff delay in µs before retry number `attempt` (1-based: the
    /// first retry is attempt 1) of transaction `id` under `seed`.
    #[must_use]
    pub fn delay_us(&self, seed: u64, id: u32, attempt: u32) -> u64 {
        let exp = attempt.min(self.cap);
        let base = self.base_us << exp;
        let jitter_span = (self.base_us / 4).max(1);
        let jitter = splitmix64(seed ^ (u64::from(id) << 32) ^ u64::from(attempt)) % jitter_span;
        base + jitter
    }

    /// Total worst-case busy-wait budget across the full retry schedule,
    /// in µs — the experiment's timeout bound for one transaction.
    #[must_use]
    pub fn budget_us(&self) -> u64 {
        (1..self.max_attempts)
            .map(|a| (self.base_us << a.min(self.cap)) + self.base_us / 4)
            .sum()
    }
}

/// SplitMix64 — the repo's standard seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One decoded journal slot (host-side view).
#[derive(Debug, Clone, Copy)]
struct Slot {
    id: u32,
    attempts: u32,
    state: u32,
    /// CRC over (id, attempts) matched the stored value.
    valid: bool,
}

/// The journaled transaction driver. One instance per runtime; all
/// persistent state lives in the machine's FRAM, so the host-side struct
/// only mirrors the currently open transaction.
#[derive(Debug, Clone, Default)]
pub struct TxDriver {
    /// Retry/backoff policy.
    pub policy: BackoffPolicy,
    /// Currently open transaction id (host-side mirror; volatile by
    /// design — a reboot clears it and reconcile re-derives the truth
    /// from FRAM).
    active: Option<u32>,
    /// Attempt number of the active transaction.
    attempt: u32,
    /// Jitter seed, latched from the machine at reconcile time.
    seed: u64,
}


impl TxDriver {
    /// Whether a transaction is currently open (between `tx_begin` and
    /// `tx_commit`). The executor suppresses checkpoints while this
    /// holds — a checkpoint *inside* a transaction would make replay
    /// re-drive wire bytes under the same attempt number.
    #[must_use]
    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// Forgets all host-side transaction state (policy kept), returning
    /// the driver to its as-constructed state for a recycled machine.
    /// The FRAM journal itself is wiped by [`crate::Machine::reset`].
    pub fn recycle(&mut self) {
        self.active = None;
        self.attempt = 0;
        self.seed = 0;
    }

    /// Base address of the journal: the top `TXJ_BYTES` of FRAM, above
    /// every runtime area (which grow upward from the heap).
    fn base(m: &Machine) -> Addr {
        Addr(m.mem.layout().fram.end.raw() - TXJ_BYTES)
    }

    fn slot_addr(m: &Machine, idx: u32) -> Addr {
        Self::base(m).offset(idx * TXJ_SLOT_BYTES)
    }

    fn high_water_addr(m: &Machine) -> Addr {
        Self::base(m).offset(TXJ_SLOTS * TXJ_SLOT_BYTES)
    }

    fn descriptor_crc(id: u32, attempts: u32) -> u32 {
        let mut h = Crc32::new();
        h.update(&id.to_le_bytes());
        h.update(&attempts.to_le_bytes());
        h.finish()
    }

    fn read_slot(m: &Machine, idx: u32) -> Result<Slot> {
        let a = Self::slot_addr(m, idx);
        let b = m.mem.peek_slice(a, TXJ_SLOT_BYTES)?;
        let word = |o: u32| {
            let o = o as usize;
            u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
        };
        let id = word(SLOT_ID);
        let attempts = word(SLOT_ATTEMPTS);
        Ok(Slot {
            id,
            attempts,
            state: word(SLOT_STATE),
            valid: word(SLOT_CRC) == Self::descriptor_crc(id, attempts),
        })
    }

    /// Stages a descriptor (id, attempts, CRC) into slot `idx` with
    /// read-back verification; the state word is untouched. Traps if the
    /// corruption model defeats every attempt — the journal must never
    /// hold an unverified descriptor.
    fn write_descriptor(m: &mut Machine, idx: u32, id: u32, attempts: u32) -> Result<()> {
        let a = Self::slot_addr(m, idx);
        let mut bytes = Vec::with_capacity(12);
        bytes.extend_from_slice(&id.to_le_bytes());
        bytes.extend_from_slice(&attempts.to_le_bytes());
        bytes.extend_from_slice(&Self::descriptor_crc(id, attempts).to_le_bytes());
        for _ in 0..VERIFY_ATTEMPTS {
            m.mem.poke_bytes(a, &bytes)?;
            if m.mem.peek_slice(a, 12)? == bytes.as_slice() {
                m.mem.add_cycles(12);
                return Ok(());
            }
        }
        Err(VmError::Trap(format!(
            "tx journal descriptor write for id {id} failed read-back verification"
        )))
    }

    /// Boot-time reconciliation: classifies every descriptor the previous
    /// life left in flight as retryable (bump attempts, charge backoff)
    /// or poisoned (budget exhausted). Called by the executor right after
    /// `on_boot`, for every runtime that exposes a driver, under both
    /// dispatch engines.
    pub fn reconcile(&mut self, m: &mut Machine) -> Result<()> {
        self.active = None;
        self.attempt = 0;
        self.seed = splitmix64(m.periph.i2c.seed() ^ 0xBACC_0FF5_EED0_0001);
        let mut span = m.span(SpanKind::Driver);
        let m = &mut *span;
        m.mem.add_cycles(JOURNAL_SCAN_CYCLES);
        for idx in 0..TXJ_SLOTS {
            let slot = Self::read_slot(m, idx)?;
            if slot.state != ST_INFLIGHT {
                continue;
            }
            if !slot.valid {
                // A descriptor can only reach `inflight` after read-back
                // verification, so an invalid one means in-place damage.
                // Poison it: never retry what cannot be identified.
                m.mem.write_u32(Self::slot_addr(m, idx).offset(SLOT_STATE), ST_POISONED)?;
                m.emit(TraceEvent::TxnPoisoned { id: slot.id });
                continue;
            }
            let attempts = slot.attempts + 1;
            if attempts >= self.policy.max_attempts {
                m.mem.write_u32(Self::slot_addr(m, idx).offset(SLOT_STATE), ST_POISONED)?;
                m.emit(TraceEvent::TxnPoisoned { id: slot.id });
            } else {
                Self::write_descriptor(m, idx, slot.id, attempts)?;
                let backoff = self.policy.delay_us(self.seed, slot.id, attempts);
                m.mem.add_cycles(backoff);
                m.emit(TraceEvent::TxnRetry {
                    id: slot.id,
                    attempt: attempts,
                    backoff,
                });
            }
        }
        Ok(())
    }

    /// Opens transaction `id`. Returns the attempt number to tag wire
    /// traffic with (≥ 0), [`TX_SKIP_COMMITTED`] if a previous life
    /// already committed it (replay — skip without touching the wire), or
    /// [`TX_SKIP_POISONED`] if the retry budget is exhausted.
    pub fn begin(&mut self, m: &mut Machine, id: u32) -> Result<i32> {
        let mut span = m.span(SpanKind::Driver);
        let m = &mut *span;
        m.mem.add_cycles(JOURNAL_SCAN_CYCLES);
        let mut free: Option<u32> = None;
        let mut evict: Option<(u32, u32)> = None; // (slot idx, id)
        for idx in 0..TXJ_SLOTS {
            let slot = Self::read_slot(m, idx)?;
            if slot.valid && slot.state != ST_EMPTY {
                if slot.id == id {
                    return match slot.state {
                        ST_COMMITTED => {
                            m.emit(TraceEvent::TxnSkip { id });
                            Ok(TX_SKIP_COMMITTED)
                        }
                        ST_POISONED => {
                            m.emit(TraceEvent::TxnSkip { id });
                            Ok(TX_SKIP_POISONED)
                        }
                        // Inflight: this is the retry of an interrupted
                        // transaction (reconcile already bumped and
                        // backed off). Resume under the new attempt.
                        _ => {
                            self.active = Some(id);
                            self.attempt = slot.attempts;
                            m.emit(TraceEvent::TxnBegin { id });
                            Ok(slot.attempts as i32)
                        }
                    };
                }
                if slot.state != ST_INFLIGHT
                    && evict.is_none_or(|(_, eid)| slot.id < eid)
                {
                    evict = Some((idx, slot.id));
                }
            } else if free.is_none() {
                free = Some(idx);
            }
        }
        // No descriptor for this id. If the id is at or below the
        // journal's high-water mark, its slot was recycled — it must have
        // finished in a previous life (ids are begun in increasing
        // order), so a replay skips it.
        let hw = m.mem.read_u32(Self::high_water_addr(m))?;
        if id <= hw && hw != 0 {
            m.emit(TraceEvent::TxnSkip { id });
            return Ok(TX_SKIP_COMMITTED);
        }
        let idx = free.or(evict.map(|(i, _)| i)).ok_or_else(|| {
            VmError::Trap("tx journal full of inflight descriptors".into())
        })?;
        // Recycle: clear the state word first so a cut mid-staging
        // leaves a dead slot, not a chimera of old state and new id.
        m.mem.write_u32(Self::slot_addr(m, idx).offset(SLOT_STATE), ST_EMPTY)?;
        Self::write_descriptor(m, idx, id, 0)?;
        // Flag-flip-last: one atomic word arms the descriptor.
        m.mem.write_u32(Self::slot_addr(m, idx).offset(SLOT_STATE), ST_INFLIGHT)?;
        if id > hw {
            m.mem.write_u32(Self::high_water_addr(m), id)?;
        }
        self.active = Some(id);
        self.attempt = 0;
        m.emit(TraceEvent::TxnBegin { id });
        Ok(0)
    }

    /// Commits transaction `id`: a single atomic state-word flip, the
    /// point of no return. After this, replays of `tx_begin(id)` skip.
    pub fn commit(&mut self, m: &mut Machine, id: u32) -> Result<()> {
        if self.active != Some(id) {
            return Err(VmError::Trap(format!(
                "tx_commit({id}) without matching open transaction"
            )));
        }
        let mut span = m.span(SpanKind::Driver);
        let m = &mut *span;
        m.mem.add_cycles(JOURNAL_SCAN_CYCLES);
        for idx in 0..TXJ_SLOTS {
            let slot = Self::read_slot(m, idx)?;
            if slot.valid && slot.id == id && slot.state == ST_INFLIGHT {
                m.mem.write_u32(Self::slot_addr(m, idx).offset(SLOT_STATE), ST_COMMITTED)?;
                self.active = None;
                m.emit(TraceEvent::TxnCommit { id });
                return Ok(());
            }
        }
        Err(VmError::Trap(format!(
            "tx_commit({id}) found no inflight journal descriptor"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use tics_minic::{compile, opt::OptLevel};

    fn machine() -> Machine {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    // ---- BackoffPolicy properties (seeded, exhaustive over a grid) ----

    #[test]
    fn backoff_delays_strictly_monotone_up_to_cap() {
        let p = BackoffPolicy::default();
        for seed in [0u64, 1, 0x5EED, u64::MAX, 0xDEAD_BEEF_CAFE] {
            for id in [1u32, 7, 1000, u32::MAX] {
                let delays: Vec<u64> = (1..=p.cap)
                    .map(|a| p.delay_us(seed, id, a))
                    .collect();
                for w in delays.windows(2) {
                    assert!(
                        w[1] > w[0],
                        "backoff not strictly monotone: {delays:?} (seed {seed:#x}, id {id})"
                    );
                }
            }
        }
    }

    #[test]
    fn backoff_jitter_stays_below_quarter_base() {
        let p = BackoffPolicy::default();
        for seed in 0u64..200 {
            for attempt in 1..=p.max_attempts {
                let d = p.delay_us(seed, 3, attempt);
                let floor = p.base_us << attempt.min(p.cap);
                assert!(d >= floor);
                assert!(d < floor + p.base_us / 4 + 1);
            }
        }
    }

    #[test]
    fn backoff_deterministic_under_fixed_seed() {
        let p = BackoffPolicy::default();
        for id in 0..50u32 {
            for attempt in 1..=p.max_attempts {
                assert_eq!(
                    p.delay_us(42, id, attempt),
                    p.delay_us(42, id, attempt),
                    "same (seed, id, attempt) must give the same delay"
                );
            }
        }
        // ...and different seeds must actually move the jitter somewhere.
        let varied = (0..64u64)
            .map(|s| p.delay_us(s, 9, 2))
            .collect::<std::collections::HashSet<_>>();
        assert!(varied.len() > 1, "jitter ignored the seed");
    }

    #[test]
    fn backoff_budget_covers_full_schedule() {
        let p = BackoffPolicy::default();
        let worst: u64 = (1..p.max_attempts)
            .map(|a| p.delay_us(u64::MAX, u32::MAX, a))
            .max()
            .unwrap();
        assert!(worst <= p.budget_us());
        assert!(p.budget_us() < 50_000, "budget must stay a small fraction of a second");
    }

    // ---- Journal behavior on a real machine ----

    #[test]
    fn begin_commit_then_replay_skips() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        assert_eq!(d.begin(&mut m, 1).unwrap(), 0);
        assert!(d.in_txn());
        d.commit(&mut m, 1).unwrap();
        assert!(!d.in_txn());
        // A replay of the same id after commit must skip.
        assert_eq!(d.begin(&mut m, 1).unwrap(), TX_SKIP_COMMITTED);
        assert_eq!(m.stats().txn_commits, 1);
        assert_eq!(m.stats().txn_skips, 1);
    }

    #[test]
    fn interrupted_txn_becomes_retry_with_bumped_attempt() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        assert_eq!(d.begin(&mut m, 5).unwrap(), 0);
        // Power dies mid-transaction: no commit.
        m.power_failure(150);
        let mut d = TxDriver::default(); // host mirror is volatile
        d.reconcile(&mut m).unwrap();
        assert_eq!(m.stats().txn_retries, 1);
        // The replayed begin resumes under attempt 1.
        assert_eq!(d.begin(&mut m, 5).unwrap(), 1);
        d.commit(&mut m, 5).unwrap();
        assert_eq!(d.begin(&mut m, 5).unwrap(), TX_SKIP_COMMITTED);
    }

    #[test]
    fn budget_exhaustion_poisons_the_descriptor() {
        let mut m = machine();
        let mut d = TxDriver::default();
        let max = d.policy.max_attempts;
        d.reconcile(&mut m).unwrap();
        assert_eq!(d.begin(&mut m, 9).unwrap(), 0);
        for _ in 0..max {
            m.power_failure(100);
            d = TxDriver::default();
            d.reconcile(&mut m).unwrap();
        }
        assert_eq!(m.stats().txn_poisoned, 1);
        assert_eq!(m.stats().txn_retries, u64::from(max) - 1);
        // The program sees the poisoned sentinel and degrades gracefully.
        assert_eq!(d.begin(&mut m, 9).unwrap(), TX_SKIP_POISONED);
    }

    #[test]
    fn retry_charges_monotone_backoff_cycles() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        d.begin(&mut m, 2).unwrap();
        let mut last = 0;
        let mut deltas = Vec::new();
        for _ in 0..3 {
            m.power_failure(100);
            let before = m.cycles();
            d = TxDriver::default();
            d.reconcile(&mut m).unwrap();
            let spent = m.cycles() - before;
            deltas.push(spent);
            assert!(spent > last, "reconcile backoff must grow: {deltas:?}");
            last = spent;
        }
    }

    #[test]
    fn recycled_ids_below_high_water_skip() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        // Fill well past the journal capacity with committed txns.
        for id in 1..=(TXJ_SLOTS + 4) {
            assert_eq!(d.begin(&mut m, id).unwrap(), 0, "id {id}");
            d.commit(&mut m, id).unwrap();
        }
        // Id 1's slot has been recycled, but the high-water mark still
        // proves it finished: a replay must skip, not re-run.
        assert_eq!(d.begin(&mut m, 1).unwrap(), TX_SKIP_COMMITTED);
    }

    #[test]
    fn commit_without_begin_traps() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        assert!(d.commit(&mut m, 3).is_err());
    }

    #[test]
    fn journal_survives_power_failure() {
        let mut m = machine();
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        d.begin(&mut m, 1).unwrap();
        d.commit(&mut m, 1).unwrap();
        m.power_failure(1_000);
        let mut d = TxDriver::default();
        d.reconcile(&mut m).unwrap();
        assert_eq!(d.begin(&mut m, 1).unwrap(), TX_SKIP_COMMITTED);
    }
}
