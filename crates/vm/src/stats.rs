//! Execution statistics: an incremental fold over the structured trace.
//!
//! Historically these counters were updated ad hoc at dozens of call
//! sites, with parallel structures (`marks` next to `marks_timed`,
//! `sends` next to `sends_timed`) that could silently diverge. They are
//! now maintained in exactly one place — [`ExecStats::fold_event`],
//! called by [`Machine::emit`](crate::Machine::emit) for every
//! [`TraceEvent`] — and the un-timed views are derived accessors over
//! the single timed stream.

use tics_trace::TraceEvent;

/// Everything the experiments count: completions, checkpoints, traffic,
/// violations. All fields are updated by [`ExecStats::fold_event`]; only
/// `instructions` (too hot to event) is bumped directly by the executor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Boots (first boot + one per power-failure recovery).
    pub boots: u64,
    /// Power failures injected.
    pub power_failures: u64,
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Checkpoints actually committed (not sites visited).
    pub checkpoints: u64,
    /// Total bytes committed by checkpoints.
    pub checkpoint_bytes: u64,
    /// Checkpoint restores performed after reboots.
    pub restores: u64,
    /// Self-healing recoveries: boots that detected an invalid
    /// checkpoint bank and fell back or fresh-started.
    pub recoveries: u64,
    /// Recoveries that degraded to a fresh start (every bank invalid).
    pub fresh_starts: u64,
    /// Undo-log entries appended.
    pub undo_log_appends: u64,
    /// Undo-log entries rolled back after failures.
    pub undo_rollbacks: u64,
    /// Stack segment grows.
    pub stack_grows: u64,
    /// Stack segment shrinks.
    pub stack_shrinks: u64,
    /// `mark(id)` events with the *true* wall-clock time (µs) at which
    /// they occurred — the simulation's logic-analyzer trace. The single
    /// source of truth for mark counting (see [`ExecStats::mark_count`]).
    pub marks_timed: Vec<(i32, u64)>,
    /// `send` events with true wall-clock time (µs). The single source
    /// of truth for transmissions (see [`ExecStats::sends`]).
    pub sends_timed: Vec<(i32, u64)>,
    /// True wall-clock time (µs) of every sensor sample.
    pub samples_timed: Vec<u64>,
    /// True wall-clock time (µs) of every power failure.
    pub failure_times: Vec<u64>,
    /// Values printed with `print`.
    pub prints: Vec<i32>,
    /// `led(x)` invocations.
    pub led_events: u64,
    /// Sensor samples taken (all `sample*` syscalls).
    pub samples: u64,
    /// `@expires` guards evaluated stale (data discarded).
    pub expired_data_discards: u64,
    /// `@expires`/`catch` blocks aborted by the expiration timer.
    pub expires_catches: u64,
    /// `@timely` branches not taken because the deadline had passed.
    pub timely_misses: u64,
    /// ISR invocations.
    pub isr_entries: u64,
    /// UART bytes pushed onto the wire with `uart_tx` (wire byte and
    /// true wall-clock time, µs; includes torn bytes — they left the
    /// pin, so they count as externally visible).
    pub uart_tx_timed: Vec<(u8, u64)>,
    /// `uart_rx` polls that returned a byte (torn/empty polls excluded).
    pub uart_rx_bytes: u64,
    /// I2C bus operations driven (START/WRITE/READ/STOP/RESET phases).
    pub i2c_ops: u64,
    /// Transactions opened with `tx_begin` (attempt 0 only, not retries).
    pub txn_begins: u64,
    /// Transactions committed with `tx_commit`.
    pub txn_commits: u64,
    /// Transaction retries scheduled by reboot-time reconciliation.
    pub txn_retries: u64,
    /// Transactions poisoned after exhausting the retry budget.
    pub txn_poisoned: u64,
    /// Transactions skipped at `tx_begin` (already committed or poisoned).
    pub txn_skips: u64,
}

impl ExecStats {
    /// Zeroes every counter and empties every timed stream while keeping
    /// the `Vec` allocations, so a recycled machine starts from the same
    /// observable state as `ExecStats::default()` without re-allocating.
    pub fn reset(&mut self) {
        let ExecStats {
            boots,
            power_failures,
            instructions,
            checkpoints,
            checkpoint_bytes,
            restores,
            recoveries,
            fresh_starts,
            undo_log_appends,
            undo_rollbacks,
            stack_grows,
            stack_shrinks,
            marks_timed,
            sends_timed,
            samples_timed,
            failure_times,
            prints,
            led_events,
            samples,
            expired_data_discards,
            expires_catches,
            timely_misses,
            isr_entries,
            uart_tx_timed,
            uart_rx_bytes,
            i2c_ops,
            txn_begins,
            txn_commits,
            txn_retries,
            txn_poisoned,
            txn_skips,
        } = self;
        *boots = 0;
        *power_failures = 0;
        *instructions = 0;
        *checkpoints = 0;
        *checkpoint_bytes = 0;
        *restores = 0;
        *recoveries = 0;
        *fresh_starts = 0;
        *undo_log_appends = 0;
        *undo_rollbacks = 0;
        *stack_grows = 0;
        *stack_shrinks = 0;
        marks_timed.clear();
        sends_timed.clear();
        samples_timed.clear();
        failure_times.clear();
        prints.clear();
        *led_events = 0;
        *samples = 0;
        *expired_data_discards = 0;
        *expires_catches = 0;
        *timely_misses = 0;
        *isr_entries = 0;
        uart_tx_timed.clear();
        *uart_rx_bytes = 0;
        *i2c_ops = 0;
        *txn_begins = 0;
        *txn_commits = 0;
        *txn_retries = 0;
        *txn_poisoned = 0;
        *txn_skips = 0;
    }

    /// Folds one trace event into the counters. This is the *only*
    /// update path for every field except `instructions`: the machine
    /// calls it from `emit`, so the stats and the trace cannot disagree.
    pub fn fold_event(&mut self, event: &TraceEvent, at_us: u64) {
        match *event {
            TraceEvent::Boot => self.boots += 1,
            TraceEvent::PowerFailure { .. } => {
                self.power_failures += 1;
                self.failure_times.push(at_us);
            }
            TraceEvent::CheckpointCommit { bytes, .. } => {
                self.checkpoints += 1;
                self.checkpoint_bytes += bytes;
            }
            TraceEvent::Restore { .. } => self.restores += 1,
            TraceEvent::Recovery { fresh_start, .. } => {
                self.recoveries += 1;
                if fresh_start {
                    self.fresh_starts += 1;
                }
            }
            TraceEvent::UndoAppend { .. } => self.undo_log_appends += 1,
            TraceEvent::Rollback { .. } => self.undo_rollbacks += 1,
            TraceEvent::Mark { id } => self.marks_timed.push((id, at_us)),
            TraceEvent::Send { value } => self.sends_timed.push((value, at_us)),
            TraceEvent::Sample { .. } => {
                self.samples += 1;
                self.samples_timed.push(at_us);
            }
            TraceEvent::Print { value } => self.prints.push(value),
            TraceEvent::Led { .. } => self.led_events += 1,
            TraceEvent::IsrEnter => self.isr_entries += 1,
            TraceEvent::ExpireDiscard => self.expired_data_discards += 1,
            TraceEvent::ExpiresCatch => self.expires_catches += 1,
            TraceEvent::TimelyMiss => self.timely_misses += 1,
            TraceEvent::StackGrow => self.stack_grows += 1,
            TraceEvent::StackShrink => self.stack_shrinks += 1,
            TraceEvent::UartTx { byte, .. } => self.uart_tx_timed.push((byte, at_us)),
            TraceEvent::UartRx { byte } => {
                if byte >= 0 {
                    self.uart_rx_bytes += 1;
                }
            }
            TraceEvent::I2cOp { .. } => self.i2c_ops += 1,
            TraceEvent::TxnBegin { .. } => self.txn_begins += 1,
            TraceEvent::TxnCommit { .. } => self.txn_commits += 1,
            TraceEvent::TxnRetry { .. } => self.txn_retries += 1,
            TraceEvent::TxnPoisoned { .. } => self.txn_poisoned += 1,
            TraceEvent::TxnSkip { .. } => self.txn_skips += 1,
            TraceEvent::TornWrite { .. }
            | TraceEvent::IsrExit
            | TraceEvent::SpanEnter { .. }
            | TraceEvent::SpanExit { .. } => {}
        }
    }

    /// Completions recorded for `mark(id)`, derived from the timed
    /// stream (there is no separate counter to fall out of sync).
    #[must_use]
    pub fn mark_count(&self, id: i32) -> u64 {
        self.marks_timed.iter().filter(|&&(i, _)| i == id).count() as u64
    }

    /// Values transmitted with `send`, in order, derived from the timed
    /// stream.
    #[must_use]
    pub fn sends(&self) -> Vec<i32> {
        self.sends_timed.iter().map(|&(v, _)| v).collect()
    }

    /// Count of externally visible events so far (sends, marks, samples,
    /// prints, LED toggles). Kept consistent with the trace's
    /// incremental counter; the executor's forward-progress guard reads
    /// the trace-side counter, this is the stats-side view of the same
    /// fold.
    #[must_use]
    pub fn visible_events(&self) -> u64 {
        self.sends_timed.len() as u64
            + self.marks_timed.len() as u64
            + self.samples_timed.len() as u64
            + self.prints.len() as u64
            + self.led_events
            + self.uart_tx_timed.len() as u64
            + self.i2c_ops
    }

    /// Mean checkpoint size in bytes, if any checkpoint was taken.
    #[must_use]
    pub fn mean_checkpoint_bytes(&self) -> Option<f64> {
        if self.checkpoints == 0 {
            None
        } else {
            Some(self.checkpoint_bytes as f64 / self.checkpoints as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_count_defaults_to_zero() {
        let mut s = ExecStats::default();
        assert_eq!(s.mark_count(3), 0);
        s.fold_event(&TraceEvent::Mark { id: 3 }, 10);
        s.fold_event(&TraceEvent::Mark { id: 3 }, 20);
        s.fold_event(&TraceEvent::Mark { id: 4 }, 30);
        assert_eq!(s.mark_count(3), 2);
        assert_eq!(s.mark_count(4), 1);
    }

    #[test]
    fn sends_derive_from_timed_stream() {
        let mut s = ExecStats::default();
        s.fold_event(&TraceEvent::Send { value: 7 }, 100);
        s.fold_event(&TraceEvent::Send { value: -2 }, 200);
        assert_eq!(s.sends(), vec![7, -2]);
        assert_eq!(s.sends_timed, vec![(7, 100), (-2, 200)]);
    }

    #[test]
    fn fold_tracks_visible_events_and_failures() {
        let mut s = ExecStats::default();
        s.fold_event(&TraceEvent::Boot, 0);
        s.fold_event(&TraceEvent::Sample { value: 3 }, 5);
        s.fold_event(&TraceEvent::Print { value: 1 }, 6);
        s.fold_event(&TraceEvent::Led { value: 1 }, 7);
        s.fold_event(&TraceEvent::PowerFailure { off_us: 50 }, 9);
        assert_eq!(s.boots, 1);
        assert_eq!(s.samples, 1);
        assert_eq!(s.samples_timed, vec![5]);
        assert_eq!(s.visible_events(), 3);
        assert_eq!(s.failure_times, vec![9]);
        assert_eq!(s.power_failures, 1);
    }

    #[test]
    fn peripheral_events_fold_into_visible_count() {
        let mut s = ExecStats::default();
        s.fold_event(&TraceEvent::UartTx { byte: 0xA5, torn: false }, 10);
        s.fold_event(&TraceEvent::UartTx { byte: 0x01, torn: true }, 20);
        s.fold_event(&TraceEvent::UartRx { byte: -1 }, 25);
        s.fold_event(&TraceEvent::UartRx { byte: 0x42 }, 26);
        s.fold_event(
            &TraceEvent::I2cOp {
                op: tics_trace::I2cPhase::Start,
                value: 0x40,
                ack: true,
            },
            30,
        );
        s.fold_event(&TraceEvent::TxnBegin { id: 1 }, 31);
        s.fold_event(&TraceEvent::TxnCommit { id: 1 }, 32);
        // Torn TX bytes still left the pin: both count as visible.
        assert_eq!(s.uart_tx_timed, vec![(0xA5, 10), (0x01, 20)]);
        assert_eq!(s.uart_rx_bytes, 1);
        assert_eq!(s.i2c_ops, 1);
        assert_eq!(s.txn_begins, 1);
        assert_eq!(s.txn_commits, 1);
        assert_eq!(s.visible_events(), 3);
    }

    #[test]
    fn mean_checkpoint_bytes() {
        let mut s = ExecStats::default();
        assert_eq!(s.mean_checkpoint_bytes(), None);
        for _ in 0..4 {
            s.fold_event(
                &TraceEvent::CheckpointCommit {
                    cause: tics_trace::CkptCause::Site,
                    bytes: 25,
                },
                0,
            );
        }
        assert_eq!(s.mean_checkpoint_bytes(), Some(25.0));
    }
}
