//! Execution statistics collected by the machine and its runtime.

use std::collections::HashMap;

/// Everything the experiments count: completions, checkpoints, traffic,
/// violations. Runtimes update the checkpoint/log fields through
/// [`Machine::stats_mut`](crate::Machine::stats_mut).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Boots (first boot + one per power-failure recovery).
    pub boots: u64,
    /// Power failures injected.
    pub power_failures: u64,
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Checkpoints actually committed (not sites visited).
    pub checkpoints: u64,
    /// Total bytes committed by checkpoints.
    pub checkpoint_bytes: u64,
    /// Checkpoint restores performed after reboots.
    pub restores: u64,
    /// Undo-log entries appended.
    pub undo_log_appends: u64,
    /// Undo-log entries rolled back after failures.
    pub undo_rollbacks: u64,
    /// Stack segment grows.
    pub stack_grows: u64,
    /// Stack segment shrinks.
    pub stack_shrinks: u64,
    /// `mark(id)` completions per id (routine counting for Table 1).
    pub marks: HashMap<i32, u64>,
    /// `mark(id)` events with the *true* wall-clock time (µs) at which
    /// they occurred — the simulation's logic-analyzer trace.
    pub marks_timed: Vec<(i32, u64)>,
    /// Values transmitted with `send`.
    pub sends: Vec<i32>,
    /// `send` events with true wall-clock time (µs).
    pub sends_timed: Vec<(i32, u64)>,
    /// True wall-clock time (µs) of every sensor sample.
    pub samples_timed: Vec<u64>,
    /// True wall-clock time (µs) of every power failure.
    pub failure_times: Vec<u64>,
    /// Values printed with `print`.
    pub prints: Vec<i32>,
    /// `led(x)` invocations.
    pub led_events: u64,
    /// Sensor samples taken (all `sample*` syscalls).
    pub samples: u64,
    /// `@expires` guards evaluated stale (data discarded).
    pub expired_data_discards: u64,
    /// `@expires`/`catch` blocks aborted by the expiration timer.
    pub expires_catches: u64,
    /// `@timely` branches not taken because the deadline had passed.
    pub timely_misses: u64,
    /// ISR invocations.
    pub isr_entries: u64,
}

impl ExecStats {
    /// Completions recorded for `mark(id)`.
    #[must_use]
    pub fn mark_count(&self, id: i32) -> u64 {
        self.marks.get(&id).copied().unwrap_or(0)
    }

    /// Count of externally visible events so far (sends, marks, samples,
    /// prints, LED toggles). The executor's forward-progress guard treats
    /// any increase as progress even when no checkpoint was committed —
    /// an unprotected runtime re-executing from `main` still *does*
    /// things the outside world can see.
    #[must_use]
    pub fn visible_events(&self) -> u64 {
        self.sends_timed.len() as u64
            + self.marks_timed.len() as u64
            + self.samples_timed.len() as u64
            + self.prints.len() as u64
            + self.led_events
    }

    /// Mean checkpoint size in bytes, if any checkpoint was taken.
    #[must_use]
    pub fn mean_checkpoint_bytes(&self) -> Option<f64> {
        if self.checkpoints == 0 {
            None
        } else {
            Some(self.checkpoint_bytes as f64 / self.checkpoints as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_count_defaults_to_zero() {
        let mut s = ExecStats::default();
        assert_eq!(s.mark_count(3), 0);
        *s.marks.entry(3).or_default() += 2;
        assert_eq!(s.mark_count(3), 2);
    }

    #[test]
    fn mean_checkpoint_bytes() {
        let mut s = ExecStats::default();
        assert_eq!(s.mean_checkpoint_bytes(), None);
        s.checkpoints = 4;
        s.checkpoint_bytes = 100;
        assert_eq!(s.mean_checkpoint_bytes(), Some(25.0));
    }
}
