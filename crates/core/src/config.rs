//! TICS runtime configuration.

/// Configuration of the TICS runtime buffers and policies.
///
/// The paper's evaluation sweeps the working-stack (segment) size — its
/// `S1` = 50 B and `S2` = 256 B configurations — and optionally enables a
/// 10 ms checkpoint timer (`S1*`, `S2*`). Segment size trades checkpoint
/// frequency against per-checkpoint cost (§5.3.2); it can never be
/// smaller than the program's largest frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TicsConfig {
    /// Stack segment size in bytes. Must be ≥ the program's largest
    /// frame; validated when execution starts.
    pub seg_size: u32,
    /// Number of segments in the segment array (recursion depth bound ×
    /// frame granularity). The paper used a 2048 B array.
    pub n_segments: u32,
    /// Undo-log capacity in entries (8 bytes each). The paper used a
    /// 2048 B log.
    pub undo_capacity: u32,
    /// Timer-driven checkpoint period in µs (the paper's `*`
    /// configurations use 10 ms). `None` disables the timer.
    pub timer_period_us: Option<u64>,
    /// Virtualize the I/O interface across power failures (the paper's
    /// §7 future work): `send` transmissions are buffered in FRAM and
    /// released only when the enclosing state commits, so a rollback can
    /// never leave a transmission the program later un-executes.
    pub virtualize_io: bool,
}

impl TicsConfig {
    /// The paper's `S2` configuration scaled to this VM's frame sizes:
    /// 256-byte segments, 2 KB segment array, 2 KB undo log, no timer.
    #[must_use]
    pub fn s2() -> TicsConfig {
        TicsConfig {
            seg_size: 256,
            n_segments: 8,
            undo_capacity: 256,
            timer_period_us: None,
            virtualize_io: false,
        }
    }

    /// `S2*`: `S2` plus a 10 ms checkpoint timer.
    #[must_use]
    pub fn s2_star() -> TicsConfig {
        TicsConfig {
            timer_period_us: Some(10_000),
            ..TicsConfig::s2()
        }
    }

    /// Builder-style segment size override.
    #[must_use]
    pub fn with_seg_size(mut self, seg_size: u32) -> TicsConfig {
        self.seg_size = seg_size;
        self
    }

    /// Builder-style segment count override.
    #[must_use]
    pub fn with_segments(mut self, n: u32) -> TicsConfig {
        self.n_segments = n;
        self
    }

    /// Builder-style timer override.
    #[must_use]
    pub fn with_timer(mut self, period_us: Option<u64>) -> TicsConfig {
        self.timer_period_us = period_us;
        self
    }

    /// Builder-style I/O virtualization enable.
    #[must_use]
    pub fn with_virtualized_io(mut self) -> TicsConfig {
        self.virtualize_io = true;
        self
    }

    /// Total bytes of the segment array.
    #[must_use]
    pub fn segment_array_bytes(&self) -> u32 {
        self.seg_size * self.n_segments
    }

    /// Total bytes of the undo log (8-byte entries plus the count word).
    #[must_use]
    pub fn undo_log_bytes(&self) -> u32 {
        8 * self.undo_capacity
    }
}

impl Default for TicsConfig {
    fn default() -> Self {
        TicsConfig::s2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2_matches_paper_buffer_sizes() {
        let c = TicsConfig::s2();
        assert_eq!(c.segment_array_bytes(), 2048);
        assert_eq!(c.undo_log_bytes(), 2048);
        assert_eq!(c.timer_period_us, None);
    }

    #[test]
    fn star_config_enables_10ms_timer() {
        assert_eq!(TicsConfig::s2_star().timer_period_us, Some(10_000));
    }

    #[test]
    fn builders_override_fields() {
        let c = TicsConfig::default()
            .with_seg_size(128)
            .with_segments(16)
            .with_timer(Some(5_000));
        assert_eq!(c.seg_size, 128);
        assert_eq!(c.n_segments, 16);
        assert_eq!(c.timer_period_us, Some(5_000));
    }
}
