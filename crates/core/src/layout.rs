//! FRAM layout of the TICS runtime's persistent structures.

use tics_mcu::{Addr, Region};
use tics_minic::program::Program;

use crate::config::TicsConfig;

/// Magic value marking an initialized control block.
pub const MAGIC: u32 = 0x7113_C501;

/// Offsets within the control block.
pub mod ctrl {
    /// `u32` magic (first-boot detection).
    pub const MAGIC: u32 = 0;
    /// `u32` valid-checkpoint flag: 0 = none, 1 = buffer A, 2 = buffer B.
    pub const CKPT_FLAG: u32 = 4;
    /// `u64` checkpoint sequence number.
    pub const CKPT_SEQ: u32 = 8;
    /// `u32` undo-log entry count.
    pub const UNDO_COUNT: u32 = 16;
    /// `u32` count of buffered (uncommitted) virtualized sends.
    pub const IO_COUNT: u32 = 20;
    /// `u64` sequence number of the full bank the delta chain extends.
    pub const DELTA_BASE: u32 = 24;
    /// `u64` highest committed delta sequence (0 = no chain). Both
    /// delta words are 8-byte pokes — within the atomic-store size, so
    /// their updates are single corruption-immune stores.
    pub const DELTA_TIP: u32 = 32;
    /// Control block size.
    pub const SIZE: u32 = 40;
}

/// Offsets within one checkpoint buffer (bank).
///
/// Each bank is self-validating: it carries a monotonic sequence number
/// and a CRC-32 over everything except the CRC field itself. The CRC is
/// stamped during phase 1 of the two-phase commit and checked before
/// any restore — a bank whose staging writes were corrupted by a
/// brown-out fails validation instead of being trusted.
pub mod ckpt {
    /// 4 × `u32` register image (pc, sp, fp, sr).
    pub const REGS: u32 = 0;
    /// `u32` atomic-region depth at checkpoint time.
    pub const ATOMIC_DEPTH: u32 = 16;
    /// `u32` working-segment index at checkpoint time.
    pub const WORKING_SEG: u32 = 20;
    /// `u64` per-bank monotonic commit sequence number (never 0 for a
    /// committed bank — 0 marks a bank that has never been written).
    pub const SEQ: u32 = 24;
    /// `u32` CRC-32 over the header (minus this field) + segment image.
    pub const CRC: u32 = 32;
    /// Start of the working-segment image.
    pub const SEG_IMAGE: u32 = 36;
    /// Header bytes before the segment image.
    pub const HEADER: u32 = 36;
}

/// Resolved addresses of every persistent runtime structure.
///
/// Laid out immediately after the program's data segment:
/// control block, checkpoint buffers A and B, per-annotated-variable
/// timestamps, undo log, segment array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeLayout {
    /// Control block base.
    pub control: Addr,
    /// Checkpoint buffer A base.
    pub ckpt_a: Addr,
    /// Checkpoint buffer B base.
    pub ckpt_b: Addr,
    /// Delta journal base (incremental checkpoint records).
    pub journal: Addr,
    /// Delta journal capacity in bytes.
    pub journal_capacity: u32,
    /// Timestamp table base (`u64` per annotated variable).
    pub timestamps: Addr,
    /// Undo log base (8-byte entries: address, old value).
    pub undo: Addr,
    /// Virtualized-I/O buffer base (4-byte buffered send values).
    pub io_buffer: Addr,
    /// Segment array base.
    pub segments: Addr,
    /// First address past the runtime area.
    pub end: Addr,
    /// Segment size copied from the config.
    pub seg_size: u32,
    /// Segment count copied from the config.
    pub n_segments: u32,
    /// Undo capacity copied from the config.
    pub undo_capacity: u32,
    /// Virtualized-I/O buffer capacity (entries) from the config.
    pub io_capacity: u32,
}

impl RuntimeLayout {
    /// Computes the layout for `config` with the runtime area starting at
    /// `base` (normally `Machine::runtime_area_base()`).
    #[must_use]
    pub fn compute(base: Addr, config: &TicsConfig, program: &Program) -> RuntimeLayout {
        let ckpt_buf_bytes = ckpt::HEADER + config.seg_size;
        let control = base;
        let ckpt_a = control.offset(ctrl::SIZE);
        let ckpt_b = ckpt_a.offset(ckpt_buf_bytes);
        // The delta journal sits right after the banks: roomy enough for
        // many incremental records between full images, bounded so
        // boot-time chain replay stays O(image).
        let journal = ckpt_b.offset(ckpt_buf_bytes);
        let journal_capacity = (2 * ckpt_buf_bytes).clamp(1_024, 8_192);
        let timestamps = journal.offset(journal_capacity);
        let undo = timestamps.offset(8 * program.annotated.len() as u32);
        let io_capacity = if config.virtualize_io { 32 } else { 0 };
        let io_buffer = undo.offset(config.undo_log_bytes());
        let segments = io_buffer.offset(4 * io_capacity);
        let end = segments.offset(config.segment_array_bytes());
        RuntimeLayout {
            control,
            ckpt_a,
            ckpt_b,
            journal,
            journal_capacity,
            timestamps,
            undo,
            io_buffer,
            segments,
            end,
            seg_size: config.seg_size,
            n_segments: config.n_segments,
            undo_capacity: config.undo_capacity,
            io_capacity,
        }
    }

    /// The address range of segment `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn segment(&self, idx: u32) -> Region {
        assert!(idx < self.n_segments, "segment {idx} out of range");
        Region::with_len(self.segments.offset(idx * self.seg_size), self.seg_size)
    }

    /// Which segment contains `addr`, if any.
    #[must_use]
    pub fn segment_of(&self, addr: Addr) -> Option<u32> {
        if addr < self.segments || addr >= self.segments.offset(self.segment_array_bytes()) {
            return None;
        }
        Some((addr.raw() - self.segments.raw()) / self.seg_size)
    }

    /// Checkpoint buffer base for flag value 1 (A) or 2 (B).
    ///
    /// # Panics
    ///
    /// Panics if `which` is not 1 or 2.
    #[must_use]
    pub fn ckpt_buffer(&self, which: u32) -> Addr {
        match which {
            1 => self.ckpt_a,
            2 => self.ckpt_b,
            other => panic!("checkpoint buffer id must be 1 or 2, got {other}"),
        }
    }

    /// Timestamp slot of annotated variable `var`.
    #[must_use]
    pub fn timestamp_slot(&self, var: u16) -> Addr {
        self.timestamps.offset(8 * u32::from(var))
    }

    /// Undo-log entry slot `idx` (8 bytes: `u32` address, `u32` old).
    #[must_use]
    pub fn undo_slot(&self, idx: u32) -> Addr {
        self.undo.offset(8 * idx)
    }

    /// Buffered-send slot `idx` (a 4-byte value).
    #[must_use]
    pub fn io_slot(&self, idx: u32) -> Addr {
        self.io_buffer.offset(4 * idx)
    }

    /// Total bytes of the segment array.
    #[must_use]
    pub fn segment_array_bytes(&self) -> u32 {
        self.seg_size * self.n_segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_minic::program::{AnnotatedVar, Program};

    fn layout() -> RuntimeLayout {
        let mut p = Program::default();
        p.annotated.push(AnnotatedVar {
            global_index: 0,
            ttl_us: 1,
        });
        RuntimeLayout::compute(Addr(0x5000), &TicsConfig::s2(), &p)
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = layout();
        assert!(l.control < l.ckpt_a);
        assert!(l.ckpt_a < l.ckpt_b);
        assert!(l.ckpt_b < l.journal);
        assert!(l.journal < l.timestamps);
        assert!(l.timestamps < l.undo);
        assert!(l.undo < l.segments);
        assert!(l.segments < l.end);
        // Checkpoint buffers hold header + a full segment.
        assert_eq!(l.ckpt_b.raw() - l.ckpt_a.raw(), ckpt::HEADER + 256);
        // The journal sits between the banks and the timestamp table.
        assert_eq!(l.journal.raw() - l.ckpt_b.raw(), ckpt::HEADER + 256);
        assert_eq!(l.timestamps.raw() - l.journal.raw(), l.journal_capacity);
        assert_eq!(l.journal_capacity, 1_024);
    }

    #[test]
    fn segment_of_maps_addresses() {
        let l = layout();
        assert_eq!(l.segment_of(l.segments), Some(0));
        assert_eq!(l.segment_of(l.segments.offset(255)), Some(0));
        assert_eq!(l.segment_of(l.segments.offset(256)), Some(1));
        assert_eq!(l.segment_of(l.end), None);
        assert_eq!(l.segment_of(Addr(0)), None);
        let last = l.segments.offset(l.segment_array_bytes() - 1);
        assert_eq!(l.segment_of(last), Some(7));
    }

    #[test]
    fn segment_regions_tile_the_array() {
        let l = layout();
        assert_eq!(l.segment(0).start, l.segments);
        assert_eq!(l.segment(7).end, l.end);
        assert_eq!(l.segment(3).len(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_index_is_checked() {
        let _ = layout().segment(8);
    }

    #[test]
    fn slots_are_addressable() {
        let l = layout();
        assert_eq!(l.timestamp_slot(0), l.timestamps);
        assert_eq!(l.undo_slot(2), l.undo.offset(16));
        assert_eq!(l.ckpt_buffer(1), l.ckpt_a);
        assert_eq!(l.ckpt_buffer(2), l.ckpt_b);
    }
}
