//! The TICS [`IntermittentRuntime`] implementation.

use tics_mcu::{Addr, Crc32};
use tics_minic::isa::{CkptSite, VarId};
use tics_minic::program::{Instrumentation, Program};
use tics_trace::{CkptCause, SpanKind, TraceEvent};
use tics_vm::{
    CheckpointKind, IntermittentRuntime, Machine, ResumeAction, RuntimeCapabilities, TxDriver,
    VmError,
};

use crate::config::TicsConfig;
use crate::layout::{ckpt, ctrl, RuntimeLayout, MAGIC};

type Result<T> = std::result::Result<T, VmError>;

#[derive(Debug, Clone, Copy)]
struct ExpiresBlock {
    catch_pc: u32,
    expire_at_us: u64,
    undo_mark: u32,
    /// Externally visible output events (prints + published sends) at
    /// block entry. Once the body's output has escaped, the expiry
    /// abort is defused: running the catch arm then would duplicate
    /// output the outside world already observed.
    output_mark: usize,
}

/// Why a checkpoint commit did or did not reach phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitOutcome {
    /// The flag flipped; the new bank is the restore point.
    Committed,
    /// The energy budget could not cover the commit — the device is about
    /// to brown out, and every subsequent store tears to nothing.
    EnergyAbort,
    /// Brown-out corruption defeated every staging attempt; the previous
    /// checkpoint and the undo log are intact, and execution continues.
    VerifyAbort,
}

/// Read-back verification attempts for staging / restore pokes. Each
/// attempt re-draws the corruption RNG, so retries converge whenever the
/// per-store corruption probability is below 1.
const VERIFY_ATTEMPTS: u32 = 16;

/// Delta record header: `u64` sequence, `u32` payload length, `u32`
/// CRC-32 over sequence + length + payload. Public so profilers can
/// recover a record's payload length from its committed byte count.
pub const DELTA_HEADER: u32 = 16;

/// Fixed misc block of every delta payload: 4 × `u32` registers,
/// `u32` atomic depth, `u32` working segment — the bank header fields a
/// restore needs, re-captured at each incremental commit.
const DELTA_MISC: u32 = 24;

/// The TICS runtime: stack segmentation, undo-log memory consistency,
/// double-buffered checkpoints, and time-sensitivity semantics.
///
/// All state that must survive power failures lives in simulated FRAM at
/// the addresses of [`RuntimeLayout`]; the fields here are caches rebuilt
/// by [`IntermittentRuntime::on_boot`] (mirroring how the real runtime
/// re-derives its state from non-volatile structures after a reboot).
#[derive(Debug)]
pub struct TicsRuntime {
    config: TicsConfig,
    layout: Option<RuntimeLayout>,
    working_seg: u32,
    atomic_depth: u32,
    last_ckpt_seg: Option<u32>,
    undo_count: u32,
    io_count: u32,
    next_timer_at: u64,
    pending_shrink_ckpt: bool,
    expires_block: Option<ExpiresBlock>,
    tx: TxDriver,
    /// Next commit sequence number (cache of the delta-chain cursor);
    /// 0 = cold, re-primed from the control block. Sequence numbers are
    /// burned by *attempts*, not commits, so a staged-but-uncommitted
    /// record can never collide with a later committed one.
    journal_next_seq: u64,
    /// Staging offset of the next delta record (end of the chain).
    journal_write_off: u32,
    /// Whether a committed full bank anchors the chain — deltas are
    /// only taken while anchored and while the working segment still
    /// matches the anchoring bank's.
    journal_anchored: bool,
    /// Reusable staging buffer — commit/restore allocate nothing in
    /// steady state.
    scratch: Vec<u8>,
}

impl TicsRuntime {
    /// Creates a TICS runtime with the given buffer configuration.
    #[must_use]
    pub fn new(config: TicsConfig) -> TicsRuntime {
        TicsRuntime {
            config,
            layout: None,
            working_seg: 0,
            atomic_depth: 0,
            last_ckpt_seg: None,
            undo_count: 0,
            io_count: 0,
            next_timer_at: 0,
            pending_shrink_ckpt: false,
            expires_block: None,
            tx: TxDriver::default(),
            journal_next_seq: 0,
            journal_write_off: 0,
            journal_anchored: false,
            scratch: Vec::new(),
        }
    }

    /// The configuration this runtime was built with.
    #[must_use]
    pub fn config(&self) -> &TicsConfig {
        &self.config
    }

    /// The resolved FRAM layout (available once execution has started).
    #[must_use]
    pub fn layout(&self) -> Option<&RuntimeLayout> {
        self.layout.as_ref()
    }

    fn attach(&mut self, m: &mut Machine) -> Result<RuntimeLayout> {
        if let Some(l) = self.layout {
            return Ok(l);
        }
        let l = RuntimeLayout::compute(m.runtime_area_base(), &self.config, &m.loaded().program);
        if !m.mem.layout().fram.contains(l.end) && l.end != m.mem.layout().fram.end {
            return Err(VmError::Load(format!(
                "TICS runtime area ends at {} beyond FRAM {}",
                l.end,
                m.mem.layout().fram
            )));
        }
        if m.mem
            .peek_bytes(l.control, 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            != Ok(MAGIC)
        {
            // First boot on this image: initialize the control block.
            m.mem
                .poke_bytes(l.control.offset(ctrl::MAGIC), &MAGIC.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::CKPT_FLAG), &0u32.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::CKPT_SEQ), &0u64.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::UNDO_COUNT), &0u32.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::DELTA_BASE), &0u64.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::DELTA_TIP), &0u64.to_le_bytes())?;
        }
        self.layout = Some(l);
        Ok(l)
    }

    fn peek_u32(m: &Machine, a: Addr) -> Result<u32> {
        let b = m.mem.peek_bytes(a, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn poke_u32(m: &mut Machine, a: Addr, v: u32) -> Result<()> {
        m.mem.poke_bytes(a, &v.to_le_bytes())?;
        Ok(())
    }

    fn set_undo_count(&mut self, m: &mut Machine, l: &RuntimeLayout, n: u32) -> Result<()> {
        self.undo_count = n;
        Self::poke_u32(m, l.control.offset(ctrl::UNDO_COUNT), n)
    }

    /// CRC-32 over a full bank image with the CRC field itself skipped.
    fn bank_crc(bank: &[u8]) -> u32 {
        let mut h = Crc32::new();
        h.update(&bank[..ckpt::CRC as usize]);
        h.update(&bank[ckpt::SEG_IMAGE as usize..]);
        h.finish()
    }

    /// CRC-32 over a delta record: sequence + length + payload.
    fn record_crc(seq: u64, payload: &[u8]) -> u32 {
        let mut h = Crc32::new();
        h.update(&seq.to_le_bytes());
        h.update(&(payload.len() as u32).to_le_bytes());
        h.update(payload);
        h.finish()
    }

    /// Re-primes the delta-chain cursor from non-volatile state alone:
    /// next sequence past everything ever committed, chain not anchored
    /// — the next checkpoint is a full image.
    fn prime_journal_cold(&mut self, m: &Machine, l: &RuntimeLayout) -> Result<()> {
        let seq = m.mem.peek_u64(l.control.offset(ctrl::CKPT_SEQ))?;
        let tip = m.mem.peek_u64(l.control.offset(ctrl::DELTA_TIP))?;
        self.journal_next_seq = seq.max(tip) + 1;
        self.journal_write_off = 0;
        self.journal_anchored = false;
        Ok(())
    }

    /// Validates the delta record at journal offset `off`: in bounds,
    /// sequence exactly `expected`, structurally a delta payload (misc
    /// block plus a whole number of 8-byte word entries), CRC intact.
    /// Returns the payload length if valid.
    fn validate_delta_record(
        m: &Machine,
        l: &RuntimeLayout,
        off: u32,
        expected: u64,
    ) -> Result<Option<u32>> {
        if off + DELTA_HEADER > l.journal_capacity {
            return Ok(None);
        }
        let rec = l.journal.offset(off);
        let head = m.mem.peek_slice(rec, DELTA_HEADER)?;
        let seq = u64::from_le_bytes(head[0..8].try_into().expect("8-byte seq"));
        let len = u32::from_le_bytes(head[8..12].try_into().expect("4-byte len"));
        let stored = u32::from_le_bytes(head[12..16].try_into().expect("4-byte crc"));
        if seq != expected
            || len < DELTA_MISC
            || !(len - DELTA_MISC).is_multiple_of(8)
            || off + DELTA_HEADER + len > l.journal_capacity
        {
            return Ok(None);
        }
        let payload = m.mem.peek_slice(rec.offset(DELTA_HEADER), len)?;
        if Self::record_crc(seq, payload) != stored {
            return Ok(None);
        }
        Ok(Some(len))
    }

    /// Pokes `bytes` at `a` and reads them back, retrying until the
    /// write actually landed intact. Multi-word burst stores can be
    /// bit-flipped or dropped by a brown-out ([`tics_mcu::CorruptionModel`]);
    /// read-back verification is what makes a *committed* bank
    /// trustworthy. Returns `false` if every attempt was corrupted.
    fn verified_poke(m: &mut Machine, a: Addr, bytes: &[u8]) -> Result<bool> {
        for _ in 0..VERIFY_ATTEMPTS {
            m.mem.poke_bytes(a, bytes)?;
            if m.mem.peek_slice(a, bytes.len() as u32)? == bytes {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Validates checkpoint bank `which` (1 or 2): a committed bank has a
    /// nonzero sequence number and a matching CRC. Returns the sequence
    /// number if valid.
    fn validate_bank(m: &Machine, l: &RuntimeLayout, which: u32) -> Result<Option<u64>> {
        let buf = l.ckpt_buffer(which);
        let bank = m.mem.peek_slice(buf, ckpt::HEADER + l.seg_size)?;
        let s = ckpt::SEQ as usize;
        let c = ckpt::CRC as usize;
        let seq = u64::from_le_bytes(bank[s..s + 8].try_into().expect("8-byte seq"));
        let stored = u32::from_le_bytes(bank[c..c + 4].try_into().expect("4-byte crc"));
        if seq == 0 || Self::bank_crc(bank) != stored {
            return Ok(None);
        }
        Ok(Some(seq))
    }

    /// Commits a checkpoint (two-phase, §4): either a *full* image —
    /// registers + runtime state + the working segment into the inactive
    /// buffer — or, when a committed full bank of this very segment
    /// anchors the delta chain, an *incremental* record carrying only
    /// the words the dirty-word monitor saw change since the previous
    /// commit. Both are stamped with a monotonic sequence number and a
    /// CRC-32 and verified by read-back; phase 2 is a single ≤ 8-byte
    /// (corruption-immune) store. Clears the undo log.
    fn commit_checkpoint(&mut self, m: &mut Machine, cause: CkptCause) -> Result<CommitOutcome> {
        let l = self.attach(m)?;
        let mut span = m.span(SpanKind::Checkpoint);
        let m = &mut *span;
        if self.journal_next_seq == 0 {
            self.prime_journal_cold(m, &l)?;
        }
        let seg = l.segment(self.working_seg);
        let full_bytes = ckpt::HEADER + l.seg_size;
        let dirty = m.mem.count_dirty_words(seg.start, l.seg_size);
        let plen = DELTA_MISC + 8 * dirty;
        // Incremental path: the chain must be anchored by a committed
        // full image of this very segment, the record must fit the
        // journal, and the delta must be meaningfully smaller than a
        // full image — so restore stays O(image): one full-image
        // restore plus a bounded chain replay.
        // The chain is byte-capped well below the journal's capacity:
        // every boot replays the whole chain after the full-image
        // restore, so unbounded chains would inflate the restore charge
        // past what a short on-period can cover — the exact livelock
        // incremental checkpointing exists to prevent.
        let chain_cap = l.journal_capacity.min(full_bytes.max(512));
        let take_delta = self.journal_anchored
            && self.last_ckpt_seg == Some(self.working_seg)
            && self.journal_write_off + DELTA_HEADER + plen <= chain_cap
            && 4 * plen < 3 * full_bytes;
        // Sequence numbers are burned per attempt (shared between full
        // banks and delta records), so an aborted attempt can never
        // collide with a later committed record.
        let seq = self.journal_next_seq;
        self.journal_next_seq += 1;
        let committed_bytes;
        if take_delta {
            // Phase 1: stage the delta record — the misc block (the
            // bank-header fields a restore needs) plus one
            // (address, value) entry per dirty word — at the end of the
            // chain, CRC-stamped and read-back verified.
            self.scratch.clear();
            for w in m.regs.to_words() {
                self.scratch.extend_from_slice(&w.to_le_bytes());
            }
            self.scratch
                .extend_from_slice(&self.atomic_depth.to_le_bytes());
            self.scratch
                .extend_from_slice(&self.working_seg.to_le_bytes());
            {
                let scratch = &mut self.scratch;
                let seg_end = seg.start.raw() + l.seg_size;
                m.mem.for_each_dirty_word(seg.start, l.seg_size, |w| {
                    let lo = w.raw().max(seg.start.raw());
                    let n = (w.raw() + 4).min(seg_end) - lo;
                    let src = m
                        .mem
                        .peek_slice(Addr(lo), n)
                        .expect("dirty word inside the working segment");
                    let mut val = [0u8; 4];
                    val[..n as usize].copy_from_slice(src);
                    scratch.extend_from_slice(&lo.to_le_bytes());
                    scratch.extend_from_slice(&val);
                });
            }
            let rec = l.journal.offset(self.journal_write_off);
            let mut head = [0u8; DELTA_HEADER as usize];
            head[0..8].copy_from_slice(&seq.to_le_bytes());
            head[8..12].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
            head[12..16].copy_from_slice(&Self::record_crc(seq, &self.scratch).to_le_bytes());
            if !(Self::verified_poke(m, rec, &head)?
                && Self::verified_poke(m, rec.offset(DELTA_HEADER), &self.scratch)?)
            {
                // Corruption defeated every staging attempt. Abort
                // cleanly: the committed chain is untouched.
                return Ok(CommitOutcome::VerifyAbort);
            }
            // Phase 2: the 8-byte tip store makes the record part of
            // the restore point — but only if the energy budget covers
            // the whole commit.
            let cost = m.mem.costs().checkpoint_cost(plen);
            if !m.charge_atomic(cost) {
                return Ok(CommitOutcome::EnergyAbort);
            }
            m.mem
                .poke_bytes(l.control.offset(ctrl::DELTA_TIP), &seq.to_le_bytes())?;
            self.journal_write_off += DELTA_HEADER + plen;
            committed_bytes = u64::from(DELTA_HEADER + plen);
        } else {
            let active = Self::peek_u32(m, l.control.offset(ctrl::CKPT_FLAG))?;
            let target = if active == 1 { 2 } else { 1 };
            let buf = l.ckpt_buffer(target);
            // Phase 1: assemble the whole bank host-side (registers,
            // runtime state, sequence number, CRC, segment image), then
            // stage it into the inactive buffer with read-back
            // verification — a brown-out can corrupt the multi-word
            // burst store, and a corrupted bank must never become the
            // restore point.
            self.scratch.clear();
            for w in m.regs.to_words() {
                self.scratch.extend_from_slice(&w.to_le_bytes());
            }
            self.scratch
                .extend_from_slice(&self.atomic_depth.to_le_bytes());
            self.scratch
                .extend_from_slice(&self.working_seg.to_le_bytes());
            self.scratch.extend_from_slice(&seq.to_le_bytes());
            self.scratch.extend_from_slice(&[0u8; 4]); // CRC, stamped below
            self.scratch
                .extend_from_slice(m.mem.peek_slice(seg.start, l.seg_size)?);
            let crc = Self::bank_crc(&self.scratch);
            self.scratch[ckpt::CRC as usize..ckpt::SEG_IMAGE as usize]
                .copy_from_slice(&crc.to_le_bytes());
            if !Self::verified_poke(m, buf, &self.scratch)? {
                // Corruption defeated every staging attempt. Abort
                // cleanly: the previous checkpoint and the undo log are
                // intact.
                return Ok(CommitOutcome::VerifyAbort);
            }
            // Phase 2: a single flag write makes it the restore point —
            // but only if the energy budget covers the whole commit.
            // Dying mid-commit leaves the previous checkpoint valid.
            let cost = m.mem.costs().checkpoint_cost(l.seg_size);
            if !m.charge_atomic(cost) {
                return Ok(CommitOutcome::EnergyAbort);
            }
            Self::poke_u32(m, l.control.offset(ctrl::CKPT_FLAG), target)?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::CKPT_SEQ), &seq.to_le_bytes())?;
            // The new full image anchors a fresh (empty) delta chain.
            m.mem
                .poke_bytes(l.control.offset(ctrl::DELTA_BASE), &seq.to_le_bytes())?;
            m.mem
                .poke_bytes(l.control.offset(ctrl::DELTA_TIP), &0u64.to_le_bytes())?;
            self.journal_write_off = 0;
            self.journal_anchored = true;
            committed_bytes = u64::from(full_bytes);
        }
        // The words this commit captured are clean again, and the log
        // only needs to undo writes newer than this checkpoint.
        m.mem.clear_dirty(seg.start, l.seg_size);
        self.set_undo_count(m, &l, 0)?;
        self.last_ckpt_seg = Some(self.working_seg);
        m.emit(TraceEvent::CheckpointCommit {
            cause,
            bytes: committed_bytes,
        });
        // Virtualized I/O: the commit is the transmission point — every
        // buffered send now becomes externally visible, exactly once.
        if self.io_count > 0 {
            for i in 0..self.io_count {
                let v = Self::peek_u32(m, l.io_slot(i))? as i32;
                m.record_send(v);
                m.mem.add_cycles(8);
            }
            self.io_count = 0;
            Self::poke_u32(m, l.control.offset(ctrl::IO_COUNT), 0)?;
        }
        Ok(CommitOutcome::Committed)
    }

    /// Rolls back undo-log entries down to `mark` (newest first).
    fn rollback_to_mark(&mut self, m: &mut Machine, mark: u32) -> Result<()> {
        let l = self.attach(m)?;
        let mut span = m.span(SpanKind::Rollback);
        let m = &mut *span;
        let mut i = self.undo_count;
        while i > mark {
            i -= 1;
            let slot = l.undo_slot(i);
            let addr = Addr(Self::peek_u32(m, slot)?);
            let old = Self::peek_u32(m, slot.offset(4))?;
            Self::poke_u32(m, addr, old)?;
            m.mem.add_cycles(m.mem.costs().rollback_cost(4));
            m.emit(TraceEvent::Rollback { bytes: 4 });
        }
        self.set_undo_count(m, &l, mark)
    }

    fn arm_timer(&mut self, m: &Machine) {
        if let Some(p) = self.config.timer_period_us {
            self.next_timer_at = m.cycles() + p;
        }
    }
}

impl IntermittentRuntime for TicsRuntime {
    fn name(&self) -> &'static str {
        "TICS"
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities::tics()
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation != Instrumentation::Tics {
            return Err(VmError::IncompatibleInstrumentation {
                expected: "Tics".into(),
                found: format!("{:?}", program.instrumentation),
            });
        }
        let max_frame = program.max_frame_size();
        if max_frame > self.config.seg_size {
            return Err(VmError::Load(format!(
                "segment size {} smaller than the largest frame {} — \
                 the maximum stack frame dictates the minimum block size (§3.1.1)",
                self.config.seg_size, max_frame
            )));
        }
        Ok(())
    }

    fn recycle(&mut self) {
        self.layout = None;
        self.working_seg = 0;
        self.atomic_depth = 0;
        self.last_ckpt_seg = None;
        self.undo_count = 0;
        self.io_count = 0;
        self.next_timer_at = 0;
        self.pending_shrink_ckpt = false;
        self.expires_block = None;
        self.tx.recycle();
        self.journal_next_seq = 0;
        self.journal_write_off = 0;
        self.journal_anchored = false;
        self.scratch.clear();
    }

    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction> {
        let l = self.attach(m)?;
        self.atomic_depth = 0;
        self.pending_shrink_ckpt = false;
        self.expires_block = None;
        self.arm_timer(m);
        // Buffered-but-uncommitted transmissions die with the failure —
        // the execution that produced them is being rolled back.
        self.io_count = 0;
        Self::poke_u32(m, l.control.offset(ctrl::IO_COUNT), 0)?;
        // Anything written after the last checkpoint is rolled back
        // before execution resumes (§3.1.2).
        self.undo_count = Self::peek_u32(m, l.control.offset(ctrl::UNDO_COUNT))?;
        self.rollback_to_mark(m, 0)?;
        let flag = Self::peek_u32(m, l.control.offset(ctrl::CKPT_FLAG))?;
        if flag == 0 {
            // No committed checkpoint (a fully staged bank whose flag
            // never flipped is an *uncommitted* checkpoint and must not
            // be restored): plain restart, not a recovery.
            self.working_seg = 0;
            self.last_ckpt_seg = None;
            self.prime_journal_cold(m, &l)?;
            return Ok(ResumeAction::Restart {
                reinit_globals: false,
            });
        }
        // Validate before trusting: the bank's CRC catches any corruption
        // the staging write-back verification could not have seen (e.g.
        // FRAM disturbed after commit, or a clobbered image planted by a
        // fault-injection harness).
        let v_a = Self::validate_bank(m, &l, 1)?;
        let v_b = Self::validate_bank(m, &l, 2)?;
        let active_valid = match flag {
            1 => v_a.is_some(),
            2 => v_b.is_some(),
            _ => false, // corrupt flag: fall through to highest-seq repair
        };
        let restore_from = if active_valid {
            flag
        } else {
            // Self-healing fallback: prefer the valid bank with the
            // highest sequence number; with neither valid, degrade
            // gracefully to a fresh start rather than executing from a
            // corrupted checkpoint.
            let best = match (v_a, v_b) {
                (Some(a), Some(b)) => Some(if a >= b { 1 } else { 2 }),
                (Some(_), None) => Some(1),
                (None, Some(_)) => Some(2),
                (None, None) => None,
            };
            match best {
                Some(w) => {
                    Self::poke_u32(m, l.control.offset(ctrl::CKPT_FLAG), w)?;
                    m.emit(TraceEvent::Recovery {
                        invalid_banks: 1,
                        fresh_start: false,
                    });
                    w
                }
                None => {
                    Self::poke_u32(m, l.control.offset(ctrl::CKPT_FLAG), 0)?;
                    m.emit(TraceEvent::Recovery {
                        invalid_banks: 2,
                        fresh_start: true,
                    });
                    self.working_seg = 0;
                    self.last_ckpt_seg = None;
                    self.prime_journal_cold(m, &l)?;
                    return Ok(ResumeAction::Restart {
                        reinit_globals: true,
                    });
                }
            }
        };
        let buf = l.ckpt_buffer(restore_from);
        let bank_seq = match restore_from {
            1 => v_a,
            _ => v_b,
        }
        .expect("selected bank passed validation");
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = Self::peek_u32(m, buf.offset(ckpt::REGS + 4 * i as u32))?;
        }
        self.atomic_depth = Self::peek_u32(m, buf.offset(ckpt::ATOMIC_DEPTH))?;
        self.working_seg = Self::peek_u32(m, buf.offset(ckpt::WORKING_SEG))?;
        let mut span = m.span(SpanKind::Restore);
        let m = &mut *span;
        let seg = l.segment(self.working_seg);
        // The full image restores the *entire* segment, wiping every
        // uncommitted store — the precondition for replaying the delta
        // chain on top of it.
        self.scratch.clear();
        self.scratch
            .extend_from_slice(m.mem.peek_slice(buf.offset(ckpt::SEG_IMAGE), l.seg_size)?);
        if !Self::verified_poke(m, seg.start, &self.scratch)? {
            return Err(VmError::Trap(
                "checkpoint restore failed read-back verification".into(),
            ));
        }
        let chain_base = m.mem.peek_u64(l.control.offset(ctrl::DELTA_BASE))?;
        let tip = m.mem.peek_u64(l.control.offset(ctrl::DELTA_TIP))?;
        let mut replayed = 0u32;
        if chain_base == bank_seq && tip > bank_seq {
            // Replay the delta chain in sequence order. Each record is
            // validated before it is trusted; a record that fails ends
            // the walk — the state is then the longest valid prefix,
            // itself a committed checkpoint — with a journaled
            // Recovery, never a silent restore of stale words.
            let seg_end = seg.start.raw() + l.seg_size;
            let mut off = 0u32;
            let mut last = bank_seq;
            let mut expected = bank_seq + 1;
            let mut broken = false;
            let mut last_misc: Option<[u8; DELTA_MISC as usize]> = None;
            while expected <= tip {
                let Some(plen) = Self::validate_delta_record(m, &l, off, expected)? else {
                    broken = true;
                    break;
                };
                let rec = l.journal.offset(off);
                let mut misc = [0u8; DELTA_MISC as usize];
                misc.copy_from_slice(m.mem.peek_slice(rec.offset(DELTA_HEADER), DELTA_MISC)?);
                last_misc = Some(misc);
                let mut p = DELTA_MISC;
                while p + 8 <= plen {
                    let e = m.mem.peek_slice(rec.offset(DELTA_HEADER + p), 8)?;
                    let lo = u32::from_le_bytes(e[0..4].try_into().expect("4-byte addr"));
                    let val: [u8; 4] = e[4..8].try_into().expect("4-byte value");
                    if lo >= seg.start.raw() && lo < seg_end {
                        let n = ((lo & !3) + 4).min(seg_end) - lo;
                        m.mem.poke_bytes(Addr(lo), &val[..n as usize])?;
                    }
                    p += 8;
                }
                last = expected;
                expected += 1;
                replayed += DELTA_HEADER + plen;
                off += DELTA_HEADER + plen;
            }
            if let Some(misc) = last_misc {
                // The last valid record's misc block holds the
                // registers at that commit.
                for (i, w) in words.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(
                        misc[4 * i..4 * i + 4].try_into().expect("4-byte word"),
                    );
                }
                self.atomic_depth =
                    u32::from_le_bytes(misc[16..20].try_into().expect("4-byte depth"));
            }
            if broken {
                m.emit(TraceEvent::Recovery {
                    invalid_banks: 1,
                    fresh_start: false,
                });
                self.journal_next_seq = tip.max(last) + 1;
                self.journal_write_off = off;
                self.journal_anchored = false;
            } else {
                self.journal_next_seq = last + 1;
                self.journal_write_off = off;
                self.journal_anchored = true;
            }
        } else if chain_base == bank_seq {
            // Empty chain anchored at this bank: extendable in place.
            self.journal_next_seq = bank_seq.max(tip) + 1;
            self.journal_write_off = 0;
            self.journal_anchored = true;
        } else {
            // The chain belongs to a different full image (e.g. the
            // active bank was corrupted and restore fell back to the
            // older one): ignore it; the next checkpoint is a full
            // image that re-anchors the chain.
            self.journal_next_seq = bank_seq.max(chain_base).max(tip) + 1;
            self.journal_write_off = 0;
            self.journal_anchored = false;
        }
        m.mem.clear_dirty(seg.start, l.seg_size);
        m.regs = tics_mcu::Registers::from_words(words);
        self.last_ckpt_seg = Some(self.working_seg);
        // A restore whose cost exceeds the on-period dies mid-way; the
        // executor injects the failure before any instruction runs.
        let cost = m.mem.costs().restore_cost(l.seg_size + replayed);
        let _completed = m.charge_atomic(cost);
        m.emit(TraceEvent::Restore {
            bytes: u64::from(ckpt::HEADER + l.seg_size) + u64::from(replayed),
        });
        Ok(ResumeAction::Restored)
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        fidx: u16,
        frame_size: u32,
        arg_bytes: u32,
    ) -> Result<Addr> {
        let l = self.attach(m)?;
        if frame_size > l.seg_size {
            return Err(VmError::StackOverflow {
                detail: format!(
                    "frame of {frame_size} B exceeds segment size {}",
                    l.seg_size
                ),
            });
        }
        // The inserted entry check (Figure 7, lines 2-3) costs a compare
        // per call.
        if m.loaded().program.functions[fidx as usize].entry_checked {
            m.mem.add_cycles(4);
        }
        if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            // Fresh program start.
            self.working_seg = 0;
            return Ok(l.segment(0).start);
        }
        let seg = l.segment(self.working_seg);
        if seg.contains_range(m.regs.sp, frame_size) {
            return Ok(m.regs.sp);
        }
        // Stack grow: the working stack moves to the next segment and the
        // arguments are copied across (done by the VM after we return).
        if self.working_seg + 1 >= l.n_segments {
            return Err(VmError::StackOverflow {
                detail: format!(
                    "segment array exhausted ({} segments of {} B)",
                    l.n_segments, l.seg_size
                ),
            });
        }
        self.working_seg += 1;
        let mut span = m.span(SpanKind::StackSegment);
        let m = &mut *span;
        m.mem.add_cycles(m.mem.costs().stack_switch_cost(arg_bytes));
        m.emit(TraceEvent::StackGrow);
        Ok(l.segment(self.working_seg).start)
    }

    fn free_frame(&mut self, m: &mut Machine, fp: Addr) -> Result<()> {
        let l = self.attach(m)?;
        let caller_fp = Addr(Self::peek_u32(m, fp.offset(4))?);
        let (Some(cur), Some(caller)) = (l.segment_of(fp), l.segment_of(caller_fp)) else {
            return Ok(()); // bottom frame (caller fp is 0)
        };
        if caller < cur {
            // Stack shrink: the working stack points back to the caller's
            // segment. If the last checkpoint saved a segment that is now
            // above the live stack, the new working stack must be
            // checkpointed before it is modified (§3.1.1) — committed at
            // the next instruction boundary, when the return has
            // completed and the registers are consistent.
            self.working_seg = caller;
            {
                let mut span = m.span(SpanKind::StackSegment);
                let m = &mut *span;
                m.mem.add_cycles(m.mem.costs().stack_switch_cost(0));
                m.emit(TraceEvent::StackShrink);
            }
            // Checkpoint when the previously checkpointed segment is now
            // above the live stack (its image would restore into dead
            // space), or when no restore point exists at all — this is
            // the "working-stack-change driven checkpoint" of Figure 7
            // and §5.3.2.
            if self.last_ckpt_seg.is_none_or(|s| s > caller) {
                self.pending_shrink_ckpt = true;
            }
        }
        Ok(())
    }

    fn logged_store(&mut self, m: &mut Machine, addr: Addr, len: u32) -> Result<()> {
        let l = self.attach(m)?;
        if l.segment(self.working_seg).contains_range(addr, len) {
            // Direct write to the working stack: no logging needed, just
            // the pointer classification cost (Table 4, "no log"). Still
            // undo-log work for attribution purposes — the span covers
            // classification as well as appends.
            let mut span = m.span(SpanKind::UndoLog);
            let m = &mut *span;
            m.mem.add_cycles(m.mem.costs().ptr_check);
            return Ok(());
        }
        if self.undo_count >= l.undo_capacity {
            // Forced checkpoint to drain the log and guarantee forward
            // progress (§3.1.2).
            match self.commit_checkpoint(m, CkptCause::Forced)? {
                CommitOutcome::Committed => {}
                // The device is about to brown out: every subsequent
                // store tears to nothing, so skipping the (out-of-room)
                // append cannot lose an old value.
                CommitOutcome::EnergyAbort => return Ok(()),
                // Corruption defeated the drain; appending past the log
                // would clobber neighbouring structures. Die loudly
                // rather than corrupt silently.
                CommitOutcome::VerifyAbort => {
                    return Err(VmError::Trap(
                        "undo log full and checkpoint drain failed verification".into(),
                    ))
                }
            }
        }
        let mut span = m.span(SpanKind::UndoLog);
        let m = &mut *span;
        let old = Self::peek_u32(m, addr)?;
        let slot = l.undo_slot(self.undo_count);
        Self::poke_u32(m, slot, addr.raw())?;
        Self::poke_u32(m, slot.offset(4), old)?;
        let n = self.undo_count + 1;
        self.set_undo_count(m, &l, n)?;
        m.mem.add_cycles(m.mem.costs().undo_log_cost(len));
        m.emit(TraceEvent::UndoAppend {
            bytes: u64::from(len),
        });
        Ok(())
    }

    fn tx_driver(&mut self) -> Option<&mut TxDriver> {
        Some(&mut self.tx)
    }

    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()> {
        // A checkpoint *inside* an open peripheral transaction would make
        // replay re-drive wire bytes under the same attempt number; defer
        // to the next site outside the transaction.
        if self.tx.in_txn() {
            return Ok(());
        }
        match kind {
            CheckpointKind::Timer | CheckpointKind::Voltage if self.atomic_depth > 0 => Ok(()),
            CheckpointKind::Site(CkptSite::VoltageCheck) => Ok(()), // not a TICS site
            CheckpointKind::Site(_) => self.commit_checkpoint(m, CkptCause::Site).map(|_| ()),
            CheckpointKind::Timer => self.commit_checkpoint(m, CkptCause::Timer).map(|_| ()),
            CheckpointKind::Voltage => self.commit_checkpoint(m, CkptCause::Voltage).map(|_| ()),
        }
    }

    fn on_instruction(&mut self, m: &mut Machine) -> Result<()> {
        if self.pending_shrink_ckpt && !self.tx.in_txn() {
            self.pending_shrink_ckpt = false;
            self.commit_checkpoint(m, CkptCause::Forced)?;
        }
        if let Some(period) = self.config.timer_period_us {
            if m.cycles() >= self.next_timer_at {
                self.next_timer_at = m.cycles() + period;
                if self.atomic_depth == 0 && !self.tx.in_txn() {
                    self.commit_checkpoint(m, CkptCause::Timer)?;
                }
            }
        }
        if let Some(block) = self.expires_block {
            if m.now().as_micros() >= block.expire_at_us {
                if m.stats().prints.len() + m.stats().sends_timed.len() > block.output_mark {
                    // The body's output escaped while the reading was
                    // still fresh; aborting now cannot un-print it, and
                    // the catch arm would emit a duplicate. Let the
                    // block run to its normal end instead.
                    if let Some(b) = self.expires_block.as_mut() {
                        b.expire_at_us = u64::MAX;
                    }
                    return Ok(());
                }
                // Expiration timer fired: undo the block's writes and
                // transfer control to the catch handler (§3.2.3).
                self.rollback_to_mark(m, block.undo_mark)?;
                self.expires_block = None;
                self.atomic_depth = self.atomic_depth.saturating_sub(1);
                m.regs.pc = block.catch_pc;
                // Discard partial operand state of the aborted block.
                let f = m.loaded().function_at(block.catch_pc);
                let operand_base = Machine::frame_body(m.regs.fp)
                    .offset(f.arg_bytes() + u32::from(f.locals_bytes));
                m.regs.sp = operand_base;
                m.emit(TraceEvent::ExpiresCatch);
            }
        }
        Ok(())
    }

    fn on_power_failure(&mut self, _m: &mut Machine) {
        self.expires_block = None;
        self.pending_shrink_ckpt = false;
    }

    fn on_isr_enter(&mut self, m: &mut Machine) -> Result<()> {
        // Checkpoints are disabled while servicing interrupts (§4).
        self.atomic_begin(m)
    }

    fn on_isr_exit(&mut self, m: &mut Machine) -> Result<()> {
        // Implicit checkpoint right after return-from-interrupt: if power
        // fails before it completes, the ISR appears not to have run.
        self.atomic_end(m)?;
        if self.tx.in_txn() {
            return Ok(());
        }
        self.commit_checkpoint(m, CkptCause::Isr).map(|_| ())
    }

    fn timestamp_var(&mut self, m: &mut Machine, var: VarId) -> Result<()> {
        let l = self.attach(m)?;
        let slot = l.timestamp_slot(var);
        // Undo-log the old timestamp before overwriting: a replayed life
        // re-timestamps the same slot, and if the next boot rewinds the
        // data without rewinding the timestamp, a rolled-back reading
        // pairs with the newer timestamp and passes an expiry check it
        // should fail (write-after-restore hazard on the slot).
        self.logged_store(m, slot, 4)?;
        self.logged_store(m, slot.offset(4), 4)?;
        let now = m.now().as_micros();
        m.mem.poke_bytes(slot, &now.to_le_bytes())?;
        m.mem.add_cycles(10);
        Ok(())
    }

    fn expires_check(&mut self, m: &mut Machine, var: VarId) -> Result<bool> {
        let l = self.attach(m)?;
        let ttl = m.loaded().program.annotated[var as usize].ttl_us;
        m.mem.add_cycles(12);
        if ttl == 0 {
            return Ok(true); // timestamped but never expires (§3.2)
        }
        let ts = m.mem.peek_u64(l.timestamp_slot(var))?;
        Ok(m.now().as_micros() < ts.saturating_add(ttl))
    }

    fn timely_check(&mut self, m: &mut Machine, deadline_ms: i32) -> Result<bool> {
        m.mem.add_cycles(12);
        Ok((m.now().as_micros() / 1_000) < deadline_ms.max(0) as u64)
    }

    fn atomic_begin(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        self.atomic_depth += 1;
        Ok(())
    }

    fn atomic_end(&mut self, m: &mut Machine) -> Result<()> {
        let _ = m;
        self.atomic_depth = self.atomic_depth.saturating_sub(1);
        Ok(())
    }

    fn expires_block_begin(&mut self, m: &mut Machine, var: VarId, catch_pc: u32) -> Result<()> {
        if self.expires_block.is_some() {
            return Err(VmError::Trap(
                "nested @expires/catch blocks are not supported".into(),
            ));
        }
        let l = self.attach(m)?;
        let ttl = m.loaded().program.annotated[var as usize].ttl_us;
        let ts = m.mem.peek_u64(l.timestamp_slot(var))?;
        let expire_at_us = if ttl == 0 {
            u64::MAX
        } else {
            ts.saturating_add(ttl)
        };
        if m.now().as_micros() >= expire_at_us {
            // Already stale on entry: straight to the catch handler.
            m.regs.pc = catch_pc;
            m.emit(TraceEvent::ExpiresCatch);
            return Ok(());
        }
        self.atomic_begin(m)?;
        self.expires_block = Some(ExpiresBlock {
            catch_pc,
            expire_at_us,
            undo_mark: self.undo_count,
            output_mark: m.stats().prints.len() + m.stats().sends_timed.len(),
        });
        Ok(())
    }

    fn expires_block_end(&mut self, m: &mut Machine) -> Result<()> {
        if self.expires_block.take().is_some() {
            self.atomic_end(m)?;
            // The paper seals time blocks with a checkpoint (deferred if a
            // peripheral transaction is still open — see `checkpoint`).
            if !self.tx.in_txn() {
                self.commit_checkpoint(m, CkptCause::Site)?;
            }
        }
        Ok(())
    }

    fn io_send(&mut self, m: &mut Machine, value: i32) -> Result<bool> {
        if !self.config.virtualize_io {
            return Ok(false);
        }
        let l = self.attach(m)?;
        if self.io_count >= l.io_capacity {
            // Commit to drain the buffer (also publishes it).
            match self.commit_checkpoint(m, CkptCause::Forced)? {
                CommitOutcome::Committed => {}
                // The commit died on the energy deadline; the device is
                // about to brown out — the send is lost with this
                // execution, exactly as an un-virtualized radio would
                // lose a half-clocked packet.
                CommitOutcome::EnergyAbort => return Ok(true),
                // Corruption defeated the drain: dropping the send here
                // while execution continues would be a silent loss.
                CommitOutcome::VerifyAbort => {
                    return Err(VmError::Trap(
                        "I/O buffer full and checkpoint drain failed verification".into(),
                    ))
                }
            }
        }
        Self::poke_u32(m, l.io_slot(self.io_count), value as u32)?;
        self.io_count += 1;
        Self::poke_u32(m, l.control.offset(ctrl::IO_COUNT), self.io_count)?;
        m.mem.add_cycles(16);
        Ok(true)
    }
}

/// Reads the valid-checkpoint flag (0 = none, 1 = buffer A, 2 = buffer B)
/// from the runtime's persistent control block — a window into the
/// two-phase commit protocol for tests and debugging. Returns `None`
/// before the runtime has attached to a machine.
#[must_use]
pub fn ctrl_flag(m: &Machine, rt: &TicsRuntime) -> Option<u32> {
    let l = rt.layout()?;
    TicsRuntime::peek_u32(m, l.control.offset(ctrl::CKPT_FLAG)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_clock::PerfectClock;
    use tics_energy::{ContinuousPower, PeriodicTrace, RecordedTrace};
    use tics_minic::{compile, opt::OptLevel, passes};
    use tics_vm::{Executor, MachineConfig, RunOutcome};

    fn tics_machine(src: &str, config: MachineConfig) -> Machine {
        let mut prog = compile(src, OptLevel::O1).unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        Machine::with_clock(prog, config, Box::new(PerfectClock::new())).unwrap()
    }

    fn run_intermittent(src: &str, on_us: u64, off_us: u64) -> (RunOutcome, Machine) {
        let mut m = tics_machine(src, MachineConfig::default());
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .with_time_budget(500_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(on_us, off_us))
            .unwrap();
        (out, m)
    }

    #[test]
    fn continuous_power_runs_programs() {
        let mut m = tics_machine(
            "int main() { int s = 0; for (int i = 0; i < 50; i++) { s += i; } return s; }",
            MachineConfig::default(),
        );
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(1225));
    }

    #[test]
    fn survives_frequent_power_failures() {
        // ~1.3k instructions of work with power failing every 3 ms.
        let (out, m) = run_intermittent(
            "int g;
             int main() {
                 for (int i = 0; i < 100; i++) { g = g + i; checkpoint(); }
                 return g;
             }",
            3_000,
            500,
        );
        assert_eq!(out.exit_code(), Some(4950));
        assert!(
            m.stats().power_failures > 0,
            "test must actually fail power"
        );
        assert!(m.stats().restores > 0);
    }

    /// Batched detail emission must be invisible to any observer: the
    /// fully detailed trace of an intermittent run is byte-identical to
    /// the per-event-emission trace, and the derived stats match.
    #[test]
    fn batched_emission_matches_per_event_stream() {
        let src = "int g;
             int main() {
                 for (int i = 0; i < 40; i++) { g = g + i; checkpoint(); }
                 return g;
             }";
        let run = |batching: bool| {
            let mut m = tics_machine(src, MachineConfig::default());
            m.trace_mut().set_detailed(true);
            m.set_detail_batching(batching);
            let mut rt = TicsRuntime::new(TicsConfig::default());
            let out = Executor::new()
                .with_time_budget(500_000_000)
                .run(&mut m, &mut rt, &mut PeriodicTrace::new(3_000, 500))
                .unwrap();
            (out, m)
        };
        let (out_b, m_b) = run(true);
        let (out_u, m_u) = run(false);
        assert_eq!(out_b.exit_code(), Some(780));
        assert_eq!(out_u.exit_code(), Some(780));
        assert!(m_b.stats().power_failures > 0, "must exercise outages");
        assert!(
            m_b.trace().records().iter().any(|r| r.event.is_detail()),
            "detailed sink must capture detail events"
        );
        assert_eq!(m_b.trace().records(), m_u.trace().records());
        assert_eq!(m_b.stats().instructions, m_u.stats().instructions);
        assert_eq!(m_b.stats().checkpoint_bytes, m_u.stats().checkpoint_bytes);
    }

    #[test]
    fn recursion_with_pointers_survives_failures() {
        let mut prog = compile(
            "int scratch[4];
             int fib(int n) {
                 int *p = scratch;
                 *p = n;
                 if (n < 2) return n;
                 return fib(n-1) + fib(n-2);
             }
             int main() { return fib(10); }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        // A 3 ms timer bounds the replay window; power fails every 8 ms,
        // well before fib(10) completes from scratch.
        let mut rt = TicsRuntime::new(TicsConfig::s2().with_timer(Some(3_000)));
        let out = Executor::new()
            .with_time_budget(1_000_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(8_000, 1_000))
            .unwrap();
        assert_eq!(out.exit_code(), Some(55));
        assert!(m.stats().power_failures > 0);
        assert!(
            m.stats().undo_log_appends > 0,
            "global pointer stores are logged"
        );
    }

    #[test]
    fn stack_grow_and_shrink_are_tracked() {
        // Nested calls with big frames force segment changes.
        let (out, m) = run_intermittent(
            "int leaf(int x) { int pad[40]; pad[0] = x; return pad[0] + 1; }
             int mid(int x) { int pad[40]; pad[1] = leaf(x); return pad[1] + 1; }
             int main() { int s = 0; for (int i = 0; i < 5; i++) { s += mid(i); } return s; }",
            50_000,
            1_000,
        );
        assert_eq!(out.exit_code(), Some(1 + 2 + 3 + 4 + 10));
        assert!(m.stats().stack_grows > 0);
        assert!(m.stats().stack_shrinks > 0);
    }

    #[test]
    fn global_increments_are_exactly_once_per_loop() {
        // The Figure 3(a) WAR scenario: without undo logging, re-executed
        // code after a restore would double-increment `len`. With timer
        // checkpoints mid-loop and power failures, the final count must
        // still be exact.
        let mut prog = compile(
            "int len;
             int main() {
                 for (int i = 0; i < 2000; i++) {
                     len = len + 1;
                 }
                 return len;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::s2_star()); // 10 ms timer
        let out = Executor::new()
            .with_time_budget(1_000_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(25_000, 300))
            .unwrap();
        assert_eq!(out.exit_code(), Some(2000), "WAR consistency violated");
        assert!(m.stats().power_failures > 0);
        assert!(m.stats().restores > 0);
    }

    #[test]
    fn undo_log_overflow_forces_checkpoint() {
        let mut prog = compile(
            "int a[300];
             int main() {
                 for (int i = 0; i < 300; i++) { a[i] = i; }
                 return a[299];
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        // Tiny undo log: 16 entries.
        let mut rt = TicsRuntime::new(TicsConfig {
            undo_capacity: 16,
            ..TicsConfig::default()
        });
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(299));
        assert!(
            m.stats().checkpoints >= 300 / 16,
            "forced checkpoints expected, got {}",
            m.stats().checkpoints
        );
    }

    #[test]
    fn segment_array_exhaustion_is_stack_overflow() {
        let mut prog = compile(
            "int deep(int n) { int pad[30]; pad[0] = n; if (n == 0) return 0; return deep(n-1) + pad[0]; }
             int main() { return deep(50); }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default()); // 8 segments
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }));
    }

    #[test]
    fn deep_recursion_fits_with_more_segments() {
        let mut prog = compile(
            "int deep(int n) { int pad[30]; pad[0] = n; if (n == 0) return 0; return deep(n-1) + pad[0]; }
             int main() { return deep(50); }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default().with_segments(60));
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some((1..=50).sum::<i32>()));
    }

    #[test]
    fn timer_checkpoints_enable_progress_without_manual_sites() {
        // No checkpoint() calls at all: only the 10 ms timer saves state,
        // so a long loop still completes under a 30 ms power period.
        let mut prog = compile(
            "int g;
             int main() {
                 for (int i = 0; i < 2000; i++) { g = g + 1; }
                 return g;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::s2_star());
        let out = Executor::new()
            .with_time_budget(1_000_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(30_000, 1_000))
            .unwrap();
        assert_eq!(out.exit_code(), Some(2000));
        assert!(m.stats().checkpoints > 0);
    }

    #[test]
    fn starvation_without_timer_when_no_sites_fit() {
        // Power period shorter than the whole program, no checkpoint
        // sites, no timer: TICS restarts forever — starvation, detected.
        let mut prog = compile(
            "int g;
             int main() {
                 for (int i = 0; i < 2000; i++) { g = g + 1; }
                 return g;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::s2()); // no timer
        let out = Executor::new()
            .with_starvation_detection(10)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(10_000, 1_000))
            .unwrap();
        assert!(matches!(out, RunOutcome::Starved { .. }));
    }

    #[test]
    fn virtualized_io_sends_exactly_once_across_failures() {
        // 40 logical sends through a power-failure storm. Without
        // virtualization, replayed loop iterations re-transmit; with it,
        // the committed stream is exactly 0..40 in order (§7 future
        // work, implemented).
        let src = "nv int i;
                   int main() {
                       while (i < 40) {
                           send(i);
                           for (int b = 0; b < 300; b++) { }
                           i = i + 1;
                       }
                       return i;
                   }";
        let run = |virtualize: bool| {
            let mut prog = compile(src, OptLevel::O1).unwrap();
            passes::instrument_tics(&mut prog).unwrap();
            let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
            let cfg = TicsConfig::s2().with_timer(Some(2_000));
            let cfg = if virtualize {
                cfg.with_virtualized_io()
            } else {
                cfg
            };
            let mut rt = TicsRuntime::new(cfg);
            let out = Executor::new()
                .with_time_budget(1_000_000_000)
                .run(&mut m, &mut rt, &mut PeriodicTrace::new(7_000, 500))
                .unwrap();
            assert_eq!(out.exit_code(), Some(40));
            assert!(m.stats().power_failures > 0);
            m.stats().sends()
        };
        let duplicated = run(false);
        assert!(
            duplicated.len() > 40,
            "un-virtualized replays must re-transmit, got {}",
            duplicated.len()
        );
        let exact = run(true);
        assert_eq!(
            exact,
            (0..40).collect::<Vec<i32>>(),
            "exactly-once violated"
        );
    }

    #[test]
    fn voltage_assisted_checkpointing_enables_progress() {
        // No checkpoint sites, no timer: only the low-voltage comparator
        // interrupt (§4's hardware-assisted policy) saves state right
        // before each power failure.
        let mut prog = compile(
            "int g;
             int main() {
                 for (int i = 0; i < 3000; i++) { g = g + 1; }
                 return g;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::s2()); // no timer
        let out = Executor::new()
            .with_time_budget(1_000_000_000)
            .with_voltage_warning(900) // fire ~900 µs before death
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(5_000, 500))
            .unwrap();
        assert_eq!(out.exit_code(), Some(3000));
        assert!(m.stats().power_failures > 0);
        assert!(m.stats().checkpoints > 0, "voltage interrupts must commit");
    }

    #[test]
    fn checkpoint_is_double_buffered() {
        // Each loop dirties most of the working segment, so both
        // checkpoints take the full-image path (a small delta would
        // extend the chain without flipping the bank flag).
        let mut m = tics_machine(
            "int main() {
                 int pad[30];
                 for (int i = 0; i < 30; i++) { pad[i] = 1; }
                 checkpoint();
                 for (int i = 0; i < 30; i++) { pad[i] = 2; }
                 checkpoint();
                 return 0;
             }",
            MachineConfig::default(),
        );
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(0));
        assert_eq!(m.stats().checkpoints, 2);
        // After two full checkpoints the flag points at buffer B (2).
        let l = rt.layout().unwrap();
        let flag = TicsRuntime::peek_u32(&m, l.control.offset(ctrl::CKPT_FLAG)).unwrap();
        assert_eq!(flag, 2);
    }

    #[test]
    fn small_checkpoints_are_incremental() {
        // After the first full image, site checkpoints in a tight loop
        // dirty only a few stack words each — they commit as delta
        // records an order of magnitude smaller than a full bank.
        let mut m = tics_machine(
            "int main() { int s = 0; for (int i = 0; i < 50; i++) { s += i; checkpoint(); } return s; }",
            MachineConfig::default(),
        );
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(1225));
        assert_eq!(m.stats().checkpoints, 50);
        let full = f64::from(ckpt::HEADER + rt.config().seg_size);
        let mean = m.stats().mean_checkpoint_bytes().unwrap();
        assert!(
            mean < full / 2.0,
            "steady-state commits must be incremental, mean {mean} vs full {full}"
        );
    }

    // ---- brown-out corruption: detect-or-die ----

    /// Runs two full checkpoints on continuous power so both banks hold
    /// committed generations (flag = 2). Each loop dirties most of the
    /// working segment, keeping both commits on the full-image path.
    fn machine_with_two_committed_banks() -> (Machine, TicsRuntime) {
        let mut m = tics_machine(
            "int main() {
                 int pad[30];
                 for (int i = 0; i < 30; i++) { pad[i] = 1; }
                 checkpoint();
                 for (int i = 0; i < 30; i++) { pad[i] = 2; }
                 checkpoint();
                 return 0;
             }",
            MachineConfig::default(),
        );
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(0));
        assert_eq!(ctrl_flag(&m, &rt), Some(2));
        (m, rt)
    }

    /// Runs one full checkpoint then one incremental on continuous
    /// power: the flag still points at bank A, but the chain tip has
    /// advanced past the bank's sequence number.
    fn machine_with_delta_chain() -> (Machine, TicsRuntime) {
        let mut m = tics_machine(
            "int main() { int x = 1; checkpoint(); x = x + 1; checkpoint(); return x; }",
            MachineConfig::default(),
        );
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(2));
        assert_eq!(m.stats().checkpoints, 2);
        assert_eq!(
            ctrl_flag(&m, &rt),
            Some(1),
            "second commit must be incremental (flag not flipped)"
        );
        let l = rt.layout().unwrap();
        let tip = m.mem.peek_u64(l.control.offset(ctrl::DELTA_TIP)).unwrap();
        let base = m.mem.peek_u64(l.control.offset(ctrl::DELTA_BASE)).unwrap();
        assert!(tip > base, "chain tip must have advanced past the bank");
        (m, rt)
    }

    #[test]
    fn delta_chain_replays_on_boot() {
        let (mut m, mut rt) = machine_with_delta_chain();
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(action, ResumeAction::Restored);
        assert_eq!(m.stats().recoveries, 0, "a valid chain is not a recovery");
    }

    #[test]
    fn corrupt_delta_record_falls_back_and_journals_recovery() {
        // A corrupted *delta* record must truncate the chain to its
        // longest valid prefix (here: the full bank alone) and journal
        // a typed Recovery — never silently restore stale words.
        let (mut m, mut rt) = machine_with_delta_chain();
        let l = *rt.layout().unwrap();
        let a = l.journal.offset(DELTA_HEADER + 2);
        let b = m.mem.peek_bytes(a, 1).unwrap()[0];
        m.mem.poke_bytes(a, &[b ^ 0x40]).unwrap();
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(
            action,
            ResumeAction::Restored,
            "the anchoring full bank is still a valid restore point"
        );
        assert_eq!(m.stats().recoveries, 1);
        assert_eq!(m.stats().fresh_starts, 0);
        let recovered = m.trace().records().iter().any(|r| {
            matches!(
                r.event,
                TraceEvent::Recovery {
                    invalid_banks: 1,
                    fresh_start: false
                }
            )
        });
        assert!(recovered, "typed Recovery event must be on the trace");
    }

    fn clobber_bank(m: &mut Machine, rt: &TicsRuntime, which: u32) {
        let l = rt.layout().unwrap();
        let a = l.ckpt_buffer(which).offset(ckpt::SEG_IMAGE + 3);
        let b = m.mem.peek_bytes(a, 1).unwrap()[0];
        m.mem.poke_bytes(a, &[b ^ 0x40]).unwrap();
    }

    #[test]
    fn corrupt_active_bank_falls_back_to_older_bank() {
        let (mut m, mut rt) = machine_with_two_committed_banks();
        clobber_bank(&mut m, &rt, 2); // active bank
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(action, ResumeAction::Restored);
        assert_eq!(ctrl_flag(&m, &rt), Some(1), "flag repaired to bank A");
        assert_eq!(m.stats().recoveries, 1);
        assert_eq!(m.stats().fresh_starts, 0);
    }

    #[test]
    fn corrupt_inactive_bank_is_harmless() {
        let (mut m, mut rt) = machine_with_two_committed_banks();
        clobber_bank(&mut m, &rt, 1); // older, inactive bank
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(action, ResumeAction::Restored);
        assert_eq!(ctrl_flag(&m, &rt), Some(2), "active bank still trusted");
        assert_eq!(m.stats().recoveries, 0);
    }

    #[test]
    fn corrupt_both_banks_degrades_to_fresh_start() {
        let (mut m, mut rt) = machine_with_two_committed_banks();
        clobber_bank(&mut m, &rt, 1);
        clobber_bank(&mut m, &rt, 2);
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(
            action,
            ResumeAction::Restart {
                reinit_globals: true
            }
        );
        assert_eq!(ctrl_flag(&m, &rt), Some(0), "no bank left to trust");
        assert_eq!(m.stats().recoveries, 1);
        assert_eq!(m.stats().fresh_starts, 1);
        let recovered = m
            .trace()
            .records()
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Recovery { invalid_banks: 2, fresh_start: true }));
        assert!(recovered, "typed Recovery event must be on the trace");
    }

    #[test]
    fn staged_but_uncommitted_bank_is_not_restored() {
        // A fully staged bank whose flag never flipped (the commit died
        // on the energy gate) is an *uncommitted* checkpoint: flag == 0
        // must stay a plain restart even though the bank's CRC is valid.
        let (mut m, mut rt) = machine_with_two_committed_banks();
        let l = *rt.layout().unwrap();
        TicsRuntime::poke_u32(&mut m, l.control.offset(ctrl::CKPT_FLAG), 0).unwrap();
        let action = rt.on_boot(&mut m).unwrap();
        assert_eq!(
            action,
            ResumeAction::Restart {
                reinit_globals: false
            }
        );
        assert_eq!(m.stats().recoveries, 0, "not a recovery, just a restart");
    }

    #[test]
    fn completes_exactly_under_brownout_corruption() {
        // End-to-end: with writes near every power cut being bit-flipped
        // or dropped, the verified two-phase commit still yields an exact
        // WAR-consistent result — corruption is detected and retried or
        // recovered, never silently consumed.
        let mut prog = compile(
            "int len;
             int main() {
                 for (int i = 0; i < 1500; i++) { len = len + 1; }
                 return len;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        m.mem
            .set_corruption(Some(tics_mcu::CorruptionModel::new(2_000, 0.2, 0.1, 7)));
        let mut rt = TicsRuntime::new(TicsConfig::s2_star());
        let out = Executor::new()
            .with_time_budget(1_000_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(25_000, 300))
            .unwrap();
        assert_eq!(out.exit_code(), Some(1500), "WAR consistency violated");
        assert!(m.stats().power_failures > 0);
    }

    #[test]
    fn rejects_uninstrumented_programs() {
        let prog = compile("int main() { return 0; }", OptLevel::O1).unwrap();
        let rt = TicsRuntime::new(TicsConfig::default());
        assert!(matches!(
            rt.check_program(&prog),
            Err(VmError::IncompatibleInstrumentation { .. })
        ));
    }

    #[test]
    fn rejects_segments_smaller_than_max_frame() {
        let mut prog = compile(
            "int big() { int pad[50]; pad[0] = 1; return pad[0]; } int main() { return big(); }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let rt = TicsRuntime::new(TicsConfig::default().with_seg_size(64));
        assert!(matches!(rt.check_program(&prog), Err(VmError::Load(_))));
    }

    // ---- time semantics ----

    #[test]
    fn timestamped_assignment_and_fresh_guard() {
        let (out, m) = run_intermittent(
            "@expires_after = 10s
             int t;
             int main() {
                 t @= sample();
                 int hit = 0;
                 @expires(t) { hit = 1; }
                 return hit;
             }",
            50_000,
            100,
        );
        assert_eq!(out.exit_code(), Some(1), "fresh data must pass the guard");
        assert_eq!(m.stats().expired_data_discards, 0);
    }

    #[test]
    fn expired_data_is_discarded_after_long_outage() {
        // TTL 1 ms; a 50 ms outage strikes during the burn loop between
        // sampling and consuming, so the guard must reject the data.
        let mut prog = compile(
            "@expires_after = 1ms
             int t;
             int main() {
                 t @= sample();
                 int burn = 0;
                 for (int i = 0; i < 8000; i++) { burn += i; }
                 int hit = 0;
                 @expires(t) { hit = 1; }
                 return hit;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .with_time_budget(10_000_000)
            .run(
                &mut m,
                &mut rt,
                &mut RecordedTrace::new([(20_000, 50_000), (500_000, 0)]),
            )
            .unwrap();
        assert_eq!(out.exit_code(), Some(0), "stale data must be discarded");
        assert!(m.stats().expired_data_discards > 0);
    }

    #[test]
    fn timely_branch_takes_else_after_deadline() {
        let (out, m) = run_intermittent(
            "int main() {
                 // Deadline of 0 ms is always in the past.
                 int taken = 0;
                 @timely(0) { taken = 1; } else { taken = 2; }
                 return taken;
             }",
            100_000,
            0,
        );
        assert_eq!(out.exit_code(), Some(2));
        assert_eq!(m.stats().timely_misses, 1);
    }

    #[test]
    fn timely_branch_taken_before_deadline() {
        let (out, _) = run_intermittent(
            "int main() {
                 int taken = 0;
                 @timely(60000) { taken = 1; } else { taken = 2; }
                 return taken;
             }",
            100_000,
            0,
        );
        assert_eq!(out.exit_code(), Some(1));
    }

    #[test]
    fn expires_catch_runs_catch_when_stale_on_entry() {
        let mut prog = compile(
            "@expires_after = 1ms
             int t;
             int main() {
                 // Never assigned via @=, timestamp 0 → stale immediately
                 // once now > 1 ms.
                 int path = 0;
                 int burn = 0;
                 for (int i = 0; i < 3000; i++) { burn += i; }
                 @expires(t) { path = 1; } catch { path = 2; }
                 return path;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(2));
        assert_eq!(m.stats().expires_catches, 1);
    }

    #[test]
    fn expires_catch_aborts_midblock_and_rolls_back() {
        // The block starts fresh, then burns past the TTL inside the
        // block; the runtime must abort to the catch AND undo the
        // block's global writes.
        let mut prog = compile(
            "@expires_after = 20ms
             int t;
             int witness;
             int main() {
                 t @= sample();
                 int path = 0;
                 @expires(t) {
                     witness = 77;   // must be rolled back on expiry
                     for (int i = 0; i < 50000; i++) { }
                     path = 1;
                 } catch {
                     path = 2;
                 }
                 send(witness);
                 return path;
             }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .with_time_budget(50_000_000)
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(2), "catch path must run");
        assert_eq!(m.stats().expires_catches, 1);
        assert_eq!(m.stats().sends(), vec![0], "witness write must be undone");
    }

    #[test]
    fn isr_execution_checkpoints_on_exit() {
        let mut prog = compile(
            "int ticks;
             void on_timer() { ticks = ticks + 1; }
             int main() { for (int i = 0; i < 3000; i++) { } return ticks; }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_tics(&mut prog).unwrap();
        let mut m = Machine::new(
            prog,
            MachineConfig {
                isr: Some(("on_timer".into(), 5_000)),
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let mut rt = TicsRuntime::new(TicsConfig::default());
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ticks = out.exit_code().unwrap();
        assert!(ticks > 0);
        assert!(
            m.stats().checkpoints >= ticks as u64,
            "implicit post-ISR checkpoints"
        );
    }

    #[test]
    fn table4_stack_switch_cost_is_charged() {
        let (_, m) = run_intermittent(
            "int mid(int a, int b) { int pad[40]; pad[0] = a + b; return leaf(pad[0]); }
             int leaf(int x) { int pad[40]; pad[0] = x; return pad[0]; }
             int main() { return mid(1, 2); }",
            1_000_000,
            0,
        );
        assert!(m.stats().stack_grows >= 1);
    }
}
