//! # tics-core — the TICS runtime (the paper's contribution)
//!
//! Implements the Time-sensitive Intermittent Computing System of
//! Kortbeek et al., ASPLOS 2020, as an `IntermittentRuntime` for the
//! `tics-vm` machine:
//!
//! * **Stack segmentation** (§3.1.1): the stack is a fixed array of
//!   equal-size segments in FRAM; only the top ("working") segment is
//!   ever modified directly, so a checkpoint commits at most one segment
//!   — giving the *fixed worst-case checkpoint time* the paper claims.
//!   Function entries check availability and grow/shrink the working
//!   segment, copying arguments across (Figure 7).
//! * **Memory consistency via undo logging** (§3.1.2): stores to globals
//!   or to stack segments *other than* the working one save the old value
//!   in a persistent undo log; the log is cleared on every successful
//!   checkpoint and rolled back on reboot. This is what lets TICS run
//!   *unaltered C with pointers and recursion* without checkpointing all
//!   of main memory.
//! * **Two-phase committed checkpoints** (§4): registers + the working
//!   segment go to a double-buffered FRAM area; a single flag write
//!   flips the valid buffer, so a failure mid-checkpoint falls back to
//!   the previous one.
//! * **Time semantics** (§3.2): per-variable timestamps updated by `@=`,
//!   freshness guards (`@expires`), expiration exceptions
//!   (`@expires`/`catch`, with partial undo-log rollback and control
//!   transfer), and timely branches (`@timely`), driven by a persistent
//!   timekeeper.
//!
//! Every piece of runtime state that must survive a power failure lives
//! in simulated FRAM (see [`layout::RuntimeLayout`]); host-side fields
//! are only caches that are rebuilt on boot.
//!
//! ```
//! use tics_core::{TicsConfig, TicsRuntime};
//! use tics_minic::{compile, opt::OptLevel, passes};
//! use tics_vm::{Executor, Machine, MachineConfig};
//! use tics_energy::PeriodicTrace;
//!
//! let mut prog = compile(
//!     "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
//!      int main() { return fib(10); }",
//!     OptLevel::O2,
//! )?;
//! passes::instrument_tics(&mut prog)?;
//! let mut machine = Machine::new(prog, MachineConfig::default())?;
//! let mut tics = TicsRuntime::new(TicsConfig::default());
//! // Power fails every 20 ms — the recursion still completes.
//! let out = Executor::new().run(&mut machine, &mut tics, &mut PeriodicTrace::new(20_000, 1_000))?;
//! assert_eq!(out.exit_code(), Some(55));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod layout;
pub mod runtime;

pub use config::TicsConfig;
pub use layout::RuntimeLayout;
pub use runtime::{ctrl_flag, TicsRuntime, DELTA_HEADER};
