//! Ratchet-style idempotent-boundary register checkpointing.

use tics_mcu::{Addr, Region, Registers};
use tics_minic::isa::CkptSite;
use tics_minic::program::{Instrumentation, Program};
use tics_trace::{CkptCause, SpanKind, TraceEvent};
use tics_vm::{
    CheckpointKind, IntermittentRuntime, Machine, PortingEffort, ResumeAction, RuntimeCapabilities,
    TxDriver, VmError,
};

use crate::bufs::{
    bank_payload_into, bank_seq, build_delta_payload, dirty_words, journal_capacity, replay_chain,
    select_bank, stage_bank, verified_poke, BankChoice, CtrlBlock, DeltaJournal, BANK_HEADER,
    CTRL_SIZE,
};

type Result<T> = std::result::Result<T, VmError>;

/// A Ratchet-style runtime (Van Der Woude & Hicks, OSDI 2016).
///
/// All memory — including the stack — lives in non-volatile FRAM, so a
/// checkpoint is just the registers: constant cost, taken at *every*
/// idempotent-section boundary the compiler pass placed (before
/// WAR-closing stores, and conservatively before every pointer access,
/// since aliases cannot be resolved statically). On pointer-heavy code
/// the boundaries are nearly back-to-back — the overhead the paper's
/// §3.1 highlights.
#[derive(Debug)]
pub struct RatchetRuntime {
    stack_bytes: u32,
    ctrl: Option<CtrlBlock>,
    buf_a: Addr,
    buf_b: Addr,
    max_payload: u32,
    stack: Region,
    journal: DeltaJournal,
    /// Frame window `(fp, frame_len)` the open delta chain covers; a
    /// boundary with a different window forces a full image so every
    /// record in a chain shares the bank's region.
    anchor: Option<(Addr, u32)>,
    tx: TxDriver,
}

impl RatchetRuntime {
    /// Creates the runtime with an FRAM stack region of `stack_bytes`.
    #[must_use]
    pub fn new(stack_bytes: u32) -> RatchetRuntime {
        RatchetRuntime {
            stack_bytes,
            ctrl: None,
            buf_a: Addr(0),
            buf_b: Addr(0),
            max_payload: 0,
            stack: Region::with_len(Addr(0), 0),
            journal: DeltaJournal::default(),
            anchor: None,
            tx: TxDriver::default(),
        }
    }

    fn attach(&mut self, m: &mut Machine) -> Result<CtrlBlock> {
        if let Some(c) = self.ctrl {
            return Ok(c);
        }
        let base = m.runtime_area_base();
        // A buffer holds the registers, the frame length, and the current
        // frame image — this VM's analog of Ratchet's renamed register
        // set (operand scratch lives in the frame here, not in registers).
        self.max_payload = 16 + 4 + m.loaded().program.max_frame_size();
        let buf_bytes = BANK_HEADER + self.max_payload;
        self.buf_a = base.offset(CTRL_SIZE);
        self.buf_b = self.buf_a.offset(buf_bytes);
        let journal_bytes = journal_capacity(buf_bytes);
        self.journal
            .place(self.buf_b.offset(buf_bytes), journal_bytes);
        let stack_start = self.buf_b.offset(buf_bytes + journal_bytes);
        self.stack = Region::with_len(stack_start, self.stack_bytes);
        if !m.mem.layout().fram.contains(Addr(self.stack.end.raw() - 1)) {
            return Err(VmError::Load("ratchet FRAM stack does not fit".into()));
        }
        let ctrl = CtrlBlock::new(base);
        ctrl.init_if_needed(m)?;
        self.ctrl = Some(ctrl);
        Ok(ctrl)
    }

    fn commit(&mut self, m: &mut Machine, cause: CkptCause) -> Result<()> {
        let ctrl = self.attach(m)?;
        let mut span = m.span(SpanKind::Checkpoint);
        let m = &mut *span;
        let frame_len = m.regs.sp.raw().saturating_sub(m.regs.fp.raw());
        let fp = m.regs.fp;
        if self.journal.is_cold() {
            self.journal
                .prime_cold(m, ctrl, self.buf_a, self.buf_b, self.max_payload)?;
        }
        let mut misc = [0u8; 20];
        for (i, w) in m.regs.to_words().iter().enumerate() {
            misc[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        misc[16..20].copy_from_slice(&frame_len.to_le_bytes());
        let region = [(fp, frame_len)];
        // Incremental commit: only the words the write monitor saw
        // changing since the last commit, while the frame window is
        // stable and the record is meaningfully smaller than a full
        // frame image.
        let delta_payload = 4 + 20 + 8 * dirty_words(m, &region);
        if self.anchor == Some((fp, frame_len))
            && self.journal.can_delta(BANK_HEADER + delta_payload, 20 + frame_len)
            && 4 * delta_payload < 3 * (20 + frame_len)
        {
            let seq = self.journal.take_seq();
            build_delta_payload(m, &misc, &region, &mut self.journal.scratch);
            if !stage_bank(m, self.journal.record_addr(), seq, &self.journal.scratch)? {
                return Err(VmError::Trap(
                    "Ratchet: boundary checkpoint failed read-back verification".into(),
                ));
            }
            let plen = self.journal.scratch.len() as u32;
            let cost = m.mem.costs().ckpt_base + u64::from(plen) / 4;
            if !m.charge_atomic(cost) {
                return Ok(());
            }
            ctrl.set_delta_tip(m, seq)?;
            self.journal.committed_delta(BANK_HEADER + plen);
            m.mem.clear_dirty(fp, frame_len);
            m.emit(TraceEvent::CheckpointCommit {
                cause,
                bytes: u64::from(plen),
            });
            return Ok(());
        }
        // Full image into the inactive bank.
        let target = if ctrl.flag(m)? == 1 { 2 } else { 1 };
        let buf = if target == 1 { self.buf_a } else { self.buf_b };
        let seq = self.journal.take_seq();
        self.journal.scratch.clear();
        self.journal.scratch.extend_from_slice(&misc);
        if frame_len > 0 {
            self.journal
                .scratch
                .extend_from_slice(m.mem.peek_slice(fp, frame_len)?);
        }
        if !stage_bank(m, buf, seq, &self.journal.scratch)? {
            // Ratchet's consistency *is* the boundary checkpoint: a
            // skipped commit before a WAR-closing store would silently
            // violate idempotence on the next reboot. Die loudly.
            return Err(VmError::Trap(
                "Ratchet: boundary checkpoint failed read-back verification".into(),
            ));
        }
        // Bounded by the largest frame — effectively constant, unlike
        // stack- or statics-sized checkpoints.
        let cost = m.mem.costs().ckpt_base + u64::from(frame_len) / 4;
        if !m.charge_atomic(cost) {
            return Ok(());
        }
        ctrl.set_flag(m, target)?;
        ctrl.set_delta_base(m, seq)?;
        ctrl.set_delta_tip(m, 0)?;
        self.journal.committed_full();
        m.mem.clear_dirty(fp, frame_len);
        self.anchor = Some((fp, frame_len));
        m.emit(TraceEvent::CheckpointCommit {
            cause,
            bytes: u64::from(16 + 4 + frame_len),
        });
        Ok(())
    }
}

impl Default for RatchetRuntime {
    fn default() -> Self {
        RatchetRuntime::new(2_048)
    }
}

impl IntermittentRuntime for RatchetRuntime {
    fn name(&self) -> &'static str {
        "Ratchet"
    }

    // `on_instruction` is the trait default (a no-op) for this runtime,
    // so the decoded dispatcher may run its fused fast loop.
    fn instruction_hook(&self) -> bool {
        false
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: true,
            recursion_support: false,
            scalable: false,
            timely_execution: false,
            memory_consistency: true,
            porting_effort: PortingEffort::High,
        }
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation != Instrumentation::Ratchet {
            return Err(VmError::IncompatibleInstrumentation {
                expected: "Ratchet".into(),
                found: format!("{:?}", program.instrumentation),
            });
        }
        Ok(())
    }

    fn recycle(&mut self) {
        self.ctrl = None;
        self.buf_a = Addr(0);
        self.buf_b = Addr(0);
        self.max_payload = 0;
        self.stack = Region::with_len(Addr(0), 0);
        self.journal.recycle();
        self.anchor = None;
        self.tx.recycle();
    }

    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction> {
        let ctrl = self.attach(m)?;
        self.anchor = None;
        let buf = match select_bank(m, ctrl, self.buf_a, self.buf_b, self.max_payload)? {
            BankChoice::None => {
                self.journal
                    .prime_cold(m, ctrl, self.buf_a, self.buf_b, self.max_payload)?;
                return Ok(ResumeAction::Restart {
                    reinit_globals: false,
                });
            }
            BankChoice::FreshStart => {
                self.journal
                    .prime_cold(m, ctrl, self.buf_a, self.buf_b, self.max_payload)?;
                return Ok(ResumeAction::Restart {
                    reinit_globals: true,
                });
            }
            BankChoice::Bank(buf) => buf,
        };
        // Full-image restore first: rewriting the whole frame window
        // wipes any uncommitted stores inside it.
        bank_payload_into(m, buf, &mut self.journal.scratch)?;
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(
                self.journal.scratch[4 * i..4 * i + 4]
                    .try_into()
                    .expect("reg word"),
            );
        }
        m.regs = Registers::from_words(words);
        let frame_len = u32::from_le_bytes(
            self.journal.scratch[16..20]
                .try_into()
                .expect("frame len"),
        );
        let fp = m.regs.fp;
        if frame_len > 0
            && !verified_poke(m, fp, &self.journal.scratch[20..20 + frame_len as usize])?
        {
            return Err(VmError::Trap(
                "Ratchet: checkpoint restore failed read-back verification".into(),
            ));
        }
        // Then the delta chain, if one extends this bank generation.
        let base_seq = bank_seq(m, buf)?;
        let chain_base = ctrl.delta_base(m)?;
        let tip = ctrl.delta_tip(m)?;
        let region = [(fp, frame_len)];
        let mut replayed = 0u64;
        if chain_base == base_seq && tip > base_seq {
            let end = replay_chain(
                m,
                self.journal.base,
                self.journal.capacity,
                base_seq,
                tip,
                &region,
                &mut self.journal.misc,
            )?;
            if end.last_seq > base_seq {
                let mut words = [0u32; 4];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(
                        self.journal.misc[4 * i..4 * i + 4]
                            .try_into()
                            .expect("reg word"),
                    );
                }
                m.regs = Registers::from_words(words);
            }
            replayed = u64::from(end.bytes);
            if end.broken {
                // The tip claimed records the journal no longer holds
                // intact: resume from the longest valid prefix (itself
                // a committed checkpoint) and journal the detection.
                m.emit(TraceEvent::Recovery {
                    invalid_banks: 1,
                    fresh_start: false,
                });
                self.journal
                    .prime(tip.max(end.last_seq) + 1, end.next_off, false);
            } else {
                self.journal.prime(end.last_seq + 1, end.next_off, true);
                self.anchor = Some((fp, frame_len));
            }
        } else if chain_base == base_seq {
            // Bank is the chain base with no deltas yet: extendable.
            self.journal.prime(base_seq.max(tip) + 1, 0, true);
            self.anchor = Some((fp, frame_len));
        } else {
            // The chain belongs to a different bank generation (bank
            // fallback restored an older image): unusable, next
            // checkpoint re-anchors with a full image.
            self.journal
                .prime(base_seq.max(chain_base).max(tip) + 1, 0, false);
        }
        // The restored window now equals the committed image: ack it.
        m.mem.clear_dirty(fp, frame_len);
        let mut span = m.span(SpanKind::Restore);
        let m = &mut *span;
        let _ = m.charge_atomic(
            m.mem.costs().restore_base + (u64::from(frame_len) + replayed) / 4,
        );
        m.emit(TraceEvent::Restore {
            bytes: u64::from(16 + 4 + frame_len) + replayed,
        });
        Ok(ResumeAction::Restored)
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        _fidx: u16,
        frame_size: u32,
        _arg_bytes: u32,
    ) -> Result<Addr> {
        self.attach(m)?;
        let base = if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            self.stack.start
        } else {
            m.regs.sp
        };
        if !self.stack.contains_range(base, frame_size) {
            return Err(VmError::StackOverflow {
                detail: format!("FRAM stack exhausted allocating {frame_size} bytes"),
            });
        }
        Ok(base)
    }

    fn free_frame(&mut self, _m: &mut Machine, _fp: Addr) -> Result<()> {
        Ok(())
    }

    fn logged_store(&mut self, _m: &mut Machine, _addr: Addr, _len: u32) -> Result<()> {
        Ok(())
    }

    fn tx_driver(&mut self) -> Option<&mut TxDriver> {
        Some(&mut self.tx)
    }

    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()> {
        // Boundaries inside an open peripheral transaction are deferred:
        // replaying from one would re-drive wire bytes under the same
        // attempt number.
        if self.tx.in_txn() {
            return Ok(());
        }
        match kind {
            // Every idempotent boundary checkpoints — that is Ratchet.
            CheckpointKind::Site(CkptSite::Auto | CkptSite::Manual) => {
                self.commit(m, CkptCause::Site)
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_energy::{ContinuousPower, PeriodicTrace};
    use tics_minic::{compile, opt::OptLevel, passes};
    use tics_vm::{Executor, MachineConfig};

    fn ratchet_machine(src: &str) -> Machine {
        let mut prog = compile(src, OptLevel::O1).unwrap();
        passes::instrument_ratchet(&mut prog).unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    #[test]
    fn completes_and_checkpoints_constant_size() {
        let mut m = ratchet_machine(
            "int g;
             int main() { for (int i = 0; i < 10; i++) { g = g + 1; } return g; }",
        );
        let mut rt = RatchetRuntime::default();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(10));
        assert!(m.stats().checkpoints > 0);
        // Register file + one bounded frame — never the whole stack.
        let mean = m.stats().mean_checkpoint_bytes().unwrap();
        assert!(mean < 300.0, "checkpoints must stay bounded, got {mean}");
    }

    #[test]
    fn survives_power_failures_with_war_safety() {
        // g = g + 1 closes a WAR dependency each iteration; the pass put
        // a boundary checkpoint before the store, so replays never
        // double-increment.
        let mut m = ratchet_machine(
            "int g;
             int main() { for (int i = 0; i < 500; i++) { g = g + 1; } return g; }",
        );
        let mut rt = RatchetRuntime::default();
        let out = Executor::new()
            .with_time_budget(500_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(15_000, 500))
            .unwrap();
        assert_eq!(out.exit_code(), Some(500));
        assert!(m.stats().power_failures > 0);
    }

    #[test]
    fn pointer_heavy_code_checkpoints_constantly() {
        let mut m = ratchet_machine(
            "int a[50];
             int main() {
                 int *p = a;
                 for (int i = 0; i < 50; i++) { *(p + i) = i; }
                 return a[49];
             }",
        );
        let mut rt = RatchetRuntime::default();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(49));
        // One checkpoint per pointer store, at least.
        assert!(m.stats().checkpoints >= 50, "got {}", m.stats().checkpoints);
    }

    #[test]
    fn rejects_wrong_instrumentation() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        assert!(RatchetRuntime::default().check_program(&prog).is_err());
    }

    fn clobber(m: &mut Machine, buf: Addr) {
        let a = buf.offset(BANK_HEADER + 2);
        let b = m.mem.peek_bytes(a, 1).unwrap()[0];
        m.mem.poke_bytes(a, &[b ^ 0x10]).unwrap();
    }

    #[test]
    fn corrupt_banks_fall_back_then_fresh_start() {
        let mut m = ratchet_machine(
            "int g;
             int main() { for (int i = 0; i < 10; i++) { g = g + 1; } return g; }",
        );
        let mut rt = RatchetRuntime::default();
        Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ctrl = rt.ctrl.unwrap();
        let flag = ctrl.flag(&m).unwrap();
        assert!(flag == 1 || flag == 2, "a checkpoint must have committed");
        let (active, other) = if flag == 1 {
            (rt.buf_a, rt.buf_b)
        } else {
            (rt.buf_b, rt.buf_a)
        };
        // Corrupt the active bank: boot detects it and falls back.
        clobber(&mut m, active);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(action, ResumeAction::Restored));
        assert_eq!(m.stats().recoveries, 1);
        assert_eq!(ctrl.flag(&m).unwrap(), if flag == 1 { 2 } else { 1 });
        // Corrupt the fallback too: recovery degrades to a fresh start.
        clobber(&mut m, other);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(
            action,
            ResumeAction::Restart {
                reinit_globals: true
            }
        ));
        assert_eq!(m.stats().recoveries, 2);
        assert_eq!(m.stats().fresh_starts, 1);
        assert_eq!(ctrl.flag(&m).unwrap(), 0);
    }
}
