//! Shared helpers: control block, raw word access to simulated FRAM,
//! and self-validating ("hardened") checkpoint banks.
//!
//! The hardened-bank helpers implement the same detect-or-die protocol
//! as the TICS runtime for every baseline that claims memory
//! consistency: each double-buffered bank carries a monotonic sequence
//! number, its payload length, and a CRC-32; staging is verified by
//! read-back (a brown-out can corrupt multi-word burst stores), and
//! boot-time selection falls back to the older valid bank — or degrades
//! to a fresh start — rather than executing from a corrupted
//! checkpoint. The naive MementOS-style runtime deliberately does *not*
//! use them: it is the experiment's un-hardened control.

use tics_mcu::{Addr, Crc32};
use tics_trace::TraceEvent;
use tics_vm::{Machine, VmError};

type Result<T> = std::result::Result<T, VmError>;

/// Magic marking an initialized control block.
const MAGIC: u32 = 0xBA5E_C001;

/// Size of the control block in bytes.
pub(crate) const CTRL_SIZE: u32 = 12;

/// A small persistent control block: `u32` magic, `u32` valid-buffer
/// flag (0 = none, 1 = A, 2 = B), `u32` scratch word (undo count or
/// similar), all in simulated FRAM.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtrlBlock {
    base: Addr,
}

impl CtrlBlock {
    pub(crate) fn new(base: Addr) -> CtrlBlock {
        CtrlBlock { base }
    }

    /// Initializes the block if this is the first boot on the image.
    pub(crate) fn init_if_needed(&self, m: &mut Machine) -> Result<()> {
        if peek_u32(m, self.base)? != MAGIC {
            poke_u32(m, self.base, MAGIC)?;
            poke_u32(m, self.base.offset(4), 0)?;
            poke_u32(m, self.base.offset(8), 0)?;
        }
        Ok(())
    }

    pub(crate) fn flag(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(4))
    }

    pub(crate) fn set_flag(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(4), v)
    }

    pub(crate) fn scratch(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(8))
    }

    pub(crate) fn set_scratch(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(8), v)
    }
}

pub(crate) fn peek_u32(m: &Machine, a: Addr) -> Result<u32> {
    let b = m.mem.peek_bytes(a, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub(crate) fn poke_u32(m: &mut Machine, a: Addr, v: u32) -> Result<()> {
    m.mem.poke_bytes(a, &v.to_le_bytes())?;
    Ok(())
}

/// Per-bank hardening header: `u64` sequence number (never 0 for a
/// committed bank), `u32` payload length, `u32` CRC-32 over sequence +
/// length + payload.
pub(crate) const BANK_HEADER: u32 = 16;

/// Read-back verification attempts for staging/restore pokes. Each
/// attempt re-draws the corruption RNG, so retries converge whenever
/// the per-store corruption probability is below 1.
const VERIFY_ATTEMPTS: u32 = 16;

/// Pokes `bytes` at `a` and reads them back, retrying until the write
/// landed intact. Returns `false` if corruption defeated every attempt.
pub(crate) fn verified_poke(m: &mut Machine, a: Addr, bytes: &[u8]) -> Result<bool> {
    for _ in 0..VERIFY_ATTEMPTS {
        m.mem.poke_bytes(a, bytes)?;
        if m.mem.peek_slice(a, bytes.len() as u32)? == bytes {
            return Ok(true);
        }
    }
    Ok(false)
}

fn bank_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(&seq.to_le_bytes());
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

/// Stages `payload` into bank `buf` under sequence number `seq`, CRC
/// stamped, with read-back verification. Returns `false` if corruption
/// defeated every staging attempt (the bank must not become the restore
/// point; the previously committed bank is untouched).
pub(crate) fn stage_bank(m: &mut Machine, buf: Addr, seq: u64, payload: &[u8]) -> Result<bool> {
    let mut bank = Vec::with_capacity(BANK_HEADER as usize + payload.len());
    bank.extend_from_slice(&seq.to_le_bytes());
    bank.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bank.extend_from_slice(&bank_crc(seq, payload).to_le_bytes());
    bank.extend_from_slice(payload);
    verified_poke(m, buf, &bank)
}

/// Validates bank `buf`: nonzero sequence, sane payload length (at most
/// `max_payload`), matching CRC. Returns the sequence number if valid.
pub(crate) fn validate_bank(m: &Machine, buf: Addr, max_payload: u32) -> Result<Option<u64>> {
    let head = m.mem.peek_slice(buf, BANK_HEADER)?;
    let seq = u64::from_le_bytes(head[0..8].try_into().expect("8-byte seq"));
    let len = u32::from_le_bytes(head[8..12].try_into().expect("4-byte len"));
    let stored = u32::from_le_bytes(head[12..16].try_into().expect("4-byte crc"));
    if seq == 0 || len > max_payload {
        return Ok(None);
    }
    let payload = m.mem.peek_slice(buf.offset(BANK_HEADER), len)?;
    if bank_crc(seq, payload) != stored {
        return Ok(None);
    }
    Ok(Some(seq))
}

/// Reads a validated bank's payload.
pub(crate) fn bank_payload(m: &Machine, buf: Addr) -> Result<Vec<u8>> {
    let len = peek_u32(m, buf.offset(8))?;
    Ok(m.mem.peek_bytes(buf.offset(BANK_HEADER), len)?)
}

/// The sequence number for the next commit: one past the highest valid
/// bank (a torn or invalid bank contributes 0, so ordering between the
/// two committed generations always holds).
pub(crate) fn next_seq(m: &Machine, buf_a: Addr, buf_b: Addr, max_payload: u32) -> Result<u64> {
    let a = validate_bank(m, buf_a, max_payload)?.unwrap_or(0);
    let b = validate_bank(m, buf_b, max_payload)?.unwrap_or(0);
    Ok(a.max(b) + 1)
}

/// Boot-time bank selection for the detect-or-die protocol.
pub(crate) enum BankChoice {
    /// No committed checkpoint: plain restart.
    None,
    /// Restore from this bank.
    Bank(Addr),
    /// Both banks invalid: the flag was cleared and a fresh-start
    /// [`TraceEvent::Recovery`] emitted — restart with globals
    /// re-initialized.
    FreshStart,
}

/// Validates the active bank and self-heals: an invalid active bank
/// falls back to the other valid bank (repairing the flag and emitting
/// a [`TraceEvent::Recovery`]); with neither bank valid the flag is
/// cleared and recovery degrades to a fresh start.
pub(crate) fn select_bank(
    m: &mut Machine,
    ctrl: CtrlBlock,
    buf_a: Addr,
    buf_b: Addr,
    max_payload: u32,
) -> Result<BankChoice> {
    let flag = ctrl.flag(m)?;
    if flag == 0 {
        return Ok(BankChoice::None);
    }
    let v_a = validate_bank(m, buf_a, max_payload)?;
    let v_b = validate_bank(m, buf_b, max_payload)?;
    let active_valid = match flag {
        1 => v_a.is_some(),
        2 => v_b.is_some(),
        _ => false, // corrupt flag: fall through to highest-seq repair
    };
    if active_valid {
        return Ok(BankChoice::Bank(if flag == 1 { buf_a } else { buf_b }));
    }
    let best = match (v_a, v_b) {
        (Some(a), Some(b)) => Some(if a >= b { 1 } else { 2 }),
        (Some(_), None) => Some(1),
        (None, Some(_)) => Some(2),
        (None, None) => None,
    };
    match best {
        Some(w) => {
            ctrl.set_flag(m, w)?;
            m.emit(TraceEvent::Recovery {
                invalid_banks: 1,
                fresh_start: false,
            });
            Ok(BankChoice::Bank(if w == 1 { buf_a } else { buf_b }))
        }
        None => {
            ctrl.set_flag(m, 0)?;
            m.emit(TraceEvent::Recovery {
                invalid_banks: 2,
                fresh_start: true,
            });
            Ok(BankChoice::FreshStart)
        }
    }
}
