//! Shared helpers: control block, raw word access to simulated FRAM,
//! self-validating ("hardened") checkpoint banks, and the dirty-word
//! delta journal that makes checkpoints incremental.
//!
//! The hardened-bank helpers implement the same detect-or-die protocol
//! as the TICS runtime for every baseline that claims memory
//! consistency: each double-buffered bank carries a monotonic sequence
//! number, its payload length, and a CRC-32; staging is verified by
//! read-back (a brown-out can corrupt multi-word burst stores), and
//! boot-time selection falls back to the older valid bank — or degrades
//! to a fresh start — rather than executing from a corrupted
//! checkpoint. The naive MementOS-style runtime deliberately does *not*
//! use them: it is the experiment's un-hardened control.
//!
//! The delta journal extends the same seq/len/CRC record format to
//! *incremental* checkpoints (DiCA-style): a committed full bank
//! anchors a chain of delta records, each carrying only the words the
//! dirty-word write monitor observed changing since the previous
//! commit. Restore replays the full image first (wiping uncommitted
//! writes), then the chain in sequence order — so reconstruction stays
//! O(image) and a broken chain degrades to the longest valid prefix
//! with a journaled [`TraceEvent::Recovery`].

use tics_mcu::{Addr, Crc32};
use tics_trace::TraceEvent;
use tics_vm::{Machine, VmError};

type Result<T> = std::result::Result<T, VmError>;

/// Magic marking an initialized control block.
const MAGIC: u32 = 0xBA5E_C001;

/// Size of the control block in bytes.
pub(crate) const CTRL_SIZE: u32 = 28;

/// A small persistent control block in simulated FRAM: `u32` magic,
/// `u32` valid-buffer flag (0 = none, 1 = A, 2 = B), `u32` scratch word
/// (undo count or similar), `u64` delta-chain base (sequence number of
/// the full bank the delta chain extends) and `u64` delta-chain tip
/// (highest committed delta sequence; 0 = no chain).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtrlBlock {
    base: Addr,
}

impl CtrlBlock {
    pub(crate) fn new(base: Addr) -> CtrlBlock {
        CtrlBlock { base }
    }

    /// Initializes the block if this is the first boot on the image.
    pub(crate) fn init_if_needed(&self, m: &mut Machine) -> Result<()> {
        if peek_u32(m, self.base)? != MAGIC {
            poke_u32(m, self.base, MAGIC)?;
            poke_u32(m, self.base.offset(4), 0)?;
            poke_u32(m, self.base.offset(8), 0)?;
            poke_u64(m, self.base.offset(12), 0)?;
            poke_u64(m, self.base.offset(20), 0)?;
        }
        Ok(())
    }

    pub(crate) fn flag(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(4))
    }

    pub(crate) fn set_flag(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(4), v)
    }

    pub(crate) fn scratch(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(8))
    }

    pub(crate) fn set_scratch(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(8), v)
    }

    /// Sequence number of the full bank the delta chain extends.
    pub(crate) fn delta_base(&self, m: &Machine) -> Result<u64> {
        peek_u64(m, self.base.offset(12))
    }

    /// Highest committed delta sequence (0 = no chain). Both delta
    /// words are 8-byte pokes — within the atomic-store size, so their
    /// updates are single corruption-immune stores.
    pub(crate) fn delta_tip(&self, m: &Machine) -> Result<u64> {
        peek_u64(m, self.base.offset(20))
    }

    pub(crate) fn set_delta_base(&self, m: &mut Machine, v: u64) -> Result<()> {
        poke_u64(m, self.base.offset(12), v)
    }

    pub(crate) fn set_delta_tip(&self, m: &mut Machine, v: u64) -> Result<()> {
        poke_u64(m, self.base.offset(20), v)
    }
}

pub(crate) fn peek_u32(m: &Machine, a: Addr) -> Result<u32> {
    let b = m.mem.peek_slice(a, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub(crate) fn poke_u32(m: &mut Machine, a: Addr, v: u32) -> Result<()> {
    m.mem.poke_bytes(a, &v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn peek_u64(m: &Machine, a: Addr) -> Result<u64> {
    let b = m.mem.peek_slice(a, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

pub(crate) fn poke_u64(m: &mut Machine, a: Addr, v: u64) -> Result<()> {
    m.mem.poke_bytes(a, &v.to_le_bytes())?;
    Ok(())
}

/// Per-bank hardening header: `u64` sequence number (never 0 for a
/// committed bank), `u32` payload length, `u32` CRC-32 over sequence +
/// length + payload.
pub(crate) const BANK_HEADER: u32 = 16;

/// Read-back verification attempts for staging/restore pokes. Each
/// attempt re-draws the corruption RNG, so retries converge whenever
/// the per-store corruption probability is below 1.
const VERIFY_ATTEMPTS: u32 = 16;

/// Pokes `bytes` at `a` and reads them back, retrying until the write
/// landed intact. Returns `false` if corruption defeated every attempt.
pub(crate) fn verified_poke(m: &mut Machine, a: Addr, bytes: &[u8]) -> Result<bool> {
    for _ in 0..VERIFY_ATTEMPTS {
        m.mem.poke_bytes(a, bytes)?;
        if m.mem.peek_slice(a, bytes.len() as u32)? == bytes {
            return Ok(true);
        }
    }
    Ok(false)
}

fn bank_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(&seq.to_le_bytes());
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

/// Stages `payload` into bank `buf` under sequence number `seq`, CRC
/// stamped, with read-back verification. Returns `false` if corruption
/// defeated every staging attempt (the bank must not become the restore
/// point; the previously committed bank is untouched). Header and
/// payload are poked separately so no temporary bank image is built.
pub(crate) fn stage_bank(m: &mut Machine, buf: Addr, seq: u64, payload: &[u8]) -> Result<bool> {
    let mut head = [0u8; BANK_HEADER as usize];
    head[0..8].copy_from_slice(&seq.to_le_bytes());
    head[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[12..16].copy_from_slice(&bank_crc(seq, payload).to_le_bytes());
    Ok(verified_poke(m, buf, &head)? && verified_poke(m, buf.offset(BANK_HEADER), payload)?)
}

/// Validates bank `buf`: nonzero sequence, sane payload length (at most
/// `max_payload`), matching CRC. Returns the sequence number if valid.
pub(crate) fn validate_bank(m: &Machine, buf: Addr, max_payload: u32) -> Result<Option<u64>> {
    let head = m.mem.peek_slice(buf, BANK_HEADER)?;
    let seq = u64::from_le_bytes(head[0..8].try_into().expect("8-byte seq"));
    let len = u32::from_le_bytes(head[8..12].try_into().expect("4-byte len"));
    let stored = u32::from_le_bytes(head[12..16].try_into().expect("4-byte crc"));
    if seq == 0 || len > max_payload {
        return Ok(None);
    }
    let payload = m.mem.peek_slice(buf.offset(BANK_HEADER), len)?;
    if bank_crc(seq, payload) != stored {
        return Ok(None);
    }
    Ok(Some(seq))
}

/// Copies a validated bank's payload into `out` (a reusable scratch
/// buffer — the steady state allocates nothing).
pub(crate) fn bank_payload_into(m: &Machine, buf: Addr, out: &mut Vec<u8>) -> Result<()> {
    let len = peek_u32(m, buf.offset(8))?;
    out.clear();
    out.extend_from_slice(m.mem.peek_slice(buf.offset(BANK_HEADER), len)?);
    Ok(())
}

/// A committed bank's sequence number (validated at commit; re-checked
/// by CRC at every boot-time selection).
pub(crate) fn bank_seq(m: &Machine, buf: Addr) -> Result<u64> {
    peek_u64(m, buf)
}

/// Boot-time bank selection for the detect-or-die protocol.
pub(crate) enum BankChoice {
    /// No committed checkpoint: plain restart.
    None,
    /// Restore from this bank.
    Bank(Addr),
    /// Both banks invalid: the flag was cleared and a fresh-start
    /// [`TraceEvent::Recovery`] emitted — restart with globals
    /// re-initialized.
    FreshStart,
}

/// Validates the active bank and self-heals: an invalid active bank
/// falls back to the other valid bank (repairing the flag and emitting
/// a [`TraceEvent::Recovery`]); with neither bank valid the flag is
/// cleared and recovery degrades to a fresh start.
pub(crate) fn select_bank(
    m: &mut Machine,
    ctrl: CtrlBlock,
    buf_a: Addr,
    buf_b: Addr,
    max_payload: u32,
) -> Result<BankChoice> {
    let flag = ctrl.flag(m)?;
    if flag == 0 {
        return Ok(BankChoice::None);
    }
    let v_a = validate_bank(m, buf_a, max_payload)?;
    let v_b = validate_bank(m, buf_b, max_payload)?;
    let active_valid = match flag {
        1 => v_a.is_some(),
        2 => v_b.is_some(),
        _ => false, // corrupt flag: fall through to highest-seq repair
    };
    if active_valid {
        return Ok(BankChoice::Bank(if flag == 1 { buf_a } else { buf_b }));
    }
    let best = match (v_a, v_b) {
        (Some(a), Some(b)) => Some(if a >= b { 1 } else { 2 }),
        (Some(_), None) => Some(1),
        (None, Some(_)) => Some(2),
        (None, None) => None,
    };
    match best {
        Some(w) => {
            ctrl.set_flag(m, w)?;
            m.emit(TraceEvent::Recovery {
                invalid_banks: 1,
                fresh_start: false,
            });
            Ok(BankChoice::Bank(if w == 1 { buf_a } else { buf_b }))
        }
        None => {
            ctrl.set_flag(m, 0)?;
            m.emit(TraceEvent::Recovery {
                invalid_banks: 2,
                fresh_start: true,
            });
            Ok(BankChoice::FreshStart)
        }
    }
}

// ---------------------------------------------------------------------
// Dirty-word delta journal
// ---------------------------------------------------------------------

/// Journal capacity for a runtime whose full bank occupies `buf_bytes`:
/// roomy enough for many small deltas between full images, bounded so
/// restore-time chain replay stays O(image).
pub(crate) fn journal_capacity(buf_bytes: u32) -> u32 {
    (2 * buf_bytes).clamp(1_024, 8_192)
}

/// Host-side cache of the delta chain's write cursor. The persistent
/// truth lives in the control block (`delta_base`/`delta_tip`) and the
/// journal records themselves; this cache is rebuilt from them on every
/// boot, so it carries no state a real MCU would lose at power failure.
#[derive(Debug, Default)]
pub(crate) struct DeltaJournal {
    /// First byte of the journal region (FRAM).
    pub(crate) base: Addr,
    /// Journal region length in bytes.
    pub(crate) capacity: u32,
    /// Staging offset for the next record (end of the committed chain).
    write_off: u32,
    /// Next commit sequence number; 0 = cold (forces a full image,
    /// which re-primes). Sequence numbers are burned by *attempts*, not
    /// commits, so a staged-but-uncommitted record can never collide
    /// with a later committed one at the same chain position.
    next_seq: u64,
    /// Whether a committed full bank anchors the chain. Deltas are only
    /// taken while anchored; everything else falls back to full images.
    anchored: bool,
    /// Reusable payload staging buffer — checkpoint paths allocate
    /// nothing in steady state.
    pub(crate) scratch: Vec<u8>,
    /// Reusable misc-block buffer for boot-time chain replay.
    pub(crate) misc: Vec<u8>,
}

impl DeltaJournal {
    pub(crate) fn place(&mut self, base: Addr, capacity: u32) {
        self.base = base;
        self.capacity = capacity;
    }

    /// Forgets the cached chain state (placement included), keeping the
    /// staging allocations — for a runtime recycled onto a fresh device.
    pub(crate) fn recycle(&mut self) {
        self.base = Addr(0);
        self.capacity = 0;
        self.write_off = 0;
        self.next_seq = 0;
        self.anchored = false;
        self.scratch.clear();
        self.misc.clear();
    }

    pub(crate) fn is_cold(&self) -> bool {
        self.next_seq == 0
    }

    /// Re-primes the cache from non-volatile state alone (no chain
    /// walk): next sequence past everything ever committed, chain not
    /// anchored — the next checkpoint is a full image.
    pub(crate) fn prime_cold(
        &mut self,
        m: &Machine,
        ctrl: CtrlBlock,
        buf_a: Addr,
        buf_b: Addr,
        max_payload: u32,
    ) -> Result<()> {
        let a = validate_bank(m, buf_a, max_payload)?.unwrap_or(0);
        let b = validate_bank(m, buf_b, max_payload)?.unwrap_or(0);
        let tip = ctrl.delta_tip(m)?;
        self.prime(a.max(b).max(tip) + 1, 0, false);
        Ok(())
    }

    /// Installs boot-derived chain state: `next_seq` for the next
    /// commit, the staging offset at the end of the valid chain, and
    /// whether the chain may be extended with further deltas.
    pub(crate) fn prime(&mut self, next_seq: u64, write_off: u32, anchored: bool) {
        self.next_seq = next_seq;
        self.write_off = write_off;
        self.anchored = anchored;
    }

    /// Burns and returns the sequence number for a commit attempt.
    pub(crate) fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Whether an incremental record of `record_bytes` (header included)
    /// may extend the chain. `full_bytes` is the runtime's full-image
    /// payload size: the chain is byte-capped at roughly one full image
    /// — every boot replays the whole chain after the full-image
    /// restore, so an unbounded chain would inflate the restore charge
    /// past what a short on-period can cover (the exact livelock
    /// incremental checkpointing exists to prevent).
    pub(crate) fn can_delta(&self, record_bytes: u32, full_bytes: u32) -> bool {
        let cap = self.capacity.min(full_bytes.max(512));
        self.anchored && !self.is_cold() && self.write_off + record_bytes <= cap
    }

    /// Staging address for the next record.
    pub(crate) fn record_addr(&self) -> Addr {
        self.base.offset(self.write_off)
    }

    /// A delta record of `record_bytes` was committed (tip advanced).
    pub(crate) fn committed_delta(&mut self, record_bytes: u32) {
        self.write_off += record_bytes;
    }

    /// A full bank was committed: the chain restarts empty.
    pub(crate) fn committed_full(&mut self) {
        self.write_off = 0;
        self.anchored = true;
    }
}

/// Number of dirty words the write monitor currently reports over
/// `regions` — each becomes one 8-byte `(address, value)` delta entry.
pub(crate) fn dirty_words(m: &Machine, regions: &[(Addr, u32)]) -> u32 {
    regions
        .iter()
        .map(|&(start, len)| m.mem.count_dirty_words(start, len))
        .sum()
}

/// Builds a delta payload into `out`: `u32` misc length, the
/// runtime-specific misc block (registers and friends), then one
/// `(u32 address, u32 value)` entry per dirty word. Word values at
/// region edges are clamped — the entry address is the first byte
/// inside the region and the value carries only the in-region bytes,
/// zero-padded, so replay (which clamps identically against the same
/// deterministic region list) never touches memory outside the
/// checkpointed regions.
pub(crate) fn build_delta_payload(
    m: &Machine,
    misc: &[u8],
    regions: &[(Addr, u32)],
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&(misc.len() as u32).to_le_bytes());
    out.extend_from_slice(misc);
    for &(start, len) in regions {
        if len == 0 {
            continue;
        }
        let end = start.0 + len;
        m.mem.for_each_dirty_word(start, len, |w| {
            let lo = w.0.max(start.0);
            let n = (w.0 + 4).min(end) - lo;
            let src = m
                .mem
                .peek_slice(Addr(lo), n)
                .expect("dirty word inside a mapped checkpoint region");
            let mut val = [0u8; 4];
            val[..n as usize].copy_from_slice(src);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&val);
        });
    }
}

/// Where a chain walk ended.
pub(crate) struct ChainEnd {
    /// First byte past the last valid record — the next staging offset.
    pub(crate) next_off: u32,
    /// Last valid sequence in the chain (the bank's if no record was).
    pub(crate) last_seq: u64,
    /// The tip claimed more records than were valid: the chain was
    /// truncated to its longest valid prefix.
    pub(crate) broken: bool,
    /// Total record bytes (headers included) replayed.
    pub(crate) bytes: u32,
}

/// Replays the delta chain anchored at `bank_seq` after a full-image
/// restore: records are validated (seq/len/CRC plus structural sanity)
/// and must carry consecutive sequence numbers `bank_seq+1..=tip`; each
/// valid record's word entries are applied in order and its misc block
/// is copied into `misc_out` (the last one wins — it holds the
/// registers at that commit). A record that fails validation ends the
/// walk with `broken = true`; the state is then the longest valid
/// prefix, which is itself a committed checkpoint.
pub(crate) fn replay_chain(
    m: &mut Machine,
    journal: Addr,
    capacity: u32,
    bank_seq: u64,
    tip: u64,
    regions: &[(Addr, u32)],
    misc_out: &mut Vec<u8>,
) -> Result<ChainEnd> {
    let mut off = 0u32;
    let mut last_seq = bank_seq;
    let mut bytes = 0u32;
    let mut expected = bank_seq + 1;
    while expected <= tip {
        let Some((rec_len, misc_len)) = validate_record(m, journal, capacity, off, expected)?
        else {
            return Ok(ChainEnd {
                next_off: off,
                last_seq,
                broken: true,
                bytes,
            });
        };
        let rec = journal.offset(off);
        // Misc block: the last valid record's copy wins.
        misc_out.clear();
        misc_out.extend_from_slice(
            m.mem
                .peek_slice(rec.offset(BANK_HEADER + 4), misc_len)?,
        );
        // Word entries, clamped against the same region list the
        // capture side used.
        let mut p = 4 + misc_len;
        while p + 8 <= rec_len {
            let e = m.mem.peek_slice(rec.offset(BANK_HEADER + p), 8)?;
            let lo = u32::from_le_bytes(e[0..4].try_into().expect("4-byte addr"));
            let val: [u8; 4] = e[4..8].try_into().expect("4-byte value");
            if let Some(&(start, len)) = regions
                .iter()
                .find(|&&(start, len)| lo >= start.0 && lo < start.0 + len)
            {
                let n = ((lo & !3) + 4).min(start.0 + len) - lo;
                m.mem.poke_bytes(Addr(lo), &val[..n as usize])?;
            }
            p += 8;
        }
        last_seq = expected;
        expected += 1;
        bytes += BANK_HEADER + rec_len;
        off += BANK_HEADER + rec_len;
    }
    Ok(ChainEnd {
        next_off: off,
        last_seq,
        broken: false,
        bytes,
    })
}

/// Validates the delta record at journal offset `off`: in-bounds,
/// seq/len/CRC valid, sequence exactly `expected`, and structurally a
/// delta payload (misc length in bounds, whole number of 8-byte word
/// entries). Returns `(payload_len, misc_len)` if valid.
fn validate_record(
    m: &Machine,
    journal: Addr,
    capacity: u32,
    off: u32,
    expected: u64,
) -> Result<Option<(u32, u32)>> {
    if off + BANK_HEADER > capacity {
        return Ok(None);
    }
    let rec = journal.offset(off);
    let max_payload = capacity - off - BANK_HEADER;
    let Some(seq) = validate_bank(m, rec, max_payload)? else {
        return Ok(None);
    };
    if seq != expected {
        return Ok(None);
    }
    let len = peek_u32(m, rec.offset(8))?;
    if len < 4 {
        return Ok(None);
    }
    let misc_len = peek_u32(m, rec.offset(BANK_HEADER))?;
    if 4 + misc_len > len || (len - 4 - misc_len) % 8 != 0 {
        return Ok(None);
    }
    Ok(Some((len, misc_len)))
}
