//! Shared helpers: control block and raw word access to simulated FRAM.

use tics_mcu::Addr;
use tics_vm::{Machine, VmError};

type Result<T> = std::result::Result<T, VmError>;

/// Magic marking an initialized control block.
const MAGIC: u32 = 0xBA5E_C001;

/// Size of the control block in bytes.
pub(crate) const CTRL_SIZE: u32 = 12;

/// A small persistent control block: `u32` magic, `u32` valid-buffer
/// flag (0 = none, 1 = A, 2 = B), `u32` scratch word (undo count or
/// similar), all in simulated FRAM.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtrlBlock {
    base: Addr,
}

impl CtrlBlock {
    pub(crate) fn new(base: Addr) -> CtrlBlock {
        CtrlBlock { base }
    }

    /// Initializes the block if this is the first boot on the image.
    pub(crate) fn init_if_needed(&self, m: &mut Machine) -> Result<()> {
        if peek_u32(m, self.base)? != MAGIC {
            poke_u32(m, self.base, MAGIC)?;
            poke_u32(m, self.base.offset(4), 0)?;
            poke_u32(m, self.base.offset(8), 0)?;
        }
        Ok(())
    }

    pub(crate) fn flag(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(4))
    }

    pub(crate) fn set_flag(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(4), v)
    }

    pub(crate) fn scratch(&self, m: &Machine) -> Result<u32> {
        peek_u32(m, self.base.offset(8))
    }

    pub(crate) fn set_scratch(&self, m: &mut Machine, v: u32) -> Result<()> {
        poke_u32(m, self.base.offset(8), v)
    }
}

pub(crate) fn peek_u32(m: &Machine, a: Addr) -> Result<u32> {
    let b = m.mem.peek_bytes(a, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub(crate) fn poke_u32(m: &mut Machine, a: Addr, v: u32) -> Result<()> {
    m.mem.poke_bytes(a, &v.to_le_bytes())?;
    Ok(())
}
