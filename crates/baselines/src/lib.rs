//! # tics-baselines — the systems TICS is evaluated against
//!
//! Faithful-behavior models of the five comparison systems from the
//! paper's evaluation (§5.3, Table 5), each implemented as a
//! [`tics_vm::IntermittentRuntime`]:
//!
//! * [`NaiveCheckpoint`] — "a naïve checkpoint-based system that logs the
//!   complete stack and all global variables (which closely resembles
//!   what MementOS does)": voltage-check sites, whole-state double
//!   buffering, checkpoint cost that grows with program state.
//! * [`ChinchillaRuntime`] — runs programs whose locals were promoted to
//!   globals by [`tics_minic::passes::instrument_chinchilla`];
//!   over-instrumented checkpoint sites thinned by a timing heuristic;
//!   rejects recursion; `.data`-heavy double buffering.
//! * [`RatchetRuntime`] — register-only checkpoints at every
//!   idempotent-section boundary; all memory in FRAM. Cheap per
//!   checkpoint but extremely frequent on pointer-heavy code.
//! * [`TaskKernel`] — the task-based kernels (Alpaca, InK, MayFly as
//!   [`TaskFlavor`]s): hand-ported task-graph programs, privatized
//!   global writes (undo log), commits at task boundaries, and — for
//!   InK/MayFly — time-aware extensions.
//!
//! As in `tics-core`, all persistent runtime state lives in simulated
//! FRAM; reboots rebuild host-side caches from it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bufs;
pub mod chinchilla;
pub mod naive;
pub mod ratchet;
pub mod taskkernel;

pub use chinchilla::ChinchillaRuntime;
pub use naive::NaiveCheckpoint;
pub use ratchet::RatchetRuntime;
pub use taskkernel::{TaskFlavor, TaskKernel};
