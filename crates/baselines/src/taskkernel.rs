//! Task-based kernels: Alpaca, InK, and MayFly.

use tics_mcu::{Addr, Registers};
use tics_minic::isa::{CkptSite, VarId};
use tics_minic::program::{Instrumentation, Program};
use tics_trace::{CkptCause, SpanKind, TraceEvent};
use tics_vm::{
    CheckpointKind, IntermittentRuntime, Machine, PortingEffort, ResumeAction, RuntimeCapabilities,
    TxDriver, VmError,
};

use crate::bufs::{
    bank_payload_into, bank_seq, build_delta_payload, dirty_words, journal_capacity, peek_u32,
    poke_u32, replay_chain, select_bank, stage_bank, verified_poke, BankChoice, CtrlBlock,
    DeltaJournal, BANK_HEADER, CTRL_SIZE,
};

type Result<T> = std::result::Result<T, VmError>;

/// Which task-based system the kernel models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskFlavor {
    /// Alpaca (Maeng et al., OOPSLA 2017): privatization + commit at
    /// task transitions; no pointers, no recursion, no time awareness.
    Alpaca,
    /// InK (Yıldırım et al., SenSys 2018): a reactive task kernel with
    /// timing support.
    Ink,
    /// MayFly (Hester et al., SenSys 2017): task graphs with timing
    /// constraints on edges; no loops in the graph.
    Mayfly,
}

impl TaskFlavor {
    /// Kernel library `.text` footprint (for Table 3-style accounting).
    #[must_use]
    pub fn runtime_text_bytes(self) -> u32 {
        match self {
            TaskFlavor::Alpaca => 2_600,
            TaskFlavor::Ink => 3_000,
            TaskFlavor::Mayfly => 3_300,
        }
    }

    /// Kernel fixed `.data` footprint (queues, graph tables) — the
    /// dominant shadow-copy term is added per-program by
    /// [`tics_minic::passes::instrument_task_based`].
    #[must_use]
    pub fn runtime_data_bytes(self) -> u32 {
        match self {
            TaskFlavor::Alpaca => 180,
            TaskFlavor::Ink => 260,
            TaskFlavor::Mayfly => 300,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TaskFlavor::Alpaca => "Alpaca",
            TaskFlavor::Ink => "InK",
            TaskFlavor::Mayfly => "MayFly",
        }
    }
}

/// A task-based kernel runtime.
///
/// Task programs are *hand-ported* (Table 5's "High" porting effort):
/// the source defines one function per task plus a dispatcher `main`
/// that threads a persistent `nv` current-task variable. The kernel
/// provides the systems' common execution guarantee — tasks are atomic
/// and idempotent:
///
/// * every global (task-shared) write is privatized via a persistent
///   undo log (equivalent, at the memory level, to Alpaca's
///   privatize-then-commit),
/// * at each task boundary the log is committed (cleared) and a small
///   dispatcher checkpoint (registers + SRAM frames) becomes the restart
///   point,
/// * a reboot rolls uncommitted writes back and restarts the interrupted
///   task from its entry.
///
/// InK and MayFly additionally support the timestamp/freshness
/// operations (their task graphs carry timing constraints); Alpaca does
/// not. None of them accept pointer-manipulating or recursive programs.
#[derive(Debug)]
pub struct TaskKernel {
    flavor: TaskFlavor,
    undo_capacity: u32,
    undo_count: u32,
    ctrl: Option<CtrlBlock>,
    buf_a: Addr,
    buf_b: Addr,
    ts_base: Addr,
    undo_base: Addr,
    journal: DeltaJournal,
    tx: TxDriver,
}

impl TaskKernel {
    /// Creates a kernel of the given flavor with the default
    /// privatization buffer (256 entries).
    #[must_use]
    pub fn new(flavor: TaskFlavor) -> TaskKernel {
        TaskKernel::with_undo_capacity(flavor, 256)
    }

    /// Creates a kernel with an explicit privatization-buffer capacity.
    #[must_use]
    pub fn with_undo_capacity(flavor: TaskFlavor, undo_capacity: u32) -> TaskKernel {
        TaskKernel {
            flavor,
            undo_capacity,
            undo_count: 0,
            ctrl: None,
            buf_a: Addr(0),
            buf_b: Addr(0),
            ts_base: Addr(0),
            undo_base: Addr(0),
            journal: DeltaJournal::default(),
            tx: TxDriver::default(),
        }
    }

    /// The kernel flavor.
    #[must_use]
    pub fn flavor(&self) -> TaskFlavor {
        self.flavor
    }

    fn attach(&mut self, m: &mut Machine) -> Result<CtrlBlock> {
        if let Some(c) = self.ctrl {
            return Ok(c);
        }
        let base = m.runtime_area_base();
        let sram = m.mem.layout().sram;
        let buf_bytes = BANK_HEADER + 16 + 4 + sram.len();
        self.buf_a = base.offset(CTRL_SIZE);
        self.buf_b = self.buf_a.offset(buf_bytes);
        let journal_bytes = journal_capacity(buf_bytes);
        self.journal
            .place(self.buf_b.offset(buf_bytes), journal_bytes);
        self.ts_base = self.buf_b.offset(buf_bytes + journal_bytes);
        self.undo_base = self
            .ts_base
            .offset(8 * m.loaded().program.annotated.len() as u32);
        let end = self.undo_base.offset(8 * self.undo_capacity);
        if !m.mem.layout().fram.contains(Addr(end.raw() - 1)) {
            return Err(VmError::Load(
                "task kernel buffers do not fit in FRAM".into(),
            ));
        }
        let ctrl = CtrlBlock::new(base);
        ctrl.init_if_needed(m)?;
        self.ctrl = Some(ctrl);
        Ok(ctrl)
    }

    /// Commit at a task boundary: the undo log becomes the committed
    /// state and a fresh dispatcher checkpoint is taken.
    fn commit_boundary(&mut self, m: &mut Machine) -> Result<()> {
        let ctrl = self.attach(m)?;
        let mut span = m.span(SpanKind::Checkpoint);
        let m = &mut *span;
        let sram = m.mem.layout().sram;
        let used = m.regs.sp.raw().saturating_sub(sram.start.raw());
        let max_payload = 16 + 4 + sram.len();
        if self.journal.is_cold() {
            self.journal
                .prime_cold(m, ctrl, self.buf_a, self.buf_b, max_payload)?;
        }
        let mut misc = [0u8; 20];
        for (i, w) in m.regs.to_words().iter().enumerate() {
            misc[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        misc[16..20].copy_from_slice(&used.to_le_bytes());
        // The dispatcher checkpoint covers the whole SRAM window (a
        // fixed superset of the live `[0, used)` prefix, so every chain
        // record shares the bank's region).
        let region = [(sram.start, sram.len())];
        let full_bytes = 20 + used;
        let delta_payload = 4 + 20 + 8 * dirty_words(m, &region);
        if self.journal.can_delta(BANK_HEADER + delta_payload, full_bytes)
            && 4 * delta_payload < 3 * full_bytes
        {
            let seq = self.journal.take_seq();
            build_delta_payload(m, &misc, &region, &mut self.journal.scratch);
            let staged = stage_bank(m, self.journal.record_addr(), seq, &self.journal.scratch)?;
            let plen = self.journal.scratch.len() as u32;
            let costs = m.mem.costs();
            let cost = costs.ckpt_base
                + costs.ckpt_seg_fixed
                + costs.ckpt_seg_per_byte * u64::from(plen);
            if !m.charge_atomic(cost) {
                return Ok(());
            }
            if !staged {
                // Corruption defeated staging: skip this boundary
                // commit. The chain tip is untouched and the undo log
                // keeps privatizing, so a reboot rolls back to the
                // still-valid previous checkpoint.
                return Ok(());
            }
            ctrl.set_delta_tip(m, seq)?;
            self.journal.committed_delta(BANK_HEADER + plen);
            m.mem.clear_dirty(sram.start, sram.len());
            self.undo_count = 0;
            ctrl.set_scratch(m, 0)?;
            m.emit(TraceEvent::CheckpointCommit {
                cause: CkptCause::Site,
                bytes: u64::from(plen),
            });
            return Ok(());
        }
        let target = if ctrl.flag(m)? == 1 { 2 } else { 1 };
        let buf = if target == 1 { self.buf_a } else { self.buf_b };
        let seq = self.journal.take_seq();
        self.journal.scratch.clear();
        self.journal.scratch.extend_from_slice(&misc);
        if used > 0 {
            self.journal
                .scratch
                .extend_from_slice(m.mem.peek_slice(sram.start, used)?);
        }
        let staged = stage_bank(m, buf, seq, &self.journal.scratch)?;
        let costs = m.mem.costs();
        let cost = costs.ckpt_base
            + costs.ckpt_seg_fixed
            + costs.ckpt_seg_per_byte * u64::from(full_bytes);
        if !m.charge_atomic(cost) {
            return Ok(());
        }
        if !staged {
            // Corruption defeated staging: skip this boundary commit.
            // The undo log keeps privatizing past the boundary, so a
            // reboot rolls back to the still-valid previous checkpoint.
            return Ok(());
        }
        ctrl.set_flag(m, target)?;
        ctrl.set_delta_base(m, seq)?;
        ctrl.set_delta_tip(m, 0)?;
        self.journal.committed_full();
        m.mem.clear_dirty(sram.start, sram.len());
        self.undo_count = 0;
        ctrl.set_scratch(m, 0)?;
        m.emit(TraceEvent::CheckpointCommit {
            cause: CkptCause::Site,
            bytes: u64::from(full_bytes),
        });
        Ok(())
    }

    fn rollback_all(&mut self, m: &mut Machine) -> Result<()> {
        let ctrl = self.attach(m)?;
        let mut span = m.span(SpanKind::Rollback);
        let m = &mut *span;
        self.undo_count = ctrl.scratch(m)?;
        let mut i = self.undo_count;
        while i > 0 {
            i -= 1;
            let slot = self.undo_base.offset(8 * i);
            let addr = Addr(peek_u32(m, slot)?);
            let old = peek_u32(m, slot.offset(4))?;
            poke_u32(m, addr, old)?;
            m.mem.add_cycles(m.mem.costs().rollback_cost(4));
            m.emit(TraceEvent::Rollback { bytes: 4 });
        }
        self.undo_count = 0;
        ctrl.set_scratch(m, 0)
    }

    fn supports_time(&self) -> bool {
        matches!(self.flavor, TaskFlavor::Ink | TaskFlavor::Mayfly)
    }
}

impl IntermittentRuntime for TaskKernel {
    fn name(&self) -> &'static str {
        self.flavor.name()
    }

    // `on_instruction` is the trait default (a no-op) for this runtime,
    // so the decoded dispatcher may run its fused fast loop.
    fn instruction_hook(&self) -> bool {
        false
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: false,
            recursion_support: false,
            scalable: false,
            timely_execution: self.supports_time(),
            memory_consistency: true,
            porting_effort: PortingEffort::High,
        }
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation != Instrumentation::TaskBased {
            return Err(VmError::IncompatibleInstrumentation {
                expected: "TaskBased".into(),
                found: format!("{:?}", program.instrumentation),
            });
        }
        if program.has_recursion {
            return Err(VmError::Load(format!(
                "{} does not support recursion (Table 5)",
                self.flavor.name()
            )));
        }
        if program.uses_pointers {
            return Err(VmError::Load(format!(
                "{} enforces a static memory model: pointers are not supported (Table 5)",
                self.flavor.name()
            )));
        }
        Ok(())
    }

    fn recycle(&mut self) {
        self.undo_count = 0;
        self.ctrl = None;
        self.buf_a = Addr(0);
        self.buf_b = Addr(0);
        self.ts_base = Addr(0);
        self.undo_base = Addr(0);
        self.journal.recycle();
        self.tx.recycle();
    }

    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction> {
        let ctrl = self.attach(m)?;
        // Writes of the interrupted task are rolled back: the task
        // restarts idempotently from its boundary.
        self.rollback_all(m)?;
        let sram = m.mem.layout().sram;
        let max_payload = 16 + 4 + sram.len();
        let buf = match select_bank(m, ctrl, self.buf_a, self.buf_b, max_payload)? {
            BankChoice::None => {
                self.journal
                    .prime_cold(m, ctrl, self.buf_a, self.buf_b, max_payload)?;
                return Ok(ResumeAction::Restart {
                    reinit_globals: false,
                });
            }
            BankChoice::FreshStart => {
                self.journal
                    .prime_cold(m, ctrl, self.buf_a, self.buf_b, max_payload)?;
                return Ok(ResumeAction::Restart {
                    reinit_globals: true,
                });
            }
            BankChoice::Bank(buf) => buf,
        };
        // Full-image restore first, then the delta chain (if one
        // extends this bank generation).
        bank_payload_into(m, buf, &mut self.journal.scratch)?;
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(
                self.journal.scratch[4 * i..4 * i + 4]
                    .try_into()
                    .expect("reg word"),
            );
        }
        let used = u32::from_le_bytes(
            self.journal.scratch[16..20]
                .try_into()
                .expect("used len"),
        );
        if used > 0
            && !verified_poke(m, sram.start, &self.journal.scratch[20..(20 + used) as usize])?
        {
            return Err(VmError::Trap(format!(
                "{}: stack restore failed read-back verification",
                self.flavor.name()
            )));
        }
        let base_seq = bank_seq(m, buf)?;
        let chain_base = ctrl.delta_base(m)?;
        let tip = ctrl.delta_tip(m)?;
        let region = [(sram.start, sram.len())];
        let mut replayed = 0u64;
        if chain_base == base_seq && tip > base_seq {
            let end = replay_chain(
                m,
                self.journal.base,
                self.journal.capacity,
                base_seq,
                tip,
                &region,
                &mut self.journal.misc,
            )?;
            if end.last_seq > base_seq {
                for (i, w) in words.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(
                        self.journal.misc[4 * i..4 * i + 4]
                            .try_into()
                            .expect("reg word"),
                    );
                }
            }
            replayed = u64::from(end.bytes);
            if end.broken {
                m.emit(TraceEvent::Recovery {
                    invalid_banks: 1,
                    fresh_start: false,
                });
                self.journal
                    .prime(tip.max(end.last_seq) + 1, end.next_off, false);
            } else {
                self.journal.prime(end.last_seq + 1, end.next_off, true);
            }
        } else if chain_base == base_seq {
            self.journal.prime(base_seq.max(tip) + 1, 0, true);
        } else {
            self.journal
                .prime(base_seq.max(chain_base).max(tip) + 1, 0, false);
        }
        m.regs = Registers::from_words(words);
        m.mem.clear_dirty(sram.start, sram.len());
        let mut span = m.span(SpanKind::Restore);
        let m = &mut *span;
        let costs = m.mem.costs();
        let cost = costs.restore_base
            + costs.restore_seg_fixed
            + costs.restore_seg_per_byte * (u64::from(20 + used) + replayed);
        let _ = m.charge_atomic(cost);
        m.emit(TraceEvent::Restore {
            bytes: u64::from(20 + used) + replayed,
        });
        Ok(ResumeAction::Restored)
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        _fidx: u16,
        frame_size: u32,
        _arg_bytes: u32,
    ) -> Result<Addr> {
        let sram = m.mem.layout().sram;
        let base = if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            sram.start
        } else {
            m.regs.sp
        };
        if !sram.contains_range(base, frame_size) {
            return Err(VmError::StackOverflow {
                detail: format!("SRAM stack exhausted allocating {frame_size} bytes"),
            });
        }
        Ok(base)
    }

    fn free_frame(&mut self, _m: &mut Machine, _fp: Addr) -> Result<()> {
        Ok(())
    }

    fn logged_store(&mut self, m: &mut Machine, addr: Addr, len: u32) -> Result<()> {
        let ctrl = self.attach(m)?;
        // Only task-shared state (the FRAM data segment) is privatized.
        let data_start = m.data_base();
        let data_end = data_start.offset(m.loaded().program.globals_size);
        if addr < data_start || addr >= data_end {
            return Ok(());
        }
        if self.undo_count >= self.undo_capacity {
            // A task that outgrows its privatization buffer cannot commit
            // atomically — tasks must be decomposed smaller (the manual
            // effort the paper criticizes).
            return Err(VmError::Trap(format!(
                "{}: task exceeds its privatization buffer ({} entries); \
                 split the task",
                self.flavor.name(),
                self.undo_capacity
            )));
        }
        let mut span = m.span(SpanKind::UndoLog);
        let m = &mut *span;
        let old = peek_u32(m, addr)?;
        let slot = self.undo_base.offset(8 * self.undo_count);
        poke_u32(m, slot, addr.raw())?;
        poke_u32(m, slot.offset(4), old)?;
        self.undo_count += 1;
        ctrl.set_scratch(m, self.undo_count)?;
        m.mem.add_cycles(m.mem.costs().undo_log_cost(len));
        m.emit(TraceEvent::UndoAppend {
            bytes: u64::from(len),
        });
        Ok(())
    }

    fn tx_driver(&mut self) -> Option<&mut TxDriver> {
        Some(&mut self.tx)
    }

    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()> {
        // A task boundary inside an open peripheral transaction is
        // deferred (transactions are expected to sit within one task
        // body; this guards the manual-checkpoint escape hatch).
        if self.tx.in_txn() {
            return Ok(());
        }
        match kind {
            CheckpointKind::Site(CkptSite::TaskBoundary | CkptSite::Manual) => {
                self.commit_boundary(m)
            }
            _ => Ok(()),
        }
    }

    fn timestamp_var(&mut self, m: &mut Machine, var: VarId) -> Result<()> {
        if !self.supports_time() {
            return Err(VmError::Trap(format!(
                "{} has no timing support (Table 5)",
                self.flavor.name()
            )));
        }
        self.attach(m)?;
        let now = m.now().as_micros();
        m.mem
            .poke_bytes(self.ts_base.offset(8 * u32::from(var)), &now.to_le_bytes())?;
        m.mem.add_cycles(10);
        Ok(())
    }

    fn expires_check(&mut self, m: &mut Machine, var: VarId) -> Result<bool> {
        if !self.supports_time() {
            return Err(VmError::Trap(format!(
                "{} has no timing support (Table 5)",
                self.flavor.name()
            )));
        }
        self.attach(m)?;
        let ttl = m.loaded().program.annotated[var as usize].ttl_us;
        m.mem.add_cycles(12);
        if ttl == 0 {
            return Ok(true);
        }
        let ts = m.mem.peek_u64(self.ts_base.offset(8 * u32::from(var)))?;
        Ok(m.now().as_micros() < ts.saturating_add(ttl))
    }

    fn timely_check(&mut self, m: &mut Machine, deadline_ms: i32) -> Result<bool> {
        if !self.supports_time() {
            return Err(VmError::Trap(format!(
                "{} has no timing support (Table 5)",
                self.flavor.name()
            )));
        }
        m.mem.add_cycles(12);
        Ok((m.now().as_micros() / 1_000) < deadline_ms.max(0) as u64)
    }

    fn atomic_begin(&mut self, _m: &mut Machine) -> Result<()> {
        Ok(())
    }

    fn atomic_end(&mut self, _m: &mut Machine) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_energy::ContinuousPower;
    use tics_minic::{compile, opt::OptLevel, passes};
    use tics_vm::{Executor, MachineConfig};

    /// A two-task pipeline: task 0 accumulates, task 1 publishes.
    const TASK_PROGRAM: &str = "
        nv int cur_task;
        nv int done;
        int acc;
        int out;
        int task_work() {
            for (int i = 0; i < 50; i++) { acc = acc + 1; }
            return 1;
        }
        int task_publish() {
            out = acc;
            send(out);
            done = 1;
            return 0;
        }
        int main() {
            while (done == 0) {
                if (cur_task == 0) { cur_task = task_work(); }
                else { cur_task = task_publish(); }
            }
            return out;
        }";

    fn task_machine(src: &str, tasks: &[&str], flavor: TaskFlavor) -> Machine {
        let mut prog = compile(src, OptLevel::O1).unwrap();
        passes::instrument_task_based(
            &mut prog,
            tasks,
            flavor.runtime_text_bytes(),
            flavor.runtime_data_bytes(),
        )
        .unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    #[test]
    fn pipeline_completes_on_continuous_power() {
        let mut m = task_machine(
            TASK_PROGRAM,
            &["task_work", "task_publish"],
            TaskFlavor::Alpaca,
        );
        let mut rt = TaskKernel::new(TaskFlavor::Alpaca);
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(50));
        assert_eq!(m.stats().sends(), vec![50]);
    }

    #[test]
    fn tasks_restart_idempotently_across_failures() {
        let mut m = task_machine(
            TASK_PROGRAM,
            &["task_work", "task_publish"],
            TaskFlavor::Alpaca,
        );
        let mut rt = TaskKernel::new(TaskFlavor::Alpaca);
        // The first period kills task_work mid-way; the second is long
        // enough for the task to restart and the pipeline to finish. (A
        // task must fit within one on-period — the task-sizing burden the
        // paper describes.)
        let mut supply = tics_energy::RecordedTrace::new([(6_000, 200), (200_000, 0)]);
        let out = Executor::new()
            .with_time_budget(500_000_000)
            .run(&mut m, &mut rt, &mut supply)
            .unwrap();
        // task_work was interrupted; privatized increments were rolled
        // back, so the final accumulator is exactly 50.
        assert_eq!(out.exit_code(), Some(50));
        assert!(m.stats().power_failures > 0);
        assert!(m.stats().undo_rollbacks > 0);
    }

    #[test]
    fn rejects_pointer_programs() {
        let mut prog = compile(
            "int a[4];
             int task_t() { int *p = a; *p = 1; return 0; }
             int main() { task_t(); return 0; }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_task_based(&mut prog, &["task_t"], 0, 0).unwrap();
        let rt = TaskKernel::new(TaskFlavor::Alpaca);
        let err = rt.check_program(&prog).unwrap_err();
        assert!(err.to_string().contains("pointers"));
    }

    #[test]
    fn rejects_recursive_programs() {
        let mut prog = compile(
            "int task_r(int n) { if (n == 0) return 0; return task_r(n - 1); }
             int main() { task_r(3); return 0; }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_task_based(&mut prog, &["task_r"], 0, 0).unwrap();
        assert!(TaskKernel::new(TaskFlavor::Ink)
            .check_program(&prog)
            .is_err());
    }

    #[test]
    fn oversized_task_traps() {
        let mut prog = compile(
            "int big[600];
             int task_huge() {
                 for (int i = 0; i < 600; i++) { big[i] = i; }
                 return 0;
             }
             int main() { task_huge(); return 0; }",
            OptLevel::O1,
        )
        .unwrap();
        passes::instrument_task_based(&mut prog, &["task_huge"], 0, 0).unwrap();
        let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
        let mut rt = TaskKernel::with_undo_capacity(TaskFlavor::Alpaca, 64);
        let err = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap_err();
        assert!(err.to_string().contains("privatization"));
    }

    #[test]
    fn time_support_matches_table5() {
        let mut m = Machine::new(
            {
                let mut p = compile("int main() { return 0; }", OptLevel::O1).unwrap();
                p.instrumentation = Instrumentation::TaskBased;
                p
            },
            MachineConfig::default(),
        )
        .unwrap();
        assert!(TaskKernel::new(TaskFlavor::Alpaca)
            .timely_check(&mut m, 100)
            .is_err());
        assert!(TaskKernel::new(TaskFlavor::Ink)
            .timely_check(&mut m, 100)
            .is_ok());
        assert!(TaskKernel::new(TaskFlavor::Mayfly)
            .timely_check(&mut m, 100)
            .is_ok());
    }

    fn clobber(m: &mut Machine, buf: Addr) {
        let a = buf.offset(BANK_HEADER + 2);
        let b = m.mem.peek_bytes(a, 1).unwrap()[0];
        m.mem.poke_bytes(a, &[b ^ 0x10]).unwrap();
    }

    #[test]
    fn corrupt_banks_fall_back_then_fresh_start() {
        let mut m = task_machine(
            TASK_PROGRAM,
            &["task_work", "task_publish"],
            TaskFlavor::Alpaca,
        );
        let mut rt = TaskKernel::new(TaskFlavor::Alpaca);
        Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ctrl = rt.ctrl.unwrap();
        let flag = ctrl.flag(&m).unwrap();
        assert!(flag == 1 || flag == 2, "a boundary must have committed");
        let (active, other) = if flag == 1 {
            (rt.buf_a, rt.buf_b)
        } else {
            (rt.buf_b, rt.buf_a)
        };
        clobber(&mut m, active);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(action, ResumeAction::Restored));
        assert_eq!(m.stats().recoveries, 1);
        assert_eq!(ctrl.flag(&m).unwrap(), if flag == 1 { 2 } else { 1 });
        clobber(&mut m, other);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(
            action,
            ResumeAction::Restart {
                reinit_globals: true
            }
        ));
        assert_eq!(m.stats().recoveries, 2);
        assert_eq!(m.stats().fresh_starts, 1);
        assert_eq!(ctrl.flag(&m).unwrap(), 0);
    }

    #[test]
    fn capabilities_rows_match_table5() {
        let alpaca = TaskKernel::new(TaskFlavor::Alpaca).capabilities();
        assert!(!alpaca.pointer_support && !alpaca.recursion_support);
        assert!(!alpaca.timely_execution);
        assert_eq!(alpaca.porting_effort, PortingEffort::High);
        let ink = TaskKernel::new(TaskFlavor::Ink).capabilities();
        assert!(ink.timely_execution);
        let mayfly = TaskKernel::new(TaskFlavor::Mayfly).capabilities();
        assert!(mayfly.timely_execution);
    }
}
