//! Chinchilla-style adaptive checkpointing over promoted statics.

use tics_mcu::{Addr, Registers};
use tics_minic::isa::CkptSite;
use tics_minic::program::{Instrumentation, Program};
use tics_trace::{CkptCause, SpanKind, TraceEvent};
use tics_vm::{
    CheckpointKind, IntermittentRuntime, Machine, PortingEffort, ResumeAction, RuntimeCapabilities,
    TxDriver, VmError,
};

use crate::bufs::{
    bank_payload_into, bank_seq, build_delta_payload, dirty_words, journal_capacity, replay_chain,
    select_bank, stage_bank, verified_poke, BankChoice, CtrlBlock, DeltaJournal, BANK_HEADER,
    CTRL_SIZE,
};

type Result<T> = std::result::Result<T, VmError>;

/// A Chinchilla-style runtime (Maeng et al., OSDI 2018, as characterized
/// in the paper's §5.3.1).
///
/// Runs programs transformed by
/// [`tics_minic::passes::instrument_chinchilla`]: every local is promoted
/// to a non-volatile global, which rules out recursion and explodes
/// `.data`. The code is *over-instrumented* with checkpoint sites; a
/// timing heuristic stands in for Chinchilla's dynamic enable/disable
/// machinery — a site commits only when `min_interval_us` has elapsed.
/// A checkpoint double-buffers the registers, the (small) frame stack,
/// and the entire static area — original globals plus promoted locals —
/// so its cost scales with program size (Table 5 "Poor" scalability).
#[derive(Debug)]
pub struct ChinchillaRuntime {
    min_interval_us: u64,
    last_ckpt_at: u64,
    ctrl: Option<CtrlBlock>,
    buf_a: Addr,
    buf_b: Addr,
    buf_bytes: u32,
    journal: DeltaJournal,
    tx: TxDriver,
}

impl ChinchillaRuntime {
    /// Creates the runtime; `min_interval_us` is the heuristic's minimum
    /// spacing between committed checkpoints.
    #[must_use]
    pub fn new(min_interval_us: u64) -> ChinchillaRuntime {
        ChinchillaRuntime {
            min_interval_us,
            last_ckpt_at: 0,
            ctrl: None,
            buf_a: Addr(0),
            buf_b: Addr(0),
            buf_bytes: 0,
            journal: DeltaJournal::default(),
            tx: TxDriver::default(),
        }
    }

    fn attach(&mut self, m: &mut Machine) -> Result<CtrlBlock> {
        if let Some(c) = self.ctrl {
            return Ok(c);
        }
        let base = m.runtime_area_base();
        let sram = m.mem.layout().sram;
        let statics = m.loaded().program.globals_size;
        self.buf_bytes = BANK_HEADER + 16 + 4 + sram.len() + statics;
        self.buf_a = base.offset(CTRL_SIZE);
        self.buf_b = self.buf_a.offset(self.buf_bytes);
        let journal_bytes = journal_capacity(self.buf_bytes);
        self.journal
            .place(self.buf_b.offset(self.buf_bytes), journal_bytes);
        let end = self.buf_b.offset(self.buf_bytes + journal_bytes);
        if !m.mem.layout().fram.contains(Addr(end.raw() - 1)) {
            return Err(VmError::Load(
                "chinchilla double buffers do not fit in FRAM (statics too large)".into(),
            ));
        }
        let ctrl = CtrlBlock::new(base);
        ctrl.init_if_needed(m)?;
        self.ctrl = Some(ctrl);
        Ok(ctrl)
    }

    /// The delta capture/replay regions: the whole SRAM window (a fixed
    /// superset of the bank's live `[0, used)` prefix — extra words are
    /// dead stack, sound to capture) plus the promoted statics.
    fn regions(m: &Machine) -> [(Addr, u32); 2] {
        let sram = m.mem.layout().sram;
        [
            (sram.start, sram.len()),
            (m.data_base(), m.loaded().program.globals_size),
        ]
    }

    fn commit(&mut self, m: &mut Machine, cause: CkptCause) -> Result<()> {
        let ctrl = self.attach(m)?;
        let mut span = m.span(SpanKind::Checkpoint);
        let m = &mut *span;
        let sram = m.mem.layout().sram;
        let used = m.regs.sp.raw().saturating_sub(sram.start.raw());
        let statics_len = m.loaded().program.globals_size;
        let max_payload = self.buf_bytes - BANK_HEADER;
        if self.journal.is_cold() {
            self.journal
                .prime_cold(m, ctrl, self.buf_a, self.buf_b, max_payload)?;
        }
        let mut misc = [0u8; 20];
        for (i, w) in m.regs.to_words().iter().enumerate() {
            misc[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        misc[16..20].copy_from_slice(&used.to_le_bytes());
        let regions = Self::regions(m);
        let full_bytes = 20 + used + statics_len;
        let delta_payload = 4 + 20 + 8 * dirty_words(m, &regions);
        if self.journal.can_delta(BANK_HEADER + delta_payload, full_bytes)
            && 4 * delta_payload < 3 * full_bytes
        {
            let seq = self.journal.take_seq();
            build_delta_payload(m, &misc, &regions, &mut self.journal.scratch);
            let staged = stage_bank(m, self.journal.record_addr(), seq, &self.journal.scratch)?;
            let plen = self.journal.scratch.len() as u32;
            let costs = m.mem.costs();
            let cost = costs.ckpt_base
                + costs.ckpt_seg_fixed
                + costs.ckpt_seg_per_byte * u64::from(plen);
            self.last_ckpt_at = m.cycles();
            if !m.charge_atomic(cost) {
                return Ok(()); // died mid-commit: previous checkpoint stands
            }
            if !staged {
                // Corruption defeated staging: skip this commit; the
                // chain tip is untouched, so restores still replay to
                // the previous committed state.
                return Ok(());
            }
            ctrl.set_delta_tip(m, seq)?;
            self.journal.committed_delta(BANK_HEADER + plen);
            for (start, len) in regions {
                m.mem.clear_dirty(start, len);
            }
            m.emit(TraceEvent::CheckpointCommit {
                cause,
                bytes: u64::from(plen),
            });
            return Ok(());
        }
        let target = if ctrl.flag(m)? == 1 { 2 } else { 1 };
        let buf = if target == 1 { self.buf_a } else { self.buf_b };
        let seq = self.journal.take_seq();
        self.journal.scratch.clear();
        self.journal.scratch.extend_from_slice(&misc);
        if used > 0 {
            self.journal
                .scratch
                .extend_from_slice(m.mem.peek_slice(sram.start, used)?);
        }
        if statics_len > 0 {
            self.journal
                .scratch
                .extend_from_slice(m.mem.peek_slice(m.data_base(), statics_len)?);
        }
        let staged = stage_bank(m, buf, seq, &self.journal.scratch)?;
        let costs = m.mem.costs();
        let cost = costs.ckpt_base
            + costs.ckpt_seg_fixed
            + costs.ckpt_seg_per_byte * u64::from(full_bytes);
        self.last_ckpt_at = m.cycles();
        if !m.charge_atomic(cost) {
            return Ok(()); // died mid-commit: previous checkpoint stands
        }
        if !staged {
            // Corruption defeated staging: skip this commit. Restores
            // replace the whole state image, so continuing from the
            // previous checkpoint stays consistent.
            return Ok(());
        }
        ctrl.set_flag(m, target)?;
        ctrl.set_delta_base(m, seq)?;
        ctrl.set_delta_tip(m, 0)?;
        self.journal.committed_full();
        for (start, len) in regions {
            m.mem.clear_dirty(start, len);
        }
        m.emit(TraceEvent::CheckpointCommit {
            cause,
            bytes: u64::from(full_bytes),
        });
        Ok(())
    }
}

impl Default for ChinchillaRuntime {
    fn default() -> Self {
        ChinchillaRuntime::new(3_000)
    }
}

impl IntermittentRuntime for ChinchillaRuntime {
    fn name(&self) -> &'static str {
        "Chinchilla"
    }

    // `on_instruction` is the trait default (a no-op) for this runtime,
    // so the decoded dispatcher may run its fused fast loop.
    fn instruction_hook(&self) -> bool {
        false
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: true,
            recursion_support: false,
            scalable: false,
            timely_execution: false,
            memory_consistency: true,
            porting_effort: PortingEffort::None,
        }
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation != Instrumentation::Chinchilla {
            return Err(VmError::IncompatibleInstrumentation {
                expected: "Chinchilla".into(),
                found: format!("{:?}", program.instrumentation),
            });
        }
        if program.has_recursion {
            return Err(VmError::Load(
                "chinchilla cannot run recursive programs (§5.3.1)".into(),
            ));
        }
        Ok(())
    }

    fn recycle(&mut self) {
        self.last_ckpt_at = 0;
        self.ctrl = None;
        self.buf_a = Addr(0);
        self.buf_b = Addr(0);
        self.buf_bytes = 0;
        self.journal.recycle();
        self.tx.recycle();
    }

    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction> {
        let ctrl = self.attach(m)?;
        self.last_ckpt_at = m.cycles();
        let max_payload = self.buf_bytes - BANK_HEADER;
        let buf = match select_bank(m, ctrl, self.buf_a, self.buf_b, max_payload)? {
            BankChoice::None | BankChoice::FreshStart => {
                // No (valid) checkpoint, so the committed image is the
                // pristine load image. Chinchilla's versioned memory
                // discards uncommitted writes — and the promoted locals
                // are `nv` by construction, outside the executor's
                // volatile-only reinit — so *all* statics must go back
                // to their initializers here.
                m.init_globals(true)?;
                self.journal
                    .prime_cold(m, ctrl, self.buf_a, self.buf_b, max_payload)?;
                return Ok(ResumeAction::Restart {
                    reinit_globals: false,
                });
            }
            BankChoice::Bank(buf) => buf,
        };
        // Full-image restore first: rewriting the live stack prefix and
        // the entire statics area wipes any uncommitted stores there.
        bank_payload_into(m, buf, &mut self.journal.scratch)?;
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(
                self.journal.scratch[4 * i..4 * i + 4]
                    .try_into()
                    .expect("reg word"),
            );
        }
        let used = u32::from_le_bytes(
            self.journal.scratch[16..20]
                .try_into()
                .expect("used len"),
        );
        let sram = m.mem.layout().sram;
        if used > 0
            && !verified_poke(m, sram.start, &self.journal.scratch[20..(20 + used) as usize])?
        {
            return Err(VmError::Trap(
                "Chinchilla: stack restore failed read-back verification".into(),
            ));
        }
        let statics_len = m.loaded().program.globals_size;
        if statics_len > 0
            && !verified_poke(m, m.data_base(), &self.journal.scratch[(20 + used) as usize..])?
        {
            return Err(VmError::Trap(
                "Chinchilla: statics restore failed read-back verification".into(),
            ));
        }
        // Then the delta chain, if one extends this bank generation.
        let base_seq = bank_seq(m, buf)?;
        let chain_base = ctrl.delta_base(m)?;
        let tip = ctrl.delta_tip(m)?;
        let regions = Self::regions(m);
        let mut replayed = 0u64;
        if chain_base == base_seq && tip > base_seq {
            let end = replay_chain(
                m,
                self.journal.base,
                self.journal.capacity,
                base_seq,
                tip,
                &regions,
                &mut self.journal.misc,
            )?;
            if end.last_seq > base_seq {
                for (i, w) in words.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(
                        self.journal.misc[4 * i..4 * i + 4]
                            .try_into()
                            .expect("reg word"),
                    );
                }
            }
            replayed = u64::from(end.bytes);
            if end.broken {
                m.emit(TraceEvent::Recovery {
                    invalid_banks: 1,
                    fresh_start: false,
                });
                self.journal
                    .prime(tip.max(end.last_seq) + 1, end.next_off, false);
            } else {
                self.journal.prime(end.last_seq + 1, end.next_off, true);
            }
        } else if chain_base == base_seq {
            self.journal.prime(base_seq.max(tip) + 1, 0, true);
        } else {
            // The chain belongs to a different bank generation (bank
            // fallback restored an older image): unusable, next
            // checkpoint re-anchors with a full image.
            self.journal
                .prime(base_seq.max(chain_base).max(tip) + 1, 0, false);
        }
        m.regs = Registers::from_words(words);
        // The restored regions now equal the committed image: ack them.
        for (start, len) in regions {
            m.mem.clear_dirty(start, len);
        }
        let mut span = m.span(SpanKind::Restore);
        let m = &mut *span;
        let costs = m.mem.costs();
        let cost = costs.restore_base
            + costs.restore_seg_fixed
            + costs.restore_seg_per_byte * (u64::from(20 + used + statics_len) + replayed);
        let _ = m.charge_atomic(cost);
        m.emit(TraceEvent::Restore {
            bytes: u64::from(20 + used + statics_len) + replayed,
        });
        Ok(ResumeAction::Restored)
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        _fidx: u16,
        frame_size: u32,
        _arg_bytes: u32,
    ) -> Result<Addr> {
        let sram = m.mem.layout().sram;
        let base = if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            sram.start
        } else {
            m.regs.sp
        };
        if !sram.contains_range(base, frame_size) {
            return Err(VmError::StackOverflow {
                detail: format!("SRAM frame stack exhausted allocating {frame_size} bytes"),
            });
        }
        Ok(base)
    }

    fn free_frame(&mut self, _m: &mut Machine, _fp: Addr) -> Result<()> {
        Ok(())
    }

    fn logged_store(&mut self, _m: &mut Machine, _addr: Addr, _len: u32) -> Result<()> {
        Ok(())
    }

    fn tx_driver(&mut self) -> Option<&mut TxDriver> {
        Some(&mut self.tx)
    }

    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()> {
        // Never checkpoint inside an open peripheral transaction: replay
        // from such a checkpoint would re-drive wire bytes under the same
        // attempt number.
        if self.tx.in_txn() {
            return Ok(());
        }
        match kind {
            CheckpointKind::Site(CkptSite::Auto | CkptSite::VoltageCheck)
            | CheckpointKind::Timer
            | CheckpointKind::Voltage => {
                let cause = match kind {
                    CheckpointKind::Timer => CkptCause::Timer,
                    CheckpointKind::Voltage => CkptCause::Voltage,
                    _ => CkptCause::Site,
                };
                if m.cycles().saturating_sub(self.last_ckpt_at) >= self.min_interval_us {
                    self.commit(m, cause)?;
                }
                Ok(())
            }
            CheckpointKind::Site(_) => self.commit(m, CkptCause::Site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_energy::{ContinuousPower, PeriodicTrace};
    use tics_minic::{compile, opt::OptLevel, passes};
    use tics_vm::{Executor, MachineConfig};

    fn chin_machine(src: &str) -> Machine {
        let mut prog = compile(src, OptLevel::O1).unwrap();
        passes::instrument_chinchilla(&mut prog).unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    #[test]
    fn completes_simple_programs() {
        let mut m = chin_machine(
            "int main() { int s = 0; for (int i = 0; i < 30; i++) { s += i; } return s; }",
        );
        let mut rt = ChinchillaRuntime::default();
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(435));
    }

    #[test]
    fn survives_power_failures() {
        let mut m = chin_machine(
            "int g;
             int main() {
                 for (int i = 0; i < 600; i++) { g = g + 1; }
                 return g;
             }",
        );
        let mut rt = ChinchillaRuntime::new(1_500);
        let out = Executor::new()
            .with_time_budget(500_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(25_000, 500))
            .unwrap();
        assert_eq!(out.exit_code(), Some(600));
        assert!(m.stats().power_failures > 0);
    }

    #[test]
    fn rejects_recursive_programs() {
        // instrument_chinchilla itself rejects; the runtime double-checks
        // with a hand-tagged image.
        let mut prog = compile(
            "int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
             int main() { return fib(4); }",
            OptLevel::O1,
        )
        .unwrap();
        assert!(passes::instrument_chinchilla(&mut prog).is_err());
        prog.instrumentation = Instrumentation::Chinchilla;
        assert!(ChinchillaRuntime::default().check_program(&prog).is_err());
    }

    #[test]
    fn checkpoints_scale_with_promoted_statics() {
        let small = {
            let mut m = chin_machine("int main() { int x = 1; checkpoint(); return x; }");
            let mut rt = ChinchillaRuntime::default();
            Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            m.stats().mean_checkpoint_bytes().unwrap()
        };
        let big = {
            let mut m = chin_machine(
                "int main() { int blob[300]; blob[0] = 1; checkpoint(); return blob[0]; }",
            );
            let mut rt = ChinchillaRuntime::default();
            Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            m.stats().mean_checkpoint_bytes().unwrap()
        };
        // The local blob was promoted to statics, so the checkpoint grew
        // by ~1200 bytes even though it is a *local* in the source.
        assert!(big > small + 1_000.0, "{small} vs {big}");
    }

    #[test]
    fn rejects_wrong_instrumentation() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        assert!(ChinchillaRuntime::default().check_program(&prog).is_err());
    }

    fn clobber(m: &mut Machine, buf: Addr) {
        let a = buf.offset(BANK_HEADER + 2);
        let b = m.mem.peek_bytes(a, 1).unwrap()[0];
        m.mem.poke_bytes(a, &[b ^ 0x10]).unwrap();
    }

    #[test]
    fn corrupt_banks_fall_back_then_fresh_start() {
        let mut m = chin_machine(
            "int g;
             int main() { for (int i = 0; i < 600; i++) { g = g + 1; } return g; }",
        );
        let mut rt = ChinchillaRuntime::new(1_500);
        Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        let ctrl = rt.ctrl.unwrap();
        let flag = ctrl.flag(&m).unwrap();
        assert!(flag == 1 || flag == 2, "a checkpoint must have committed");
        let (active, other) = if flag == 1 {
            (rt.buf_a, rt.buf_b)
        } else {
            (rt.buf_b, rt.buf_a)
        };
        clobber(&mut m, active);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(action, ResumeAction::Restored));
        assert_eq!(m.stats().recoveries, 1);
        // With the fallback corrupted too, recovery degrades to a fresh
        // start (Chinchilla re-seeds all statics from the load image).
        clobber(&mut m, other);
        let action = rt.on_boot(&mut m).unwrap();
        assert!(matches!(
            action,
            ResumeAction::Restart {
                reinit_globals: false
            }
        ));
        assert_eq!(m.stats().recoveries, 2);
        assert_eq!(m.stats().fresh_starts, 1);
        assert_eq!(ctrl.flag(&m).unwrap(), 0);
    }
}
