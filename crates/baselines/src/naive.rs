//! MementOS-style naive checkpointing.

use tics_mcu::{Addr, Registers};
use tics_minic::isa::CkptSite;
use tics_trace::{CkptCause, SpanKind, TraceEvent};
use tics_minic::program::{Instrumentation, Program};
use tics_vm::{
    CheckpointKind, IntermittentRuntime, Machine, PortingEffort, ResumeAction, RuntimeCapabilities,
    VmError,
};

use crate::bufs::{peek_u32, poke_u32, CtrlBlock, CTRL_SIZE};

type Result<T> = std::result::Result<T, VmError>;

/// Cycles charged per voltage-probe site visit (ADC conversion time).
const VOLTAGE_PROBE_US: u64 = 35;

/// The paper's naive comparison point: "logs the complete stack and all
/// global variables (which closely resembles what MementOS does)".
///
/// The stack lives in volatile SRAM. At each voltage-check site (loop
/// latches and function entries, inserted by
/// [`tics_minic::passes::instrument_mementos`]) the runtime commits a
/// checkpoint if enough time has passed since the last one — modeling
/// MementOS's intermittent voltage probes. A checkpoint copies the
/// *entire used stack plus every global* into a double-buffered FRAM
/// area, so its cost grows with program state: exactly the scalability
/// failure the paper attributes to this class of systems.
#[derive(Debug)]
pub struct NaiveCheckpoint {
    /// Minimum µs between committed checkpoints (the voltage-probe
    /// hysteresis).
    min_interval_us: u64,
    last_ckpt_at: u64,
    ctrl: Option<CtrlBlock>,
    buf_a: Addr,
    buf_b: Addr,
    buf_bytes: u32,
    /// Reused staging buffer so steady-state commits and restores do
    /// not allocate.
    scratch: Vec<u8>,
}

impl NaiveCheckpoint {
    /// Creates the runtime with a probe interval of `min_interval_us`.
    #[must_use]
    pub fn new(min_interval_us: u64) -> NaiveCheckpoint {
        NaiveCheckpoint {
            min_interval_us,
            last_ckpt_at: 0,
            ctrl: None,
            buf_a: Addr(0),
            buf_b: Addr(0),
            buf_bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// Copies `len` bytes from `src` to `dst` through the reused
    /// scratch buffer (simulated memory cannot be borrowed for read and
    /// write at once).
    fn copy_via_scratch(&mut self, m: &mut Machine, src: Addr, dst: Addr, len: u32) -> Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(m.mem.peek_slice(src, len)?);
        m.mem.poke_bytes(dst, &self.scratch)?;
        Ok(())
    }

    fn attach(&mut self, m: &mut Machine) -> Result<CtrlBlock> {
        if let Some(c) = self.ctrl {
            return Ok(c);
        }
        let base = m.runtime_area_base();
        let sram = m.mem.layout().sram;
        let globals = m.loaded().program.globals_size;
        // Buffer: regs (16) + used-stack length (4) + stack + globals.
        self.buf_bytes = 16 + 4 + sram.len() + globals;
        self.buf_a = base.offset(CTRL_SIZE);
        self.buf_b = self.buf_a.offset(self.buf_bytes);
        let end = self.buf_b.offset(self.buf_bytes);
        if !m.mem.layout().fram.contains(Addr(end.raw() - 1)) {
            return Err(VmError::Load(
                "naive checkpoint buffers do not fit in FRAM".into(),
            ));
        }
        let ctrl = CtrlBlock::new(base);
        ctrl.init_if_needed(m)?;
        self.ctrl = Some(ctrl);
        Ok(ctrl)
    }

    fn commit(&mut self, m: &mut Machine, cause: CkptCause) -> Result<()> {
        let ctrl = self.attach(m)?;
        let mut span = m.span(SpanKind::Checkpoint);
        let m = &mut *span;
        let target = if ctrl.flag(m)? == 1 { 2 } else { 1 };
        let buf = if target == 1 { self.buf_a } else { self.buf_b };
        let sram = m.mem.layout().sram;
        let used = m.regs.sp.raw().saturating_sub(sram.start.raw());
        let words = m.regs.to_words();
        for (i, w) in words.iter().enumerate() {
            poke_u32(m, buf.offset(4 * i as u32), *w)?;
        }
        poke_u32(m, buf.offset(16), used)?;
        if used > 0 {
            self.copy_via_scratch(m, sram.start, buf.offset(20), used)?;
        }
        let globals_len = m.loaded().program.globals_size;
        let data_base = m.data_base();
        if globals_len > 0 {
            self.copy_via_scratch(m, data_base, buf.offset(20 + sram.len()), globals_len)?;
        }
        let bytes = 20 + used + globals_len;
        let costs = m.mem.costs().clone();
        let cost =
            costs.ckpt_base + costs.ckpt_seg_fixed + costs.ckpt_seg_per_byte * u64::from(bytes);
        self.last_ckpt_at = m.cycles();
        // The whole-state copy must fit in the remaining energy or the
        // flag never flips — this is how naive checkpointing starves.
        if !m.charge_atomic(cost) {
            return Ok(());
        }
        ctrl.set_flag(m, target)?;
        m.emit(TraceEvent::CheckpointCommit {
            cause,
            bytes: u64::from(bytes),
        });
        Ok(())
    }
}

impl IntermittentRuntime for NaiveCheckpoint {
    fn name(&self) -> &'static str {
        "naive-mementos"
    }

    // `on_instruction` is the trait default (a no-op) for this runtime,
    // so the decoded dispatcher may run its fused fast loop.
    fn instruction_hook(&self) -> bool {
        false
    }

    fn capabilities(&self) -> RuntimeCapabilities {
        RuntimeCapabilities {
            pointer_support: true,
            recursion_support: true,
            scalable: false,
            timely_execution: false,
            // A reboot before the first commit restarts main with
            // whatever `nv` state earlier execution left behind (the
            // executor's restart reinit covers volatile statics only) —
            // the WAR hole Table 5 scores against this class of systems
            // and the divergence the fault harness reproduces.
            memory_consistency: false,
            porting_effort: PortingEffort::None,
        }
    }

    fn check_program(&self, program: &Program) -> Result<()> {
        if program.instrumentation != Instrumentation::Mementos {
            return Err(VmError::IncompatibleInstrumentation {
                expected: "Mementos".into(),
                found: format!("{:?}", program.instrumentation),
            });
        }
        Ok(())
    }

    fn recycle(&mut self) {
        self.last_ckpt_at = 0;
        self.ctrl = None;
        self.buf_a = Addr(0);
        self.buf_b = Addr(0);
        self.buf_bytes = 0;
        self.scratch.clear();
    }

    fn on_boot(&mut self, m: &mut Machine) -> Result<ResumeAction> {
        let ctrl = self.attach(m)?;
        self.last_ckpt_at = m.cycles();
        let flag = ctrl.flag(m)?;
        if flag == 0 {
            return Ok(ResumeAction::Restart {
                reinit_globals: true,
            });
        }
        let buf = if flag == 1 { self.buf_a } else { self.buf_b };
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = peek_u32(m, buf.offset(4 * i as u32))?;
        }
        let used = peek_u32(m, buf.offset(16))?;
        let sram = m.mem.layout().sram;
        if used > 0 {
            self.copy_via_scratch(m, buf.offset(20), sram.start, used)?;
        }
        let globals_len = m.loaded().program.globals_size;
        let data_base = m.data_base();
        if globals_len > 0 {
            self.copy_via_scratch(m, buf.offset(20 + sram.len()), data_base, globals_len)?;
        }
        m.regs = Registers::from_words(words);
        let mut span = m.span(SpanKind::Restore);
        let m = &mut *span;
        let costs = m.mem.costs().clone();
        m.mem.add_cycles(
            costs.restore_base
                + costs.restore_seg_fixed
                + costs.restore_seg_per_byte * u64::from(20 + used + globals_len),
        );
        m.emit(TraceEvent::Restore {
            bytes: u64::from(20 + used + globals_len),
        });
        Ok(ResumeAction::Restored)
    }

    fn alloc_frame(
        &mut self,
        m: &mut Machine,
        _fidx: u16,
        frame_size: u32,
        _arg_bytes: u32,
    ) -> Result<Addr> {
        let sram = m.mem.layout().sram;
        let base = if m.regs.fp == Addr(0) && m.regs.sp == Addr(0) {
            sram.start
        } else {
            m.regs.sp
        };
        if !sram.contains_range(base, frame_size) {
            return Err(VmError::StackOverflow {
                detail: format!("SRAM stack exhausted allocating {frame_size} bytes"),
            });
        }
        Ok(base)
    }

    fn free_frame(&mut self, _m: &mut Machine, _fp: Addr) -> Result<()> {
        Ok(())
    }

    fn logged_store(&mut self, _m: &mut Machine, _addr: Addr, _len: u32) -> Result<()> {
        Ok(())
    }

    fn checkpoint(&mut self, m: &mut Machine, kind: CheckpointKind) -> Result<()> {
        match kind {
            CheckpointKind::Site(CkptSite::VoltageCheck) | CheckpointKind::Voltage => {
                // Every site pays for the supply-voltage ADC probe — the
                // dominant steady-state overhead of MementOS-style
                // systems (≈35 µs per measurement on the MSP430).
                m.mem.add_cycles(VOLTAGE_PROBE_US);
                if m.cycles().saturating_sub(self.last_ckpt_at) >= self.min_interval_us {
                    self.commit(m, CkptCause::Voltage)?;
                }
                Ok(())
            }
            CheckpointKind::Site(CkptSite::Manual | CkptSite::TaskBoundary) => {
                self.commit(m, CkptCause::Site)
            }
            _ => Ok(()),
        }
    }
}

impl Default for NaiveCheckpoint {
    fn default() -> Self {
        NaiveCheckpoint::new(2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_energy::{ContinuousPower, PeriodicTrace};
    use tics_minic::{compile, opt::OptLevel, passes};
    use tics_vm::{Executor, MachineConfig};

    fn naive_machine(src: &str) -> Machine {
        let mut prog = compile(src, OptLevel::O1).unwrap();
        passes::instrument_mementos(&mut prog).unwrap();
        Machine::new(prog, MachineConfig::default()).unwrap()
    }

    #[test]
    fn completes_on_continuous_power() {
        let mut m = naive_machine(
            "int main() { int s = 0; for (int i = 0; i < 20; i++) { s += i; } return s; }",
        );
        let mut rt = NaiveCheckpoint::new(100); // probe interval shorter than the run
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .unwrap();
        assert_eq!(out.exit_code(), Some(190));
        assert!(m.stats().checkpoints > 0, "voltage sites must commit");
    }

    #[test]
    fn survives_power_failures_with_consistent_globals() {
        let mut m = naive_machine(
            "int g;
             int main() {
                 for (int i = 0; i < 400; i++) { g = g + 1; }
                 return g;
             }",
        );
        let mut rt = NaiveCheckpoint::new(1_000);
        let out = Executor::new()
            .with_time_budget(500_000_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(20_000, 500))
            .unwrap();
        // Globals are checkpointed/restored together with the stack, so
        // the increment count is exact.
        assert_eq!(out.exit_code(), Some(400));
        assert!(m.stats().power_failures > 0);
        assert!(m.stats().restores > 0);
    }

    #[test]
    fn checkpoint_size_grows_with_state() {
        let small = {
            let mut m = naive_machine("int main() { checkpoint(); return 0; }");
            let mut rt = NaiveCheckpoint::default();
            Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            m.stats().mean_checkpoint_bytes().unwrap()
        };
        let big = {
            let mut m =
                naive_machine("int blob[200]; int main() { blob[0] = 1; checkpoint(); return 0; }");
            let mut rt = NaiveCheckpoint::default();
            Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .unwrap();
            m.stats().mean_checkpoint_bytes().unwrap()
        };
        assert!(
            big > small + 700.0,
            "naive checkpoints must scale with globals: {small} vs {big}"
        );
    }

    #[test]
    fn starves_when_checkpoint_exceeds_on_period() {
        // Huge globals make every checkpoint cost > the on period.
        let mut m = naive_machine(
            "int blob[4000];
             int main() {
                 int i = 0;
                 while (1) { blob[i % 4000] = i; i++; }
                 return 0;
             }",
        );
        let mut rt = NaiveCheckpoint::new(500);
        let out = Executor::new()
            .with_starvation_detection(20)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(2_000, 100))
            .unwrap();
        assert!(
            matches!(out, tics_vm::RunOutcome::Starved { .. }),
            "got {out:?}"
        );
    }

    #[test]
    fn rejects_wrong_instrumentation() {
        let prog = compile("int main() { return 0; }", OptLevel::O0).unwrap();
        assert!(NaiveCheckpoint::default().check_program(&prog).is_err());
    }
}
