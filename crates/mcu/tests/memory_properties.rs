//! Property-style tests of the memory substrate: roundtrips, bounds,
//! volatility, and copy semantics under random access patterns. Inputs
//! come from a seeded splitmix64 stream (128 deterministic cases per
//! property) instead of a fuzzing crate, so the suite builds offline and
//! replays exactly.

use tics_mcu::{Addr, Memory, MemoryLayout};

const CASES: u64 = 128;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next().is_multiple_of(2)
    }
}

fn mem() -> Memory {
    Memory::new(MemoryLayout::default())
}

fn fram_addr(off: u32) -> Addr {
    MemoryLayout::default().fram.start.offset(off)
}

fn sram_addr(off: u32) -> Addr {
    MemoryLayout::default().sram.start.offset(off)
}

/// Any write is read back exactly, in either region.
#[test]
fn write_read_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng(0x0AA0_0000 + case);
        let off = rng.range(0, 64 * 1024 - 8) as u32;
        let v = rng.next() as u32 as i32;
        let mut m = mem();
        let a = fram_addr(off);
        m.write_i32(a, v).unwrap();
        assert_eq!(m.read_i32(a).unwrap(), v, "case {case}");
    }
}

/// Byte-level and word-level views agree (little-endian).
#[test]
fn byte_and_word_views_agree() {
    for case in 0..CASES {
        let mut rng = Rng(0x0BB0_0000 + case);
        let off = rng.range(0, 1000) as u32;
        let v = rng.next() as u32;
        let mut m = mem();
        let a = fram_addr(off * 4);
        m.write_u32(a, v).unwrap();
        let bytes = m.peek_bytes(a, 4).unwrap();
        assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            v,
            "case {case}"
        );
    }
}

/// Power failure is exactly "SRAM forgets, FRAM remembers" —
/// regardless of what was written where.
#[test]
fn power_failure_volatility() {
    for case in 0..CASES {
        let mut rng = Rng(0x0CC0_0000 + case);
        let n = rng.range(1, 40) as usize;
        let writes: Vec<(u32, i32, bool)> = (0..n)
            .map(|_| {
                (
                    rng.range(0, 500) as u32,
                    rng.next() as u32 as i32,
                    rng.bool(),
                )
            })
            .collect();
        let mut m = mem();
        let mut fram_truth = std::collections::HashMap::new();
        for (slot, v, to_fram) in &writes {
            if *to_fram {
                m.write_i32(fram_addr(slot * 4), *v).unwrap();
                fram_truth.insert(*slot, *v);
            } else {
                m.write_i32(sram_addr(slot * 4), *v).unwrap();
            }
        }
        m.power_fail();
        for (slot, v) in &fram_truth {
            assert_eq!(m.read_i32(fram_addr(slot * 4)).unwrap(), *v, "case {case}");
        }
        // Every SRAM word is clobbered to the recognizable pattern.
        for (slot, _, to_fram) in &writes {
            if !to_fram {
                let got = m.read_i32(sram_addr(slot * 4)).unwrap() as u32;
                assert_eq!(got, 0xA5A5_A5A5, "case {case}");
            }
        }
    }
}

/// `copy` moves exactly the requested bytes and nothing else.
#[test]
fn copy_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng(0x0DD0_0000 + case);
        let src_off = rng.range(0, 512) as u32;
        let dst_off = rng.range(1024, 1536) as u32;
        let len = rng.range(1, 64) as u32;
        let fill = rng.next() as u8;
        let mut m = mem();
        let src = fram_addr(src_off);
        let dst = fram_addr(dst_off);
        let payload: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
        m.write_bytes(src, &payload).unwrap();
        // Sentinels around the destination.
        m.write_u8(Addr(dst.raw() - 1), 0xEE).unwrap();
        m.write_u8(dst.offset(len), 0xEE).unwrap();
        m.copy(src, dst, len).unwrap();
        assert_eq!(m.peek_bytes(dst, len).unwrap(), payload, "case {case}");
        assert_eq!(m.read_u8(Addr(dst.raw() - 1)).unwrap(), 0xEE, "case {case}");
        assert_eq!(m.read_u8(dst.offset(len)).unwrap(), 0xEE, "case {case}");
    }
}

/// Out-of-range accesses are always errors, never wraps or panics.
#[test]
fn unmapped_accesses_error() {
    for case in 0..CASES {
        let mut rng = Rng(0x0EE0_0000 + case);
        let addr = rng.next() as u32;
        let layout = MemoryLayout::default();
        let mut m = mem();
        let a = Addr(addr);
        let mapped = layout.sram.contains_range(a, 4) || layout.fram.contains_range(a, 4);
        assert_eq!(m.read_u32(a).is_ok(), mapped, "case {case}: {addr:#x}");
        assert_eq!(m.write_u32(a, 1).is_ok(), mapped, "case {case}: {addr:#x}");
    }
    // Make sure both outcomes were reachable: probe known-mapped and
    // known-unmapped addresses explicitly.
    let layout = MemoryLayout::default();
    let mut m = mem();
    assert!(m.read_u32(layout.fram.start).is_ok());
    assert!(m.read_u32(Addr(u32::MAX - 8)).is_err());
}

/// Cycle accounting is monotone: accesses never make time go
/// backwards, and FRAM writes are never cheaper than SRAM writes.
#[test]
fn cycles_are_monotone() {
    for case in 0..CASES {
        let mut rng = Rng(0x0FF0_0000 + case);
        let n = rng.range(1, 30) as usize;
        let mut m = mem();
        let mut last = m.cycles();
        for _ in 0..n {
            let slot = rng.range(0, 200) as u32;
            let a = if rng.bool() {
                fram_addr(slot * 4)
            } else {
                sram_addr(slot * 4)
            };
            m.write_i32(a, 7).unwrap();
            assert!(m.cycles() >= last, "case {case}");
            last = m.cycles();
        }
    }
}
