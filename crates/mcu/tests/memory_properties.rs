//! Property-based tests of the memory substrate: roundtrips, bounds,
//! volatility, and copy semantics under random access patterns.

use proptest::prelude::*;
use tics_mcu::{Addr, Memory, MemoryLayout};

fn mem() -> Memory {
    Memory::new(MemoryLayout::default())
}

fn fram_addr(off: u32) -> Addr {
    MemoryLayout::default().fram.start.offset(off)
}

fn sram_addr(off: u32) -> Addr {
    MemoryLayout::default().sram.start.offset(off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any write is read back exactly, in either region.
    #[test]
    fn write_read_roundtrip(off in 0u32..(64 * 1024 - 8), v in any::<i32>()) {
        let mut m = mem();
        let a = fram_addr(off);
        m.write_i32(a, v).unwrap();
        prop_assert_eq!(m.read_i32(a).unwrap(), v);
    }

    /// Byte-level and word-level views agree (little-endian).
    #[test]
    fn byte_and_word_views_agree(off in 0u32..1000, v in any::<u32>()) {
        let mut m = mem();
        let a = fram_addr(off * 4);
        m.write_u32(a, v).unwrap();
        let bytes = m.peek_bytes(a, 4).unwrap();
        prop_assert_eq!(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]), v);
    }

    /// Power failure is exactly "SRAM forgets, FRAM remembers" —
    /// regardless of what was written where.
    #[test]
    fn power_failure_volatility(
        writes in proptest::collection::vec((0u32..500, any::<i32>(), any::<bool>()), 1..40),
    ) {
        let mut m = mem();
        let mut fram_truth = std::collections::HashMap::new();
        for (slot, v, to_fram) in &writes {
            if *to_fram {
                m.write_i32(fram_addr(slot * 4), *v).unwrap();
                fram_truth.insert(*slot, *v);
            } else {
                m.write_i32(sram_addr(slot * 4), *v).unwrap();
            }
        }
        m.power_fail();
        for (slot, v) in &fram_truth {
            prop_assert_eq!(m.read_i32(fram_addr(slot * 4)).unwrap(), *v);
        }
        // Every SRAM word is clobbered to the recognizable pattern.
        for (slot, _, to_fram) in &writes {
            if !to_fram {
                let got = m.read_i32(sram_addr(slot * 4)).unwrap() as u32;
                prop_assert_eq!(got, 0xA5A5_A5A5);
            }
        }
    }

    /// `copy` moves exactly the requested bytes and nothing else.
    #[test]
    fn copy_is_exact(
        src_off in 0u32..512,
        dst_off in 1024u32..1536,
        len in 1u32..64,
        fill in any::<u8>(),
    ) {
        let mut m = mem();
        let src = fram_addr(src_off);
        let dst = fram_addr(dst_off);
        let payload: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
        m.write_bytes(src, &payload).unwrap();
        // Sentinels around the destination.
        m.write_u8(Addr(dst.raw() - 1), 0xEE).unwrap();
        m.write_u8(dst.offset(len), 0xEE).unwrap();
        m.copy(src, dst, len).unwrap();
        prop_assert_eq!(m.peek_bytes(dst, len).unwrap(), payload);
        prop_assert_eq!(m.read_u8(Addr(dst.raw() - 1)).unwrap(), 0xEE);
        prop_assert_eq!(m.read_u8(dst.offset(len)).unwrap(), 0xEE);
    }

    /// Out-of-range accesses are always errors, never wraps or panics.
    #[test]
    fn unmapped_accesses_error(addr in any::<u32>()) {
        let layout = MemoryLayout::default();
        let mut m = mem();
        let a = Addr(addr);
        let mapped = layout.sram.contains_range(a, 4) || layout.fram.contains_range(a, 4);
        prop_assert_eq!(m.read_u32(a).is_ok(), mapped);
        prop_assert_eq!(m.write_u32(a, 1).is_ok(), mapped);
    }

    /// Cycle accounting is monotone: accesses never make time go
    /// backwards, and FRAM writes are never cheaper than SRAM writes.
    #[test]
    fn cycles_are_monotone(ops in proptest::collection::vec((0u32..200, any::<bool>()), 1..30)) {
        let mut m = mem();
        let mut last = m.cycles();
        for (slot, to_fram) in ops {
            let a = if to_fram { fram_addr(slot * 4) } else { sram_addr(slot * 4) };
            m.write_i32(a, 7).unwrap();
            prop_assert!(m.cycles() >= last);
            last = m.cycles();
        }
    }
}
