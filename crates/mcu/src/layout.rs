//! Physical memory map of the simulated device.

use crate::region::{Addr, Region};

/// Physical memory map: where SRAM and FRAM live in the address space.
///
/// The defaults mirror the MSP430FR5969 used in the paper: 2 KB of volatile
/// SRAM and 64 KB of non-volatile FRAM. Runtimes carve the FRAM region into
/// `.data`/`.bss`, the segment array, checkpoint buffers and the undo log;
/// that *logical* layout lives with the runtime (see `tics-core`), not here.
///
/// ```
/// use tics_mcu::MemoryLayout;
/// let layout = MemoryLayout::default();
/// assert_eq!(layout.sram.len(), 2 * 1024);
/// assert_eq!(layout.fram.len(), 64 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Volatile SRAM region (lost on power failure).
    pub sram: Region,
    /// Non-volatile FRAM region (survives power failure).
    pub fram: Region,
}

impl MemoryLayout {
    /// Layout of the MSP430FR5969: 2 KB SRAM at `0x1C00`, 64 KB FRAM at
    /// `0x4000`.
    #[must_use]
    pub fn msp430fr5969() -> MemoryLayout {
        MemoryLayout {
            sram: Region::with_len(Addr(0x1C00), 2 * 1024),
            fram: Region::with_len(Addr(0x4000), 64 * 1024),
        }
    }

    /// A custom layout.
    ///
    /// # Panics
    ///
    /// Panics if the SRAM and FRAM regions overlap.
    #[must_use]
    pub fn new(sram: Region, fram: Region) -> MemoryLayout {
        assert!(!sram.overlaps(&fram), "SRAM {sram} overlaps FRAM {fram}");
        MemoryLayout { sram, fram }
    }

    /// Whether `addr` is backed by either memory.
    #[must_use]
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.sram.contains(addr) || self.fram.contains(addr)
    }

    /// Whether `addr` is in volatile SRAM.
    #[must_use]
    pub fn is_volatile(&self, addr: Addr) -> bool {
        self.sram.contains(addr)
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout::msp430fr5969()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_msp430fr5969() {
        let l = MemoryLayout::default();
        assert_eq!(l.sram.start, Addr(0x1C00));
        assert_eq!(l.fram.start, Addr(0x4000));
        assert!(l.is_mapped(Addr(0x1C00)));
        assert!(l.is_mapped(Addr(0x4000)));
        assert!(!l.is_mapped(Addr(0x0)));
        assert!(l.is_volatile(Addr(0x1C00)));
        assert!(!l.is_volatile(Addr(0x4000)));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_layout_panics() {
        let _ = MemoryLayout::new(
            Region::with_len(Addr(0x1000), 0x1000),
            Region::with_len(Addr(0x1800), 0x1000),
        );
    }
}
