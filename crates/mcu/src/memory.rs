//! Byte-addressable simulated memory with volatility and cycle accounting.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use tics_trace::SpanKind;

use crate::costs::CostModel;
use crate::layout::MemoryLayout;
use crate::region::Addr;

/// Pattern written over SRAM on power failure. Deterministic garbage makes
/// "used stale volatile data" bugs reproducible in tests.
const SRAM_CLOBBER: u8 = 0xA5;

/// Error returned by memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The access touched at least one unmapped byte.
    Unmapped {
        /// Start address of the offending access.
        addr: Addr,
        /// Length of the access in bytes.
        len: u32,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Unmapped { addr, len } => {
                write!(f, "unmapped access of {len} bytes at {addr}")
            }
        }
    }
}

impl Error for MemoryError {}

/// Counters describing how the memory has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes read from SRAM.
    pub sram_reads: u64,
    /// Bytes written to SRAM.
    pub sram_writes: u64,
    /// Bytes read from FRAM.
    pub fram_reads: u64,
    /// Bytes written to FRAM.
    pub fram_writes: u64,
    /// Number of power failures experienced.
    pub power_failures: u64,
    /// Cycle-accounted stores truncated by a power cut (torn commits): the
    /// store charged its full cost but only a word-granular prefix landed.
    pub torn_writes: u64,
    /// Stores corrupted by the brown-out model: bit-flipped or dropped
    /// inside the configured pre-cut window (see [`CorruptionModel`]).
    pub corrupted_writes: u64,
}

/// Brown-out corruption model: what dirty power does to in-flight
/// stores and to resting SRAM. Torn writes (clean word-prefix
/// truncation at the cut) are always on; this model adds the *dirty*
/// failure modes real MSP430FR brown-outs exhibit — single-bit upsets
/// and dropped writes in the undervolted window right before the cut,
/// plus probabilistic SRAM decay across outages.
///
/// Only stores longer than [`ATOMIC_STORE_BYTES`] are at risk: the
/// MSP430FR memory controller commits individual words atomically even
/// through a brown-out (its internal write buffer holds up to two
/// words), so single-word control writes — validity flags, counters,
/// undo-log slots — cannot be half-written or flipped. Multi-word burst
/// stores (checkpoint bank images) keep the bus busy through the
/// undervolted window and are where real silent corruption lands.
///
/// All randomness is drawn from a private splitmix64 stream seeded by
/// [`CorruptionModel::seed`]: the same seed and the same access sequence
/// produce byte-identical corruption, so every chaos run is replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionModel {
    /// Width in cycles of the at-risk window before the armed power
    /// cut. A store (cycle-accounted *or* poke-path) issued when fewer
    /// than `window` cycles remain before the cut may be corrupted.
    pub window: u64,
    /// Probability an at-risk store suffers a single random bit flip.
    pub flip_prob: f64,
    /// Probability an at-risk store is dropped entirely (no bytes land).
    pub drop_prob: f64,
    /// Per-byte probability that SRAM decays (loses its contents)
    /// across an outage. `1.0` reproduces the deterministic full
    /// clobber; lower values model short outages where SRAM partially
    /// retains data — stale-but-plausible bytes that are far more
    /// dangerous than obvious garbage.
    pub sram_decay: f64,
    /// Seed for the corruption RNG stream.
    pub seed: u64,
}

impl CorruptionModel {
    /// A model with the given at-risk window and flip/drop rates, full
    /// SRAM clobber (the conservative default), seeded by `seed`.
    #[must_use]
    pub fn new(window: u64, flip_prob: f64, drop_prob: f64, seed: u64) -> CorruptionModel {
        assert!(
            flip_prob >= 0.0 && drop_prob >= 0.0 && flip_prob + drop_prob <= 1.0,
            "corruption probabilities must be in [0, 1] and sum to at most 1"
        );
        CorruptionModel {
            window,
            flip_prob,
            drop_prob,
            sram_decay: 1.0,
            seed,
        }
    }

    /// Sets the per-byte SRAM decay probability across outages.
    #[must_use]
    pub fn with_sram_decay(mut self, sram_decay: f64) -> CorruptionModel {
        assert!(
            (0.0..=1.0).contains(&sram_decay),
            "sram_decay must be in [0, 1]"
        );
        self.sram_decay = sram_decay;
        self
    }
}

/// Largest store the FRAM controller commits atomically: two 32-bit
/// words, the depth of its internal write buffer. Stores of this size
/// or smaller are immune to brown-out corruption (see
/// [`CorruptionModel`]).
pub const ATOMIC_STORE_BYTES: usize = 8;

/// What the corruption model decided to do to one store.
enum StoreFate {
    /// Clean: all bytes land.
    Keep,
    /// One bit flips: XOR `mask` into the byte at `offset`.
    Flip { offset: usize, mask: u8 },
    /// The store is dropped entirely.
    Drop,
}

/// Number of `u64` bitmap limbs needed to cover `region_bytes` of
/// memory at one bit per 4-byte word.
fn dirty_len(region_bytes: u32) -> usize {
    (region_bytes.div_ceil(4) as usize).div_ceil(64)
}

/// Single-store twin of [`mark_dirty_bits`] for the word fast paths: a
/// 4-byte store at region-relative byte offset `off` touches word
/// `off / 4`, and — when unaligned — `(off + 3) / 4` as well.
#[inline(always)]
fn mark_word_dirty(bits: &mut [u64], off: usize) {
    let first = off >> 2;
    let last = (off + 3) >> 2;
    bits[first >> 6] |= 1u64 << (first & 63);
    bits[last >> 6] |= 1u64 << (last & 63);
}

/// Sets the dirty bits for every word a store of `len` bytes at
/// region-relative byte offset `off` touches.
#[inline]
fn mark_dirty_bits(bits: &mut [u64], off: u32, len: u32) {
    if len == 0 {
        return;
    }
    let first = (off / 4) as usize;
    let last = ((off + len - 1) / 4) as usize;
    for w in first..=last {
        bits[w >> 6] |= 1u64 << (w & 63);
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a 64-bit word (53 mantissa bits).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The simulated memory system: volatile SRAM plus persistent FRAM, with a
/// cycle counter driven by the [`CostModel`].
///
/// All accesses are bounds-checked against the [`MemoryLayout`]; an access
/// outside both regions returns [`MemoryError::Unmapped`] (the real MCU
/// would bus-fault). Multi-byte values are little-endian.
///
/// The `peek_*`/`poke_*` methods bypass cycle accounting and statistics —
/// they model a debugger probe, and tests use them to inspect state without
/// perturbing measurements.
///
/// # Torn writes
///
/// Real FRAM commits word by word; a store interrupted by a power failure
/// leaves a *prefix* of the words written and the rest untouched. When a
/// power cut is armed with [`Memory::set_power_cut`], every cycle-accounted
/// store ([`Memory::write_bytes`], [`Memory::fill`], and everything built
/// on them) commits only the whole 4-byte words whose write traffic fits
/// before the cut cycle, charges its full cost regardless (the device spent
/// the energy attempting the store), and counts a
/// [`MemoryStats::torn_writes`] when truncated. `poke_*` writes are exempt:
/// they model runtime/debugger operations whose atomicity is governed by
/// the machine's atomic-charge protocol, not by the memory bus.
///
/// # Brown-out corruption
///
/// Torn writes model a *clean* cut: every word that lands is correct.
/// Real brown-outs are dirtier — in the undervolted window right before
/// the supply dies, FRAM stores can flip bits or be silently dropped,
/// and SRAM decays rather than vanishing. Arming a [`CorruptionModel`]
/// via [`Memory::set_corruption`] enables these modes for *all* stores,
/// poke-path included (checkpoint banks are written with pokes, and the
/// electrons do not care who issued the store). Corrupted stores are
/// counted in [`MemoryStats::corrupted_writes`]; the model is seeded
/// and fully deterministic.
///
/// # Dirty-word write monitor
///
/// A DiCA-style hardware write monitor rides on every store path: each
/// region keeps a word-granular bitmap in which any byte that actually
/// *lands* (committed torn prefixes and flipped bytes included; dropped
/// stores excluded) marks its containing 4-byte word dirty. Runtimes
/// query it with [`Memory::count_dirty_words`] /
/// [`Memory::for_each_dirty_word`] to build incremental checkpoints and
/// clear the words they imaged with [`Memory::clear_dirty`]. The
/// monitor is pure bookkeeping: it charges no cycles, perturbs no
/// statistics, and the corruption RNG stream never sees it.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: MemoryLayout,
    sram: Vec<u8>,
    fram: Vec<u8>,
    /// Dirty-word bitmap for SRAM: bit `w` set means 4-byte word `w`
    /// (region-relative) has been stored to since the bit was cleared.
    sram_dirty: Vec<u64>,
    /// Dirty-word bitmap for FRAM (see `sram_dirty`).
    fram_dirty: Vec<u64>,
    /// Shared so mass-instantiated machines don't duplicate the table.
    costs: Arc<CostModel>,
    cycles: u64,
    stats: MemoryStats,
    /// Absolute cycle at which power dies; stores straddling it tear.
    cut_at: Option<u64>,
    /// Brown-out corruption model, if armed (see [`CorruptionModel`]).
    corruption: Option<CorruptionModel>,
    /// State of the corruption RNG stream (reseeded by
    /// [`Memory::set_corruption`]).
    corrupt_rng: u64,
    /// Cycle-attribution: who the current work is charged to.
    current_span: SpanKind,
    /// Cycles charged per span. Every increment of `cycles` also lands
    /// here, so `span_cycles.sum() == cycles` holds by construction.
    span_cycles: [u64; SpanKind::COUNT],
}

impl Memory {
    /// Creates zeroed memory with the calibrated MSP430 cost model.
    #[must_use]
    pub fn new(layout: MemoryLayout) -> Memory {
        Memory::with_costs(layout, CostModel::default())
    }

    /// Creates zeroed memory with a custom cost model.
    #[must_use]
    pub fn with_costs(layout: MemoryLayout, costs: CostModel) -> Memory {
        Memory::with_shared_costs(layout, Arc::new(costs))
    }

    /// Creates zeroed memory sharing an already-allocated cost model —
    /// the fleet engine hands the same `Arc` to every device.
    #[must_use]
    pub fn with_shared_costs(layout: MemoryLayout, costs: Arc<CostModel>) -> Memory {
        Memory {
            layout,
            sram: vec![0; layout.sram.len() as usize],
            fram: vec![0; layout.fram.len() as usize],
            sram_dirty: vec![0; dirty_len(layout.sram.len())],
            fram_dirty: vec![0; dirty_len(layout.fram.len())],
            costs,
            cycles: 0,
            stats: MemoryStats::default(),
            cut_at: None,
            corruption: None,
            corrupt_rng: 0,
            current_span: SpanKind::App,
            span_cycles: [0; SpanKind::COUNT],
        }
    }

    /// The physical layout this memory was built with.
    #[must_use]
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The cost model used for cycle accounting.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Returns the memory to its exact as-constructed state — zeroed
    /// regions, clear dirty bitmaps, zero cycles and statistics, no
    /// armed cut or corruption model — while keeping every backing
    /// allocation. Recycling a machine across fleet devices relies on
    /// this being indistinguishable from a fresh [`Memory::with_costs`].
    pub fn reset(&mut self) {
        self.sram.fill(0);
        self.fram.fill(0);
        self.sram_dirty.fill(0);
        self.fram_dirty.fill(0);
        self.cycles = 0;
        self.stats = MemoryStats::default();
        self.cut_at = None;
        self.corruption = None;
        self.corrupt_rng = 0;
        self.current_span = SpanKind::App;
        self.span_cycles = [0; SpanKind::COUNT];
    }

    /// Total cycles spent so far (1 cycle = 1 µs at 1 MHz).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds `n` cycles of non-memory work (instruction execution, runtime
    /// logic). Runtimes use this to charge the Table 4 operation costs.
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
        self.span_cycles[self.current_span.index()] += n;
    }

    /// Opens span `kind` for subsequent cycle charges and returns the
    /// previously open span (so callers can restore it — the machine's
    /// RAII span guard does exactly that).
    pub fn set_span(&mut self, kind: SpanKind) -> SpanKind {
        std::mem::replace(&mut self.current_span, kind)
    }

    /// The currently open cycle-attribution span.
    #[must_use]
    pub fn current_span(&self) -> SpanKind {
        self.current_span
    }

    /// Cycles charged to `kind` so far.
    #[must_use]
    pub fn span_cycles(&self, kind: SpanKind) -> u64 {
        self.span_cycles[kind.index()]
    }

    /// Per-span cycle totals, indexed by [`SpanKind::index`]. Their sum
    /// equals [`Memory::cycles`] by construction — the span-total
    /// identity the profiling experiment asserts.
    #[must_use]
    pub fn span_cycles_all(&self) -> [u64; SpanKind::COUNT] {
        self.span_cycles
    }

    /// Usage statistics.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Simulates a power failure: SRAM is clobbered with a recognizable
    /// pattern, FRAM is untouched — *including* the torn prefix of any
    /// store the armed power cut truncated. Registers live outside this
    /// struct; the machine owner must also call [`crate::Registers::reset`].
    /// The cut itself is disarmed: the next boot runs untorn until a new
    /// deadline is armed.
    ///
    /// Under a [`CorruptionModel`] with `sram_decay < 1.0`, each SRAM
    /// byte decays (is clobbered) independently with that probability
    /// and *retains its pre-failure value* otherwise — modelling the
    /// data remanence of short outages, where stale-but-plausible SRAM
    /// contents are far more dangerous than obvious garbage.
    pub fn power_fail(&mut self) {
        match self.corruption {
            Some(c) if c.sram_decay < 1.0 => {
                for byte in &mut self.sram {
                    if unit(splitmix64(&mut self.corrupt_rng)) < c.sram_decay {
                        *byte = SRAM_CLOBBER;
                    }
                }
            }
            _ => self.sram.fill(SRAM_CLOBBER),
        }
        self.stats.power_failures += 1;
        self.cut_at = None;
    }

    /// Arms (or disarms, with `None`) the brown-out corruption model and
    /// reseeds its RNG stream from the model's seed.
    pub fn set_corruption(&mut self, model: Option<CorruptionModel>) {
        self.corrupt_rng = model.map_or(0, |m| m.seed);
        self.corruption = model;
    }

    /// The armed corruption model, if any.
    #[must_use]
    pub fn corruption(&self) -> Option<&CorruptionModel> {
        self.corruption.as_ref()
    }

    /// Decides what dirty power does to a store of `len` bytes issued
    /// right now. Only consulted (and only advances the RNG) when a cut
    /// is armed, fewer than `window` cycles remain before it, and the
    /// store is longer than the controller's atomic write buffer.
    fn store_fate(&mut self, len: usize) -> StoreFate {
        let Some(c) = self.corruption else {
            return StoreFate::Keep;
        };
        let Some(cut) = self.cut_at else {
            return StoreFate::Keep;
        };
        if len <= ATOMIC_STORE_BYTES || cut.saturating_sub(self.cycles) > c.window {
            return StoreFate::Keep;
        }
        let draw = unit(splitmix64(&mut self.corrupt_rng));
        if draw < c.drop_prob {
            StoreFate::Drop
        } else if draw < c.drop_prob + c.flip_prob {
            let r = splitmix64(&mut self.corrupt_rng);
            StoreFate::Flip {
                offset: (r >> 8) as usize % len,
                mask: 1 << (r & 7),
            }
        } else {
            StoreFate::Keep
        }
    }

    /// Arms (or disarms, with `None`) the power-cut boundary at an
    /// absolute cycle count. Cycle-accounted stores whose traffic crosses
    /// the boundary commit only the whole words that fit before it.
    pub fn set_power_cut(&mut self, cut_at: Option<u64>) {
        self.cut_at = cut_at;
    }

    /// The armed power-cut cycle, if any.
    #[must_use]
    pub fn power_cut(&self) -> Option<u64> {
        self.cut_at
    }

    /// How many of `len` bytes starting at `addr` a store beginning now
    /// would actually commit: whole 4-byte words whose per-word write cost
    /// completes at or before the armed cut.
    fn committed_prefix(&self, addr: Addr, len: u32) -> u32 {
        let Some(cut) = self.cut_at else { return len };
        let per_word = if self.layout.is_volatile(addr) {
            self.costs.sram_access_per_word
        } else {
            self.costs.fram_write_per_word
        };
        if per_word == 0 {
            return len;
        }
        let affordable_words = cut.saturating_sub(self.cycles) / per_word;
        if affordable_words >= u64::from(len.div_ceil(4)) {
            return len;
        }
        (affordable_words as u32).saturating_mul(4).min(len)
    }

    fn slice(&self, addr: Addr, len: u32) -> Result<&[u8], MemoryError> {
        if self.layout.sram.contains_range(addr, len) {
            let off = (addr.0 - self.layout.sram.start.0) as usize;
            Ok(&self.sram[off..off + len as usize])
        } else if self.layout.fram.contains_range(addr, len) {
            let off = (addr.0 - self.layout.fram.start.0) as usize;
            Ok(&self.fram[off..off + len as usize])
        } else {
            Err(MemoryError::Unmapped { addr, len })
        }
    }

    fn slice_mut(&mut self, addr: Addr, len: u32) -> Result<&mut [u8], MemoryError> {
        if self.layout.sram.contains_range(addr, len) {
            let off = (addr.0 - self.layout.sram.start.0) as usize;
            Ok(&mut self.sram[off..off + len as usize])
        } else if self.layout.fram.contains_range(addr, len) {
            let off = (addr.0 - self.layout.fram.start.0) as usize;
            Ok(&mut self.fram[off..off + len as usize])
        } else {
            Err(MemoryError::Unmapped { addr, len })
        }
    }

    /// Marks the dirty bits for a store of `len` bytes at `addr` that
    /// actually landed. Callers pass the *committed* length (zero for
    /// dropped stores), so the bitmap only ever covers words whose
    /// contents may differ from the last checkpoint image.
    #[inline]
    fn mark_dirty(&mut self, addr: Addr, len: u32) {
        if len == 0 {
            return;
        }
        if self.layout.sram.contains_range(addr, len) {
            mark_dirty_bits(
                &mut self.sram_dirty,
                addr.0 - self.layout.sram.start.0,
                len,
            );
        } else if self.layout.fram.contains_range(addr, len) {
            mark_dirty_bits(
                &mut self.fram_dirty,
                addr.0 - self.layout.fram.start.0,
                len,
            );
        }
    }

    fn charge_read(&mut self, addr: Addr, len: u32) {
        let words = u64::from(len.div_ceil(4));
        let cost = if self.layout.is_volatile(addr) {
            self.stats.sram_reads += u64::from(len);
            self.costs.sram_access_per_word * words
        } else {
            self.stats.fram_reads += u64::from(len);
            self.costs.fram_read_per_word * words
        };
        self.cycles += cost;
        self.span_cycles[self.current_span.index()] += cost;
    }

    fn charge_write(&mut self, addr: Addr, len: u32) {
        let words = u64::from(len.div_ceil(4));
        let cost = if self.layout.is_volatile(addr) {
            self.stats.sram_writes += u64::from(len);
            self.costs.sram_access_per_word * words
        } else {
            self.stats.fram_writes += u64::from(len);
            self.costs.fram_write_per_word * words
        };
        self.cycles += cost;
        self.span_cycles[self.current_span.index()] += cost;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not fully mapped.
    pub fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), MemoryError> {
        let len = buf.len() as u32;
        let src = self.slice(addr, len)?;
        buf.copy_from_slice(src);
        self.charge_read(addr, len);
        Ok(())
    }

    /// Writes `buf` starting at `addr`. If a power cut is armed and the
    /// store's traffic crosses it, only a word-granular prefix commits
    /// (see the struct-level *Torn writes* notes); the full cost is
    /// charged either way.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not fully mapped.
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) -> Result<(), MemoryError> {
        let len = buf.len() as u32;
        let committed = self.committed_prefix(addr, len) as usize;
        let fate = self.store_fate(committed);
        // Bounds-check the whole range — the MCU decodes the access before
        // the bus starts moving words, so an unmapped tail still faults.
        let dst = self.slice_mut(addr, len)?;
        let mut landed = committed as u32;
        match fate {
            StoreFate::Keep => dst[..committed].copy_from_slice(&buf[..committed]),
            StoreFate::Flip { offset, mask } => {
                dst[..committed].copy_from_slice(&buf[..committed]);
                dst[offset] ^= mask;
                self.stats.corrupted_writes += 1;
            }
            StoreFate::Drop => {
                landed = 0;
                self.stats.corrupted_writes += 1;
            }
        }
        if committed < len as usize {
            self.stats.torn_writes += 1;
        }
        self.mark_dirty(addr, landed);
        self.charge_write(addr, len);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if `addr` is not mapped.
    pub fn read_u8(&mut self, addr: Addr) -> Result<u8, MemoryError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if `addr` is not mapped.
    pub fn write_u8(&mut self, addr: Addr, v: u8) -> Result<(), MemoryError> {
        self.write_bytes(addr, &[v])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn read_u32(&mut self, addr: Addr) -> Result<u32, MemoryError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn write_u32(&mut self, addr: Addr, v: u32) -> Result<(), MemoryError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `i32` (the VM's `int`).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn read_i32(&mut self, addr: Addr) -> Result<i32, MemoryError> {
        Ok(self.read_u32(addr)? as i32)
    }

    /// Writes a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn write_i32(&mut self, addr: Addr, v: i32) -> Result<(), MemoryError> {
        self.write_u32(addr, v as u32)
    }

    // ---- word fast path ----
    //
    // The decoded interpreter issues almost all of its traffic as aligned
    // single words. These two methods are semantically identical to
    // `read_u32`/`write_u32` — same bounds decisions, same cycle charges,
    // same span attribution, same torn-store outcomes — specialized to
    // `len == 4` so the hot path avoids the generic slice machinery and
    // the per-store `committed_prefix` division. A 4-byte store is at or
    // below [`ATOMIC_STORE_BYTES`], so `store_fate` would return `Keep`
    // *without advancing the corruption RNG*; skipping it here is exact.

    /// Reads a little-endian `u32` — the decoded interpreter's fast path.
    /// Byte-for-byte and cycle-for-cycle equivalent to [`Memory::read_u32`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline]
    pub fn read_word(&mut self, addr: Addr) -> Result<u32, MemoryError> {
        let (v, cost) = if self.layout.sram.contains_range(addr, 4) {
            let off = (addr.0 - self.layout.sram.start.0) as usize;
            let b = [
                self.sram[off],
                self.sram[off + 1],
                self.sram[off + 2],
                self.sram[off + 3],
            ];
            self.stats.sram_reads += 4;
            (u32::from_le_bytes(b), self.costs.sram_access_per_word)
        } else if self.layout.fram.contains_range(addr, 4) {
            let off = (addr.0 - self.layout.fram.start.0) as usize;
            let b = [
                self.fram[off],
                self.fram[off + 1],
                self.fram[off + 2],
                self.fram[off + 3],
            ];
            self.stats.fram_reads += 4;
            (u32::from_le_bytes(b), self.costs.fram_read_per_word)
        } else {
            return Err(MemoryError::Unmapped { addr, len: 4 });
        };
        self.cycles += cost;
        self.span_cycles[self.current_span.index()] += cost;
        Ok(v)
    }

    /// Writes a little-endian `u32` — the decoded interpreter's fast path.
    /// Byte-for-byte and cycle-for-cycle equivalent to [`Memory::write_u32`],
    /// including torn-store behavior: if an armed power cut leaves fewer
    /// cycles than one word's write cost, nothing commits and the store
    /// counts as torn (the full cost is still charged).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline]
    pub fn write_word(&mut self, addr: Addr, v: u32) -> Result<(), MemoryError> {
        let volatile = if self.layout.sram.contains_range(addr, 4) {
            true
        } else if self.layout.fram.contains_range(addr, 4) {
            false
        } else {
            return Err(MemoryError::Unmapped { addr, len: 4 });
        };
        let cost = if volatile {
            self.costs.sram_access_per_word
        } else {
            self.costs.fram_write_per_word
        };
        // `committed_prefix` specialized to one word: the word commits iff
        // no cut is armed, the per-word cost is zero, or at least one
        // word's worth of cycles remains before the cut.
        let commits = match self.cut_at {
            None => true,
            Some(cut) => cost == 0 || cut.saturating_sub(self.cycles) >= cost,
        };
        if commits {
            let b = v.to_le_bytes();
            if volatile {
                let off = (addr.0 - self.layout.sram.start.0) as usize;
                self.sram[off..off + 4].copy_from_slice(&b);
                mark_word_dirty(&mut self.sram_dirty, off);
            } else {
                let off = (addr.0 - self.layout.fram.start.0) as usize;
                self.fram[off..off + 4].copy_from_slice(&b);
                mark_word_dirty(&mut self.fram_dirty, off);
            }
        } else {
            self.stats.torn_writes += 1;
        }
        if volatile {
            self.stats.sram_writes += 4;
        } else {
            self.stats.fram_writes += 4;
        }
        self.cycles += cost;
        self.span_cycles[self.current_span.index()] += cost;
        Ok(())
    }

    /// Reads a word without charging cycles or touching stats — the
    /// non-allocating equivalent of [`Memory::peek_i32`], used by the
    /// decoded interpreter for `Dup` (which peeks the stack top) so the
    /// hot path avoids `peek_bytes`'s temporary `Vec`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline]
    pub fn peek_word(&self, addr: Addr) -> Result<u32, MemoryError> {
        let bytes = self.slice(addr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Opens a [`WordBurst`]: a register-resident accounting view for
    /// the decoded interpreter's burst loop. Region bounds, per-word
    /// costs, the armed power cut, and the current span are resolved
    /// once; cycle and traffic counters accumulate in locals and land
    /// back here on [`WordBurst::commit`]. Between `word_burst` and
    /// `commit` this `Memory` must not be accessed (the borrow checker
    /// enforces it), so the view cannot diverge from the canonical
    /// counters.
    #[must_use]
    pub fn word_burst(&mut self) -> WordBurst<'_> {
        // A region shorter than one word can never satisfy a 4-byte
        // access; encode it as the empty interval [1, 0].
        let word_bounds = |r: crate::region::Region| -> (u32, u32) {
            if r.len() >= 4 {
                (r.start.0, r.end.0 - 4)
            } else {
                (1, 0)
            }
        };
        let (sram_start, sram_last) = word_bounds(self.layout.sram);
        let (fram_start, fram_last) = word_bounds(self.layout.fram);
        let span_idx = self.current_span.index();
        WordBurst {
            sram_start,
            sram_last,
            fram_start,
            fram_last,
            sram_cost: self.costs.sram_access_per_word,
            fram_read_cost: self.costs.fram_read_per_word,
            fram_write_cost: self.costs.fram_write_per_word,
            instr_base: self.costs.instr_base,
            // `u64::MAX` encodes "no cut armed": simulated cycle counts
            // stay far below the point where `MAX - cycles < cost`
            // could misclassify a commit.
            cut_at: self.cut_at.unwrap_or(u64::MAX),
            cycles: self.cycles,
            start_cycles: self.cycles,
            sram_reads: 0,
            sram_writes: 0,
            fram_reads: 0,
            fram_writes: 0,
            torn_writes: 0,
            sram: &mut self.sram,
            fram: &mut self.fram,
            sram_dirty: &mut self.sram_dirty,
            fram_dirty: &mut self.fram_dirty,
            cycles_out: &mut self.cycles,
            span_out: &mut self.span_cycles[span_idx],
            stats_out: &mut self.stats,
        }
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn read_u64(&mut self, addr: Addr) -> Result<u64, MemoryError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn write_u64(&mut self, addr: Addr, v: u64) -> Result<(), MemoryError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Copies `len` bytes from `src` to `dst` inside simulated memory,
    /// charging both the read and the write traffic. Ranges may overlap.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if either range is not mapped.
    pub fn copy(&mut self, src: Addr, dst: Addr, len: u32) -> Result<(), MemoryError> {
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf)?;
        self.write_bytes(dst, &buf)
    }

    /// Fills `len` bytes at `addr` with `value`. Subject to the same
    /// torn-write truncation as [`Memory::write_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not mapped.
    pub fn fill(&mut self, addr: Addr, len: u32, value: u8) -> Result<(), MemoryError> {
        let committed = self.committed_prefix(addr, len) as usize;
        let fate = self.store_fate(committed);
        let dst = self.slice_mut(addr, len)?;
        let mut landed = committed as u32;
        match fate {
            StoreFate::Keep => dst[..committed].fill(value),
            StoreFate::Flip { offset, mask } => {
                dst[..committed].fill(value);
                dst[offset] ^= mask;
                self.stats.corrupted_writes += 1;
            }
            StoreFate::Drop => {
                landed = 0;
                self.stats.corrupted_writes += 1;
            }
        }
        if committed < len as usize {
            self.stats.torn_writes += 1;
        }
        self.mark_dirty(addr, landed);
        self.charge_write(addr, len);
        Ok(())
    }

    /// Debugger-style read: no cycles, no statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not mapped.
    pub fn peek_bytes(&self, addr: Addr, len: u32) -> Result<Vec<u8>, MemoryError> {
        Ok(self.slice(addr, len)?.to_vec())
    }

    /// Borrowing [`peek_bytes`](Memory::peek_bytes): the same
    /// debugger-style read without the copy. The range must lie within
    /// a single region (SRAM or FRAM) — the same constraint every other
    /// accessor enforces.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not mapped.
    pub fn peek_slice(&self, addr: Addr, len: u32) -> Result<&[u8], MemoryError> {
        self.slice(addr, len)
    }

    /// Debugger-style `i32` read: no cycles, no statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn peek_i32(&self, addr: Addr) -> Result<i32, MemoryError> {
        let b = self.peek_bytes(addr, 4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Debugger-style `u64` read: no cycles, no statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn peek_u64(&self, addr: Addr) -> Result<u64, MemoryError> {
        let b = self.peek_bytes(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Debugger-style write: no cycles, no traffic statistics. Exempt
    /// from torn-write truncation, but *not* from the brown-out
    /// [`CorruptionModel`] — poke-path stores are real bus traffic
    /// electrically (checkpoint banks are written this way), so an
    /// undervolted window can still flip or drop them, counted in
    /// [`MemoryStats::corrupted_writes`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not mapped.
    pub fn poke_bytes(&mut self, addr: Addr, buf: &[u8]) -> Result<(), MemoryError> {
        let fate = self.store_fate(buf.len());
        let dst = self.slice_mut(addr, buf.len() as u32)?;
        let mut landed = buf.len() as u32;
        match fate {
            StoreFate::Keep => dst.copy_from_slice(buf),
            StoreFate::Flip { offset, mask } => {
                dst.copy_from_slice(buf);
                dst[offset] ^= mask;
                self.stats.corrupted_writes += 1;
            }
            StoreFate::Drop => {
                landed = 0;
                self.stats.corrupted_writes += 1;
            }
        }
        self.mark_dirty(addr, landed);
        Ok(())
    }

    /// Debugger-style `i32` write: no cycles, no statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    pub fn poke_i32(&mut self, addr: Addr, v: i32) -> Result<(), MemoryError> {
        self.poke_bytes(addr, &v.to_le_bytes())
    }

    // ---- dirty-word write monitor queries ----

    /// Resolves `[addr, addr + len)` to its region bitmap and the
    /// inclusive word-index range it covers. `None` for empty or
    /// unmapped ranges (the monitor has nothing to say about them).
    fn dirty_range(&self, addr: Addr, len: u32) -> Option<(&[u64], u32, u32, u32)> {
        if len == 0 {
            return None;
        }
        let (bits, base) = if self.layout.sram.contains_range(addr, len) {
            (&self.sram_dirty, self.layout.sram.start.0)
        } else if self.layout.fram.contains_range(addr, len) {
            (&self.fram_dirty, self.layout.fram.start.0)
        } else {
            return None;
        };
        let off = addr.0 - base;
        Some((bits, off / 4, (off + len - 1) / 4, base))
    }

    /// Masks `limb` down to the bits belonging to words
    /// `[first, last]` when it is the first and/or last limb of the
    /// range.
    #[inline]
    fn range_limb(limb: u64, li: usize, first: u32, last: u32) -> u64 {
        let mut v = limb;
        if li == (first >> 6) as usize {
            v &= !0u64 << (first & 63);
        }
        if li == (last >> 6) as usize {
            let top = last & 63;
            if top < 63 {
                v &= (1u64 << (top + 1)) - 1;
            }
        }
        v
    }

    /// Whether the 4-byte word containing `addr` has been stored to
    /// since its dirty bit was last cleared.
    #[must_use]
    pub fn is_word_dirty(&self, addr: Addr) -> bool {
        self.count_dirty_words(addr, 1) != 0
    }

    /// Number of dirty words in `[addr, addr + len)` (word-granular:
    /// partially covered words count). Zero for unmapped ranges.
    #[must_use]
    pub fn count_dirty_words(&self, addr: Addr, len: u32) -> u32 {
        let Some((bits, first, last, _)) = self.dirty_range(addr, len) else {
            return 0;
        };
        let fl = (first >> 6) as usize;
        bits[fl..=(last >> 6) as usize]
            .iter()
            .enumerate()
            .map(|(i, &limb)| Memory::range_limb(limb, fl + i, first, last).count_ones())
            .sum()
    }

    /// Calls `f` with the base address of every dirty word in
    /// `[addr, addr + len)`, in ascending address order. Base addresses
    /// are region-word-aligned (`region.start + 4 * word_index`).
    pub fn for_each_dirty_word(&self, addr: Addr, len: u32, mut f: impl FnMut(Addr)) {
        let Some((bits, first, last, base)) = self.dirty_range(addr, len) else {
            return;
        };
        let fl = (first >> 6) as usize;
        for (i, &raw) in bits[fl..=(last >> 6) as usize].iter().enumerate() {
            let li = fl + i;
            let mut limb = Memory::range_limb(raw, li, first, last);
            while limb != 0 {
                let w = (li as u32) * 64 + limb.trailing_zeros();
                f(Addr(base + 4 * w));
                limb &= limb - 1;
            }
        }
    }

    /// Clears the dirty bits of every word in `[addr, addr + len)` —
    /// the checkpoint-commit acknowledgement: those words are now
    /// captured in persistent state. No-op for unmapped ranges.
    pub fn clear_dirty(&mut self, addr: Addr, len: u32) {
        let Some((_, first, last, base)) = self.dirty_range(addr, len) else {
            return;
        };
        let bits = if base == self.layout.sram.start.0 {
            &mut self.sram_dirty
        } else {
            &mut self.fram_dirty
        };
        let fl = (first >> 6) as usize;
        for (i, limb) in bits[fl..=(last >> 6) as usize].iter_mut().enumerate() {
            *limb &= !Memory::range_limb(!0u64, fl + i, first, last);
        }
    }
}

/// Register-resident accounting view over a [`Memory`], opened with
/// [`Memory::word_burst`].
///
/// The decoded interpreter's burst loop performs millions of word
/// accesses between runtime interventions; routing each through the
/// [`Memory`] methods costs a handful of read-modify-writes to
/// heap-resident counters per access. This view resolves everything
/// constant for the duration of a burst — region bounds, per-word
/// costs, the armed power cut, the open span — into plain fields, and
/// accumulates cycles and traffic counters in locals the optimizer can
/// keep in registers. [`WordBurst::commit`] folds the deltas back.
///
/// Every method is arithmetic-identical to its [`Memory`] counterpart
/// ([`Memory::read_word`], [`Memory::write_word`], [`Memory::peek_word`],
/// [`Memory::add_cycles`]), including torn single-word commit math
/// against the power cut. Word stores never consult the brown-out
/// model (the MSP430FR write buffer commits single words atomically),
/// so skipping the corruption check is semantics-preserving, not an
/// approximation — the model's RNG stream advances identically.
#[derive(Debug)]
pub struct WordBurst<'a> {
    sram_start: u32,
    /// Highest address at which a 4-byte SRAM access still fits
    /// (`[1, 0]`, the empty interval, for sub-word regions).
    sram_last: u32,
    fram_start: u32,
    fram_last: u32,
    sram_cost: u64,
    fram_read_cost: u64,
    fram_write_cost: u64,
    instr_base: u64,
    /// Armed power cut, `u64::MAX` when disarmed.
    cut_at: u64,
    /// Running absolute cycle counter (starts at the memory's value).
    cycles: u64,
    start_cycles: u64,
    sram_reads: u64,
    sram_writes: u64,
    fram_reads: u64,
    fram_writes: u64,
    torn_writes: u64,
    sram: &'a mut [u8],
    fram: &'a mut [u8],
    sram_dirty: &'a mut [u64],
    fram_dirty: &'a mut [u64],
    cycles_out: &'a mut u64,
    span_out: &'a mut u64,
    stats_out: &'a mut MemoryStats,
}

impl WordBurst<'_> {
    /// Current absolute cycle count (the burst's local view).
    #[inline(always)]
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Base cycle cost of one instruction (resolved from the cost model).
    #[inline(always)]
    #[must_use]
    pub fn instr_base(&self) -> u64 {
        self.instr_base
    }

    /// Charges `n` cycles of non-memory work to the open span.
    #[inline(always)]
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Reads a little-endian `u32`, charging cycles and traffic like
    /// [`Memory::read_word`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline(always)]
    pub fn read_word(&mut self, addr: Addr) -> Result<u32, MemoryError> {
        let a = addr.0;
        let (v, cost) = if a >= self.sram_start && a <= self.sram_last {
            let off = (a - self.sram_start) as usize;
            let b: [u8; 4] = self.sram[off..off + 4].try_into().expect("4-byte slice");
            self.sram_reads += 4;
            (u32::from_le_bytes(b), self.sram_cost)
        } else if a >= self.fram_start && a <= self.fram_last {
            let off = (a - self.fram_start) as usize;
            let b: [u8; 4] = self.fram[off..off + 4].try_into().expect("4-byte slice");
            self.fram_reads += 4;
            (u32::from_le_bytes(b), self.fram_read_cost)
        } else {
            return Err(MemoryError::Unmapped { addr, len: 4 });
        };
        self.cycles += cost;
        Ok(v)
    }

    /// Writes a little-endian `u32` with the torn-commit math of
    /// [`Memory::write_word`]: against an armed cut the word commits
    /// iff its full write cost still fits, else it tears (full cost
    /// still charged).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline(always)]
    pub fn write_word(&mut self, addr: Addr, v: u32) -> Result<(), MemoryError> {
        let a = addr.0;
        let volatile = if a >= self.sram_start && a <= self.sram_last {
            true
        } else if a >= self.fram_start && a <= self.fram_last {
            false
        } else {
            return Err(MemoryError::Unmapped { addr, len: 4 });
        };
        let cost = if volatile {
            self.sram_cost
        } else {
            self.fram_write_cost
        };
        let commits = cost == 0 || self.cut_at.saturating_sub(self.cycles) >= cost;
        if commits {
            let b = v.to_le_bytes();
            if volatile {
                let off = (a - self.sram_start) as usize;
                self.sram[off..off + 4].copy_from_slice(&b);
                mark_word_dirty(self.sram_dirty, off);
            } else {
                let off = (a - self.fram_start) as usize;
                self.fram[off..off + 4].copy_from_slice(&b);
                mark_word_dirty(self.fram_dirty, off);
            }
        } else {
            self.torn_writes += 1;
        }
        if volatile {
            self.sram_writes += 4;
        } else {
            self.fram_writes += 4;
        }
        self.cycles += cost;
        Ok(())
    }

    /// Reads a word without charging cycles or stats (`Dup`'s stack
    /// peek), mirroring [`Memory::peek_word`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if any byte is not mapped.
    #[inline(always)]
    pub fn peek_word(&self, addr: Addr) -> Result<u32, MemoryError> {
        let a = addr.0;
        let b: [u8; 4] = if a >= self.sram_start && a <= self.sram_last {
            let off = (a - self.sram_start) as usize;
            self.sram[off..off + 4].try_into().expect("4-byte slice")
        } else if a >= self.fram_start && a <= self.fram_last {
            let off = (a - self.fram_start) as usize;
            self.fram[off..off + 4].try_into().expect("4-byte slice")
        } else {
            return Err(MemoryError::Unmapped { addr, len: 4 });
        };
        Ok(u32::from_le_bytes(b))
    }

    /// Folds the accumulated deltas back into the owning [`Memory`].
    /// All burst cycles belong to the span that was open when the view
    /// was created — span changes only happen through runtime code,
    /// which never runs inside a burst.
    pub fn commit(self) {
        *self.cycles_out = self.cycles;
        *self.span_out += self.cycles - self.start_cycles;
        self.stats_out.sram_reads += self.sram_reads;
        self.stats_out.sram_writes += self.sram_writes;
        self.stats_out.fram_reads += self.fram_reads;
        self.stats_out.fram_writes += self.fram_writes;
        self.stats_out.torn_writes += self.torn_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    fn mem() -> Memory {
        Memory::new(MemoryLayout::default())
    }

    #[test]
    fn fram_survives_power_failure() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.write_u32(a, 0xCAFE_F00D).unwrap();
        m.power_fail();
        assert_eq!(m.read_u32(a).unwrap(), 0xCAFE_F00D);
        assert_eq!(m.stats().power_failures, 1);
    }

    #[test]
    fn sram_clobbered_on_power_failure() {
        let mut m = mem();
        let a = m.layout().sram.start;
        m.write_u32(a, 0x1234_5678).unwrap();
        m.power_fail();
        assert_eq!(m.read_u8(a).unwrap(), SRAM_CLOBBER);
        assert_ne!(m.read_u32(a).unwrap(), 0x1234_5678);
    }

    #[test]
    fn unmapped_access_is_an_error() {
        let mut m = mem();
        let err = m.read_u8(Addr(0)).unwrap_err();
        assert_eq!(
            err,
            MemoryError::Unmapped {
                addr: Addr(0),
                len: 1
            }
        );
        // Access straddling the end of SRAM is rejected even though it
        // starts mapped.
        let end = m.layout().sram.end;
        assert!(m.write_u32(Addr(end.0 - 2), 1).is_err());
    }

    #[test]
    fn little_endian_roundtrips() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.write_i32(a, -123_456).unwrap();
        assert_eq!(m.read_i32(a).unwrap(), -123_456);
        m.write_u64(a, u64::MAX - 7).unwrap();
        assert_eq!(m.read_u64(a).unwrap(), u64::MAX - 7);
        assert_eq!(m.read_u8(a).unwrap(), (u64::MAX - 7).to_le_bytes()[0]);
    }

    #[test]
    fn copy_moves_bytes_and_charges_cycles() {
        let mut m = mem();
        let src = m.layout().fram.start;
        let dst = src.offset(64);
        m.write_bytes(src, &[1, 2, 3, 4]).unwrap();
        let before = m.cycles();
        m.copy(src, dst, 4).unwrap();
        assert_eq!(m.peek_bytes(dst, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(m.cycles() > before);
    }

    #[test]
    fn peek_poke_do_not_charge() {
        let mut m = mem();
        let a = m.layout().fram.start;
        let before = (m.cycles(), m.stats());
        m.poke_i32(a, 99).unwrap();
        assert_eq!(m.peek_i32(a).unwrap(), 99);
        assert_eq!((m.cycles(), m.stats()), before);
    }

    #[test]
    fn fram_writes_cost_more_than_sram() {
        let mut m = mem();
        let s = m.layout().sram.start;
        let f = m.layout().fram.start;
        let c0 = m.cycles();
        m.write_u32(s, 1).unwrap();
        let sram_cost = m.cycles() - c0;
        let c1 = m.cycles();
        m.write_u32(f, 1).unwrap();
        let fram_cost = m.cycles() - c1;
        assert!(fram_cost > sram_cost);
    }

    #[test]
    fn stats_track_traffic_by_region() {
        let mut m = mem();
        let s = m.layout().sram.start;
        let f = m.layout().fram.start;
        m.write_u32(s, 1).unwrap();
        m.read_u32(s).unwrap();
        m.write_u32(f, 1).unwrap();
        let st = m.stats();
        assert_eq!(st.sram_writes, 4);
        assert_eq!(st.sram_reads, 4);
        assert_eq!(st.fram_writes, 4);
        assert_eq!(st.fram_reads, 0);
    }

    #[test]
    fn custom_layout_is_respected() {
        let layout = MemoryLayout::new(
            Region::with_len(Addr(0x100), 0x100),
            Region::with_len(Addr(0x1000), 0x1000),
        );
        let mut m = Memory::new(layout);
        assert!(m.write_u8(Addr(0x100), 1).is_ok());
        assert!(m.write_u8(Addr(0x200), 1).is_err());
        assert!(m.write_u8(Addr(0x1FFF), 1).is_ok());
    }

    #[test]
    fn torn_write_commits_word_prefix_only() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.write_u64(a, 0x1111_1111_1111_1111).unwrap();
        let per_word = m.costs().fram_write_per_word;
        // Budget for exactly one of the two words of a u64 store.
        m.set_power_cut(Some(m.cycles() + per_word));
        m.write_u64(a, 0xAAAA_BBBB_CCCC_DDDD).unwrap();
        // Low word landed, high word still holds the old value.
        assert_eq!(m.peek_u64(a).unwrap(), 0x1111_1111_CCCC_DDDD);
        assert_eq!(m.stats().torn_writes, 1);
    }

    #[test]
    fn write_past_cut_commits_nothing_but_still_charges() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.write_u32(a, 7).unwrap();
        m.set_power_cut(Some(m.cycles())); // dead right now
        let before = m.cycles();
        m.write_u32(a, 99).unwrap();
        assert_eq!(m.peek_i32(a).unwrap(), 7);
        assert!(m.cycles() > before); // full cost charged regardless
        assert_eq!(m.stats().torn_writes, 1);
    }

    #[test]
    fn exact_fit_store_is_not_torn() {
        let mut m = mem();
        let a = m.layout().fram.start;
        let per_word = m.costs().fram_write_per_word;
        m.set_power_cut(Some(m.cycles() + 2 * per_word));
        m.write_u64(a, 0xDEAD_BEEF_0BAD_F00D).unwrap();
        assert_eq!(m.peek_u64(a).unwrap(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(m.stats().torn_writes, 0);
    }

    #[test]
    fn power_fail_disarms_the_cut() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_power_cut(Some(0));
        m.power_fail();
        assert_eq!(m.power_cut(), None);
        m.write_u64(a, 42).unwrap();
        assert_eq!(m.peek_u64(a).unwrap(), 42);
        assert_eq!(m.stats().torn_writes, 0);
    }

    #[test]
    fn pokes_ignore_the_cut() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_power_cut(Some(0));
        m.poke_bytes(a, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(m.peek_u64(a).unwrap(), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(m.stats().torn_writes, 0);
    }

    #[test]
    fn torn_fill_truncates_at_word_boundary() {
        let mut m = mem();
        let a = m.layout().fram.start;
        let per_word = m.costs().fram_write_per_word;
        m.set_power_cut(Some(m.cycles() + 2 * per_word));
        m.fill(a, 16, 0xFF).unwrap();
        let bytes = m.peek_bytes(a, 16).unwrap();
        assert!(bytes[..8].iter().all(|&b| b == 0xFF));
        assert!(bytes[8..].iter().all(|&b| b == 0));
        assert_eq!(m.stats().torn_writes, 1);
    }

    #[test]
    fn span_cycles_sum_to_total_cycles() {
        let mut m = mem();
        let f = m.layout().fram.start;
        let s = m.layout().sram.start;
        m.write_u32(f, 1).unwrap();
        let prev = m.set_span(SpanKind::Checkpoint);
        assert_eq!(prev, SpanKind::App);
        m.copy(f, f.offset(64), 32).unwrap();
        m.add_cycles(264);
        m.set_span(SpanKind::UndoLog);
        m.write_u32(s, 2).unwrap();
        m.set_span(SpanKind::App);
        m.read_u32(f).unwrap();
        let spans = m.span_cycles_all();
        assert_eq!(spans.iter().sum::<u64>(), m.cycles());
        assert!(m.span_cycles(SpanKind::Checkpoint) >= 264);
        assert!(m.span_cycles(SpanKind::UndoLog) > 0);
        assert!(m.span_cycles(SpanKind::App) > 0);
        assert_eq!(m.span_cycles(SpanKind::Rollback), 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_inside_the_window() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_corruption(Some(CorruptionModel::new(1_000, 1.0, 0.0, 7)));
        m.set_power_cut(Some(m.cycles() + 500)); // inside the window
        let payload = [0u8; 32];
        m.poke_bytes(a, &payload).unwrap();
        let got = m.peek_bytes(a, 32).unwrap();
        let flipped: u32 = got
            .iter()
            .zip(payload.iter())
            .map(|(g, p)| (g ^ p).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit should flip: {got:?}");
        assert_eq!(m.stats().corrupted_writes, 1);
    }

    #[test]
    fn corruption_drops_the_whole_store() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.poke_bytes(a, &[9; 12]).unwrap();
        m.set_corruption(Some(CorruptionModel::new(1_000, 0.0, 1.0, 7)));
        m.set_power_cut(Some(m.cycles() + 10));
        m.poke_bytes(a, &[1; 12]).unwrap();
        assert_eq!(m.peek_bytes(a, 12).unwrap(), vec![9; 12]);
        assert_eq!(m.stats().corrupted_writes, 1);
    }

    #[test]
    fn word_sized_stores_are_immune_to_corruption() {
        // The FRAM controller's write buffer commits up to two words
        // atomically — control-word pokes (flags, counters, undo slots)
        // can never be flipped or dropped, only burst stores can.
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_corruption(Some(CorruptionModel::new(u64::MAX, 0.5, 0.5, 7)));
        m.set_power_cut(Some(m.cycles() + 10));
        for i in 0..50u32 {
            m.poke_bytes(a, &i.to_le_bytes()).unwrap();
            assert_eq!(m.peek_i32(a).unwrap() as u32, i);
            m.poke_bytes(a, &u64::from(i).to_le_bytes()).unwrap();
            assert_eq!(m.peek_u64(a).unwrap(), u64::from(i));
        }
        assert_eq!(m.stats().corrupted_writes, 0);
    }

    #[test]
    fn corruption_is_inert_outside_the_window_or_without_a_cut() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_corruption(Some(CorruptionModel::new(100, 1.0, 0.0, 7)));
        // No cut armed: clean.
        m.poke_bytes(a, &[7; 16]).unwrap();
        assert_eq!(m.peek_bytes(a, 16).unwrap(), vec![7; 16]);
        // Cut armed far beyond the window: still clean.
        m.set_power_cut(Some(m.cycles() + 1_000_000));
        m.poke_bytes(a, &[8; 16]).unwrap();
        assert_eq!(m.peek_bytes(a, 16).unwrap(), vec![8; 16]);
        assert_eq!(m.stats().corrupted_writes, 0);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = mem();
            let a = m.layout().fram.start;
            m.set_corruption(Some(CorruptionModel::new(10_000, 0.5, 0.25, seed)));
            m.set_power_cut(Some(m.cycles() + 100));
            for i in 0..16u8 {
                m.poke_bytes(a.offset(16 * u32::from(i)), &[i; 16]).unwrap();
            }
            (m.peek_bytes(a, 256).unwrap(), m.stats().corrupted_writes)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
    }

    #[test]
    fn cycle_accounted_writes_are_also_at_risk() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_corruption(Some(CorruptionModel::new(u64::MAX, 0.0, 1.0, 3)));
        m.set_power_cut(Some(m.cycles() + 1_000_000));
        m.write_bytes(a, &[0x77; 12]).unwrap();
        assert_eq!(
            m.peek_bytes(a, 12).unwrap(),
            vec![0; 12],
            "dropped store leaves zeroes"
        );
        assert_eq!(m.stats().corrupted_writes, 1);
    }

    #[test]
    fn sram_decay_retains_some_bytes_across_an_outage() {
        let mut m = mem();
        let a = m.layout().sram.start;
        let len = m.layout().sram.len();
        m.fill(a, len, 0x3C).unwrap();
        m.set_corruption(Some(
            CorruptionModel::new(0, 0.0, 0.0, 11).with_sram_decay(0.5),
        ));
        m.power_fail();
        let bytes = m.peek_bytes(a, len).unwrap();
        let decayed = bytes.iter().filter(|&&b| b == SRAM_CLOBBER).count();
        let retained = bytes.iter().filter(|&&b| b == 0x3C).count();
        assert_eq!(decayed + retained, len as usize);
        assert!(decayed > 0, "some bytes must decay");
        assert!(retained > 0, "some bytes must survive");
        assert_eq!(m.stats().power_failures, 1);

        // decay = 0.0 retains everything; the default model clobbers all.
        let mut m2 = mem();
        m2.fill(a, len, 0x3C).unwrap();
        m2.set_corruption(Some(
            CorruptionModel::new(0, 0.0, 0.0, 11).with_sram_decay(0.0),
        ));
        m2.power_fail();
        assert!(m2.peek_bytes(a, len).unwrap().iter().all(|&b| b == 0x3C));
    }

    #[test]
    fn fill_sets_every_byte() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.fill(a, 16, 0x7E).unwrap();
        assert!(m.peek_bytes(a, 16).unwrap().iter().all(|&b| b == 0x7E));
    }

    /// Drives both the generic and the word fast paths through the same
    /// operation sequence and asserts identical contents, cycles, stats,
    /// span attribution, and errors.
    fn assert_word_paths_agree(configure: impl Fn(&mut Memory)) {
        let mut slow = mem();
        let mut fast = mem();
        configure(&mut slow);
        configure(&mut fast);
        let sram = slow.layout().sram.start;
        let fram = slow.layout().fram.start;
        let unmapped = Addr(4);
        let sram_end = Addr(slow.layout().sram.end.0 - 2);
        let ops: Vec<(Addr, u32)> = (0..64)
            .map(|i| {
                let a = if i % 3 == 0 {
                    sram.offset(4 * (i % 16))
                } else {
                    fram.offset(4 * (i % 64))
                };
                (a, 0xDEAD_0000 ^ i)
            })
            .collect();
        for &(a, v) in &ops {
            assert_eq!(
                slow.write_u32(a, v).is_ok(),
                fast.write_word(a, v).is_ok()
            );
            assert_eq!(slow.read_u32(a).ok(), fast.read_word(a).ok());
        }
        // Error cases must agree too (and charge nothing in either path).
        assert!(slow.write_u32(unmapped, 1).is_err());
        assert!(fast.write_word(unmapped, 1).is_err());
        assert!(slow.read_u32(sram_end).is_err());
        assert!(fast.read_word(sram_end).is_err());
        assert_eq!(slow.cycles(), fast.cycles());
        assert_eq!(slow.stats(), fast.stats());
        assert_eq!(slow.span_cycles_all(), fast.span_cycles_all());
        let len = slow.layout().fram.end.0 - slow.layout().fram.start.0;
        assert_eq!(
            slow.peek_bytes(fram, len).unwrap(),
            fast.peek_bytes(fram, len).unwrap()
        );
        assert_eq!(
            all_dirty_words(&slow),
            all_dirty_words(&fast),
            "dirty-word bitmaps diverged between the generic and word paths"
        );
    }

    /// Every dirty word base address across both regions, ascending.
    fn all_dirty_words(m: &Memory) -> Vec<Addr> {
        let l = *m.layout();
        let mut v = Vec::new();
        m.for_each_dirty_word(l.sram.start, l.sram.len(), |a| v.push(a));
        m.for_each_dirty_word(l.fram.start, l.fram.len(), |a| v.push(a));
        v
    }

    #[test]
    fn word_fast_path_matches_generic_path() {
        assert_word_paths_agree(|_| {});
    }

    #[test]
    fn word_fast_path_matches_with_zero_cost_model() {
        // `uniform()` zeroes the per-word costs: the `per_word == 0` edge
        // of `committed_prefix` must commit in both paths.
        assert_word_paths_agree(|m| {
            *m = Memory::with_costs(MemoryLayout::default(), CostModel::uniform());
            m.set_power_cut(Some(10));
        });
    }

    #[test]
    fn word_fast_path_matches_under_power_cut() {
        // Arm a cut so some stores commit, some tear; the torn counters
        // and memory contents must match exactly.
        assert_word_paths_agree(|m| m.set_power_cut(Some(500)));
        assert_word_paths_agree(|m| m.set_power_cut(Some(0)));
    }

    #[test]
    fn word_fast_path_matches_with_corruption_armed() {
        // Word stores are at or below ATOMIC_STORE_BYTES, so neither path
        // may consult (or advance) the corruption RNG.
        assert_word_paths_agree(|m| {
            m.set_corruption(Some(CorruptionModel::new(10_000, 0.5, 0.5, 42)));
            m.set_power_cut(Some(800));
        });
    }

    #[test]
    fn word_fast_path_respects_span_attribution() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_span(SpanKind::Checkpoint);
        m.write_word(a, 7).unwrap();
        m.read_word(a).unwrap();
        assert_eq!(m.span_cycles(SpanKind::Checkpoint), m.cycles());
        assert!(m.cycles() > 0);
    }

    #[test]
    fn dirty_monitor_marks_stores_and_clears_on_ack() {
        let mut m = mem();
        let a = m.layout().fram.start.offset(16);
        assert_eq!(m.count_dirty_words(a, 16), 0);
        m.write_u32(a, 7).unwrap();
        assert!(m.is_word_dirty(a));
        assert_eq!(m.count_dirty_words(a, 16), 1);
        m.poke_bytes(a.offset(8), &[1u8; 8]).unwrap();
        assert_eq!(m.count_dirty_words(a, 16), 3);
        let mut seen = Vec::new();
        m.for_each_dirty_word(a, 16, |w| seen.push(w));
        assert_eq!(seen, vec![a, a.offset(8), a.offset(12)]);
        m.clear_dirty(a, 16);
        assert_eq!(m.count_dirty_words(a, 16), 0);
        // Reads never mark.
        m.read_u32(a).unwrap();
        m.peek_word(a).unwrap();
        assert_eq!(m.count_dirty_words(a, 16), 0);
    }

    #[test]
    fn torn_store_marks_only_the_committed_prefix() {
        let mut m = mem();
        let a = m.layout().fram.start;
        let per_word = m.costs().fram_write_per_word;
        m.set_power_cut(Some(m.cycles() + per_word));
        m.write_u64(a, 0xAAAA_BBBB_CCCC_DDDD).unwrap();
        assert!(m.is_word_dirty(a), "committed low word must be dirty");
        assert!(
            !m.is_word_dirty(a.offset(4)),
            "torn-away high word must stay clean"
        );
    }

    #[test]
    fn dropped_store_marks_nothing() {
        let mut m = mem();
        let a = m.layout().fram.start;
        m.set_corruption(Some(CorruptionModel::new(1_000, 0.0, 1.0, 7)));
        m.set_power_cut(Some(m.cycles() + 10));
        m.poke_bytes(a, &[1; 12]).unwrap();
        assert_eq!(m.stats().corrupted_writes, 1);
        assert_eq!(m.count_dirty_words(a, 12), 0);
    }

    /// The dirty-word property: after any seeded sequence of stores
    /// (generic, word-path, burst, poke, fill — with torn cuts armed
    /// and disarmed along the way), the bitmap must cover every word
    /// whose post-state differs from the last acknowledged snapshot,
    /// and every marked word must have been the target of some store.
    fn dirty_bitmap_property(seed: u64) {
        use std::collections::HashSet;
        let mut m = mem();
        let l = *m.layout();
        let snapshot = |m: &Memory| {
            (
                m.peek_bytes(l.sram.start, l.sram.len()).unwrap(),
                m.peek_bytes(l.fram.start, l.fram.len()).unwrap(),
            )
        };
        let mut rng = seed;
        let mut targeted: HashSet<u32> = HashSet::new();
        // Track every word a store *could* have touched (commit or not).
        let note = |targeted: &mut HashSet<u32>, addr: Addr, len: u32| {
            let (start, end) = if addr.0 >= l.fram.start.0 {
                (l.fram.start.0, l.fram.end.0)
            } else {
                (l.sram.start.0, l.sram.end.0)
            };
            let _ = end;
            let first = (addr.0 - start) / 4;
            let last = (addr.0 + len - 1 - start) / 4;
            for w in first..=last {
                targeted.insert(start + 4 * w);
            }
        };
        let (mut sram0, mut fram0) = snapshot(&m);
        for step in 0..400u32 {
            let r = splitmix64(&mut rng);
            let in_fram = r & 1 == 0;
            let (base, limit) = if in_fram {
                (l.fram.start, l.fram.len())
            } else {
                (l.sram.start, l.sram.len())
            };
            let addr = base.offset(((r >> 8) as u32 % (limit - 64)) & !3);
            match (r >> 40) % 6 {
                0 => {
                    m.write_u32(addr, r as u32).unwrap();
                    note(&mut targeted, addr, 4);
                }
                1 => {
                    m.write_word(addr, (r >> 16) as u32).unwrap();
                    note(&mut targeted, addr, 4);
                }
                2 => {
                    let len = 4 + (r >> 20) as u32 % 48;
                    let buf: Vec<u8> = (0..len).map(|i| (r as u8).wrapping_add(i as u8)).collect();
                    m.write_bytes(addr, &buf).unwrap();
                    note(&mut targeted, addr, len);
                }
                3 => {
                    let len = 4 + (r >> 20) as u32 % 32;
                    m.fill(addr, len, r as u8).unwrap();
                    note(&mut targeted, addr, len);
                }
                4 => {
                    let buf = (r ^ 0x5A5A).to_le_bytes();
                    m.poke_bytes(addr, &buf).unwrap();
                    note(&mut targeted, addr, 8);
                }
                _ => {
                    let mut bm = m.word_burst();
                    for i in 0..4 {
                        bm.write_word(addr.offset(4 * i), (r >> i) as u32).unwrap();
                    }
                    bm.commit();
                    for i in 0..4 {
                        note(&mut targeted, addr.offset(4 * i), 4);
                    }
                }
            }
            // Periodically arm a tight cut (some stores tear), disarm
            // it again, and occasionally acknowledge a "checkpoint".
            if step % 23 == 7 {
                m.set_power_cut(Some(m.cycles() + (r >> 32) % 200));
            }
            if step % 23 == 15 {
                m.set_power_cut(None);
            }
            if step % 97 == 96 {
                m.set_power_cut(None);
                m.clear_dirty(l.sram.start, l.sram.len());
                m.clear_dirty(l.fram.start, l.fram.len());
                targeted.clear();
                let (s, f) = snapshot(&m);
                sram0 = s;
                fram0 = f;
            }
        }
        m.set_power_cut(None);
        let (sram1, fram1) = snapshot(&m);
        let check = |old: &[u8], new: &[u8], start: u32| {
            for w in 0..(old.len() / 4) as u32 {
                let addr = Addr(start + 4 * w);
                let o = &old[(4 * w) as usize..(4 * w + 4) as usize];
                let n = &new[(4 * w) as usize..(4 * w + 4) as usize];
                if o != n {
                    assert!(
                        m.is_word_dirty(addr),
                        "word {addr} changed since last ack but is not marked dirty (seed {seed})"
                    );
                }
                if m.is_word_dirty(addr) {
                    assert!(
                        targeted.contains(&addr.0),
                        "word {addr} is marked dirty but no store targeted it (seed {seed})"
                    );
                }
            }
        };
        check(&sram0, &sram1, l.sram.start.0);
        check(&fram0, &fram1, l.fram.start.0);
    }

    #[test]
    fn dirty_bitmap_exactly_covers_changed_words() {
        for seed in [1, 42, 0xDEAD_BEEF, 7_777_777] {
            dirty_bitmap_property(seed);
        }
    }

    #[test]
    fn peek_word_is_free_and_matches_peek_i32() {
        let mut m = mem();
        let a = m.layout().fram.start.offset(8);
        m.write_word(a, 0x1234_5678).unwrap();
        let before = m.cycles();
        assert_eq!(m.peek_word(a).unwrap(), 0x1234_5678);
        assert_eq!(m.peek_i32(a).unwrap(), 0x1234_5678);
        assert_eq!(m.cycles(), before);
        assert!(m.peek_word(Addr(0)).is_err());
    }
}
