//! Cycle cost model calibrated against the paper's Table 4.
//!
//! The paper reports per-operation runtime overheads measured on an
//! MSP430FR5969 at 1 MHz, so **one cycle equals one microsecond**. The
//! constants below reproduce Table 4 by construction (see DESIGN.md §4);
//! everything *built from* these operations — checkpoint counts, benchmark
//! runtimes, crossovers — is emergent.

/// Cycle costs for instruction execution, memory traffic, and the
/// intermittency-runtime primitives of Table 4.
///
/// All costs are in cycles (= µs at 1 MHz). Use [`CostModel::default`] for
/// the calibrated model; tests may construct cheaper models.
///
/// ```
/// use tics_mcu::CostModel;
/// let m = CostModel::default();
/// // Table 4: "Checkpoint logic, 256 B seg." = 656 µs.
/// assert_eq!(m.checkpoint_cost(256), 656);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of executing one bytecode instruction.
    pub instr_base: u64,
    /// Extra cost per 4-byte word of SRAM traffic.
    pub sram_access_per_word: u64,
    /// Extra cost per 4-byte word read from FRAM.
    pub fram_read_per_word: u64,
    /// Extra cost per 4-byte word written to FRAM.
    pub fram_write_per_word: u64,
    /// Base cost of a syscall (sensor read, radio send, ...).
    pub syscall_base: u64,

    /// Fixed cost of checkpoint logic (registers + two-phase flags).
    pub ckpt_base: u64,
    /// Additional fixed cost when a stack segment is committed.
    pub ckpt_seg_fixed: u64,
    /// Per-byte cost of committing the working stack segment.
    pub ckpt_seg_per_byte: u64,
    /// Fixed cost of restore logic after reboot.
    pub restore_base: u64,
    /// Additional fixed cost when a stack segment is restored.
    pub restore_seg_fixed: u64,
    /// Per-byte cost of restoring the working stack segment.
    pub restore_seg_per_byte: u64,

    /// Cost of classifying a pointer target (working stack or not).
    pub ptr_check: u64,
    /// Fixed cost of appending an undo-log entry (two-phase committed).
    pub undo_log_fixed: u64,
    /// Per-byte cost of the logged old value.
    pub undo_log_per_byte: u64,
    /// Fixed cost of rolling one entry back from the undo log.
    pub rollback_fixed: u64,
    /// Per-byte cost of rolling back a logged value.
    pub rollback_per_byte: u64,

    /// Fixed cost of a stack grow or shrink (segment switch bookkeeping).
    pub stack_switch_fixed: u64,
    /// Per-byte cost of copying function arguments into a fresh segment.
    pub stack_switch_per_arg_byte: u64,
}

impl CostModel {
    /// The model calibrated to Table 4 of the paper (GCC `-O2`, 1 MHz).
    #[must_use]
    pub fn msp430fr5969() -> CostModel {
        CostModel {
            instr_base: 2,
            sram_access_per_word: 1,
            fram_read_per_word: 1,
            fram_write_per_word: 2,
            syscall_base: 50,
            ckpt_base: 264,
            ckpt_seg_fixed: 136,
            ckpt_seg_per_byte: 1,
            restore_base: 273,
            restore_seg_fixed: 136,
            restore_seg_per_byte: 1,
            ptr_check: 13,
            undo_log_fixed: 304,
            undo_log_per_byte: 1,
            rollback_fixed: 230,
            rollback_per_byte: 1,
            stack_switch_fixed: 281,
            stack_switch_per_arg_byte: 1,
        }
    }

    /// A model where every operation costs one cycle; handy for unit tests
    /// that assert on counts rather than calibrated durations.
    #[must_use]
    pub fn uniform() -> CostModel {
        CostModel {
            instr_base: 1,
            sram_access_per_word: 0,
            fram_read_per_word: 0,
            fram_write_per_word: 0,
            syscall_base: 1,
            ckpt_base: 1,
            ckpt_seg_fixed: 0,
            ckpt_seg_per_byte: 0,
            restore_base: 1,
            restore_seg_fixed: 0,
            restore_seg_per_byte: 0,
            ptr_check: 1,
            undo_log_fixed: 1,
            undo_log_per_byte: 0,
            rollback_fixed: 1,
            rollback_per_byte: 0,
            stack_switch_fixed: 1,
            stack_switch_per_arg_byte: 0,
        }
    }

    /// Cost of checkpoint logic committing `seg_bytes` of working stack
    /// (0 means a register-only checkpoint).
    #[must_use]
    pub fn checkpoint_cost(&self, seg_bytes: u32) -> u64 {
        let seg = if seg_bytes > 0 {
            self.ckpt_seg_fixed + self.ckpt_seg_per_byte * u64::from(seg_bytes)
        } else {
            0
        };
        self.ckpt_base + seg
    }

    /// Cost of restore logic recovering `seg_bytes` of working stack.
    #[must_use]
    pub fn restore_cost(&self, seg_bytes: u32) -> u64 {
        let seg = if seg_bytes > 0 {
            self.restore_seg_fixed + self.restore_seg_per_byte * u64::from(seg_bytes)
        } else {
            0
        };
        self.restore_base + seg
    }

    /// Cost of an instrumented pointer store that required an undo-log
    /// append of `logged_bytes` old bytes. A store that hits the working
    /// stack costs only [`CostModel::ptr_check`].
    #[must_use]
    pub fn undo_log_cost(&self, logged_bytes: u32) -> u64 {
        self.ptr_check + self.undo_log_fixed + self.undo_log_per_byte * u64::from(logged_bytes)
    }

    /// Cost of rolling back one undo-log entry of `bytes` old bytes.
    #[must_use]
    pub fn rollback_cost(&self, bytes: u32) -> u64 {
        self.rollback_fixed + self.rollback_per_byte * u64::from(bytes)
    }

    /// Cost of a stack grow/shrink copying `arg_bytes` of arguments.
    #[must_use]
    pub fn stack_switch_cost(&self, arg_bytes: u32) -> u64 {
        self.stack_switch_fixed + self.stack_switch_per_arg_byte * u64::from(arg_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::msp430fr5969()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 4, "Checkpoint logic": 264 | 464 | 656 µs for 0 | 64 | 256 B.
    #[test]
    fn checkpoint_matches_table4() {
        let m = CostModel::default();
        assert_eq!(m.checkpoint_cost(0), 264);
        assert_eq!(m.checkpoint_cost(64), 464);
        assert_eq!(m.checkpoint_cost(256), 656);
    }

    /// Table 4, "Restore logic": 273 | 475 | 664 µs. Our linear model gives
    /// 273 | 473 | 665 — within measurement noise of the paper's numbers.
    #[test]
    fn restore_close_to_table4() {
        let m = CostModel::default();
        assert_eq!(m.restore_cost(0), 273);
        let r64 = m.restore_cost(64);
        let r256 = m.restore_cost(256);
        assert!((r64 as i64 - 475).abs() <= 5, "restore(64) = {r64}");
        assert!((r256 as i64 - 664).abs() <= 5, "restore(256) = {r256}");
    }

    /// Table 4, "Pointer access": no-log 13; log 4 B = 308 (64 B = 371).
    #[test]
    fn pointer_access_matches_table4() {
        let m = CostModel::default();
        assert_eq!(m.ptr_check, 13);
        assert_eq!(m.undo_log_cost(4) - m.ptr_check, 308);
        let l64 = m.undo_log_cost(64) - m.ptr_check;
        assert!((l64 as i64 - 371).abs() <= 5, "log(64) = {l64}");
    }

    /// Table 4, "Roll back from undo log": 234 (4 B) | 294 (64 B).
    #[test]
    fn rollback_matches_table4() {
        let m = CostModel::default();
        assert_eq!(m.rollback_cost(4), 234);
        assert_eq!(m.rollback_cost(64), 294);
    }

    /// Table 4, "Stack grow/shrink (max)": 345 µs. The maximum argument
    /// copy in the paper's benchmarks is 64 B.
    #[test]
    fn stack_switch_max_matches_table4() {
        let m = CostModel::default();
        assert_eq!(m.stack_switch_cost(64), 345);
    }
}
