//! CRC-32 (IEEE 802.3) integrity stamps for checkpoint banks.
//!
//! Every hardened runtime stamps the bank it commits with a CRC-32 over
//! the bank payload and validates the stamp before restoring at reboot.
//! The polynomial is the reflected IEEE one (`0xEDB8_8320`). The
//! simulator processes it through a 256-entry lookup table built at
//! compile time: checkpoint banks for the large-footprint programs run
//! to tens of kilobytes and are re-validated on every commit, so the
//! CRC is on the host-side hot path of every checkpointing runtime.
//! (The table is a host-speed concern only — the stamp value is
//! identical to the bitwise form an MSP430 runtime would compute.)

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table for [`POLY`], built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC (the zlib/PNG/Ethernet CRC) of `data`.
///
/// Init `0xFFFF_FFFF`, reflected polynomial `0xEDB8_8320`, final XOR
/// `0xFFFF_FFFF`. Check value: `crc32(b"123456789") == 0xCBF4_3926`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Streaming CRC-32 over multiple chunks, equivalent to [`crc32`] of
/// their concatenation. Lets callers stamp a header-plus-payload bank
/// without first copying the parts into one buffer.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh digest.
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the CRC of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_yields_zero() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let a = [0u8; 64];
        let mut b = a;
        b[37] ^= 0x10;
        assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn is_position_sensitive() {
        assert_ne!(crc32(&[1, 2, 3, 4]), crc32(&[4, 3, 2, 1]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut h = Crc32::new();
        h.update(&data[..13]);
        h.update(&data[13..700]);
        h.update(&data[700..]);
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn table_matches_the_bitwise_form() {
        // The bitwise reference the table was derived from.
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc: u32 = 0xFFFF_FFFF;
            for &byte in data {
                crc ^= u32::from(byte);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (POLY & mask);
                }
            }
            !crc
        }
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        assert_eq!(crc32(&data), bitwise(&data));
    }
}
