//! CRC-32 (IEEE 802.3) integrity stamps for checkpoint banks.
//!
//! Every hardened runtime stamps the bank it commits with a CRC-32 over
//! the bank payload and validates the stamp before restoring at reboot.
//! The polynomial is the reflected IEEE one (`0xEDB8_8320`), processed
//! bitwise — the banks are a few hundred bytes, so a lookup table would
//! be table-churn for no measurable gain, and the bitwise form is the
//! one the MSP430 runtime would actually ship.

/// CRC-32/ISO-HDLC (the zlib/PNG/Ethernet CRC) of `data`.
///
/// Init `0xFFFF_FFFF`, reflected polynomial `0xEDB8_8320`, final XOR
/// `0xFFFF_FFFF`. Check value: `crc32(b"123456789") == 0xCBF4_3926`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_yields_zero() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let a = [0u8; 64];
        let mut b = a;
        b[37] ^= 0x10;
        assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn is_position_sensitive() {
        assert_ne!(crc32(&[1, 2, 3, 4]), crc32(&[4, 3, 2, 1]));
    }
}
