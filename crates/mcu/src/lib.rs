//! # tics-mcu — MSP430FR-class microcontroller substrate
//!
//! This crate simulates the architectural properties of the
//! MSP430FR5969-style microcontrollers that TICS (ASPLOS 2020) targets:
//!
//! * a small **volatile SRAM** region and a larger **persistent FRAM**
//!   region in a single byte-addressable address space,
//! * a **volatile register file** (program counter, stack pointer, frame
//!   pointer, status bits) that is lost on every power failure,
//! * a **cycle cost model** calibrated so that one cycle equals one
//!   microsecond at the paper's 1 MHz clock, with distinct costs for SRAM
//!   and FRAM traffic (Table 4 of the paper),
//! * **power-failure semantics**: [`Memory::power_fail`] clobbers all
//!   volatile state while FRAM contents survive byte-for-byte.
//!
//! Higher layers (the bytecode VM in `tics-vm`, the TICS runtime in
//! `tics-core`, and the baseline runtimes in `tics-baselines`) build on this
//! substrate; none of them touch host memory directly, so every consistency
//! property the paper discusses is observable here.
//!
//! ## Example
//!
//! ```
//! use tics_mcu::{Memory, MemoryLayout};
//!
//! let layout = MemoryLayout::default();
//! let mut mem = Memory::new(layout);
//! let a = mem.layout().fram.start;
//! mem.write_u32(a, 0xDEAD_BEEF).unwrap();
//! mem.power_fail();
//! assert_eq!(mem.read_u32(a).unwrap(), 0xDEAD_BEEF); // FRAM survives
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod crc;
pub mod layout;
pub mod memory;
pub mod periph;
pub mod region;
pub mod registers;

pub use costs::CostModel;
pub use crc::{crc32, Crc32};
pub use layout::MemoryLayout;
pub use memory::{CorruptionModel, Memory, MemoryError, WordBurst, ATOMIC_STORE_BYTES};
pub use periph::{I2c, I2cWireOp, PeripheralBus, ServedRead, Uart, WireByte};
pub use region::{Addr, Region};
pub use registers::Registers;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, MemoryError>;
