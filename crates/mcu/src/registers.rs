//! The volatile register file.

use crate::region::Addr;

/// Volatile processor state lost on every power failure.
///
/// The simulated machine keeps all operand state in (simulated) memory, so
/// the architectural registers reduce to the program counter, the stack and
/// frame pointers, and a status word. This is the state a *register
/// checkpoint* saves; its fixed small size is why the paper's
/// register-only checkpoint cost (Table 4, "0 B seg.") is constant.
///
/// ```
/// use tics_mcu::{Addr, Registers};
/// let mut regs = Registers::default();
/// regs.pc = 42;
/// regs.sp = Addr(0x5000);
/// regs.reset();
/// assert_eq!(regs.pc, 0);
/// assert_eq!(regs.sp, Addr(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Registers {
    /// Program counter: an index into the loaded bytecode image.
    pub pc: u32,
    /// Stack pointer: first free byte above the current frame.
    pub sp: Addr,
    /// Frame pointer: base address of the current frame.
    pub fp: Addr,
    /// Status word (interrupt-enable and condition bits).
    pub sr: u32,
}

/// Size in bytes of a serialized register file (what a register
/// checkpoint writes to non-volatile memory).
pub const REGISTER_CHECKPOINT_BYTES: u32 = 16;

impl Registers {
    /// Creates a zeroed register file.
    #[must_use]
    pub fn new() -> Registers {
        Registers::default()
    }

    /// Clears all registers, as a power failure does.
    pub fn reset(&mut self) {
        *self = Registers::default();
    }

    /// Serializes the registers to four little-endian 32-bit words.
    #[must_use]
    pub fn to_words(&self) -> [u32; 4] {
        [self.pc, self.sp.raw(), self.fp.raw(), self.sr]
    }

    /// Reconstructs registers from [`Registers::to_words`] output.
    #[must_use]
    pub fn from_words(words: [u32; 4]) -> Registers {
        Registers {
            pc: words[0],
            sp: Addr(words[1]),
            fp: Addr(words[2]),
            sr: words[3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let regs = Registers {
            pc: 7,
            sp: Addr(0x5000),
            fp: Addr(0x4F00),
            sr: 0b101,
        };
        assert_eq!(Registers::from_words(regs.to_words()), regs);
    }

    #[test]
    fn reset_clears_everything() {
        let mut regs = Registers {
            pc: 9,
            sp: Addr(1),
            fp: Addr(2),
            sr: 3,
        };
        regs.reset();
        assert_eq!(regs, Registers::default());
    }

    #[test]
    fn checkpoint_size_matches_words() {
        assert_eq!(
            REGISTER_CHECKPOINT_BYTES as usize,
            std::mem::size_of::<[u32; 4]>()
        );
    }
}
