//! Wire-level peripheral models: a UART and an I2C sensor.
//!
//! Both model the property that makes peripheral I/O a distinct
//! intermittent-computing failure class: **the device on the other end
//! of the bus keeps its own state across our power cuts**. MCU-side
//! FIFO contents are volatile and vanish with SRAM, but everything the
//! device has seen — bytes already clocked onto the wire, a transaction
//! left half-completed at a START condition, the sensor's read-out
//! cursor — survives the reboot. A checkpointing runtime that rewinds
//! the *program* cannot rewind the *wire*; re-executed I/O duplicates
//! side effects unless a driver layer makes transactions idempotent.
//!
//! The models are deterministic (sensor readings and UART responses are
//! seeded hash streams) so a faulted replay can be judged against a
//! continuous-power golden run, and each device keeps a **wire log**
//! — the ground-truth record of what the outside world observed — that
//! the `exp_periph` oracle replays.

use std::collections::VecDeque;

use tics_trace::I2cPhase;

/// Cycles (≡ µs at the 1 MHz clock) to clock one UART byte at
/// ~115200 baud: 10 bit-times of ~8.7 µs.
pub const UART_BYTE_CYCLES: u64 = 87;

/// Cycles for one I2C phase (START+address, one data byte, or STOP) at
/// ~400 kHz fast mode: 9 bit-times of ~2.5 µs, rounded with overhead.
pub const I2C_PHASE_CYCLES: u64 = 25;

/// MCU-side UART RX FIFO depth (hardware registers, volatile).
pub const UART_FIFO_DEPTH: usize = 16;

/// The I2C sensor's bus address; anything else NACKs.
pub const I2C_SENSOR_ADDR: u8 = 0x40;

/// Bytes in one complete sensor reading.
pub const I2C_READING_BYTES: u8 = 2;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One byte as the UART device saw it on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireByte {
    /// The byte value the MCU shifted out.
    pub byte: u8,
    /// Whether the power cut landed mid-byte: the device received a
    /// half-clocked, unusable symbol (framing error).
    pub torn: bool,
    /// True wall-clock µs at which the byte finished (or died) on the
    /// wire.
    pub at_us: u64,
}

/// One I2C bus phase as the sensor saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I2cWireOp {
    /// Which phase.
    pub op: I2cPhase,
    /// Address for START, data byte for read/write, zero otherwise.
    pub value: u8,
    /// Whether the device acknowledged the phase.
    pub ack: bool,
    /// True wall-clock µs.
    pub at_us: u64,
}

/// One sensor reading the device served through a *completed* read
/// transaction (both data bytes clocked out untorn, then a STOP). The
/// read-out cursor only advances on completion, so a torn transaction
/// retried after a reboot is served the same reading again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRead {
    /// Monotonic reading index (the device's sample counter).
    pub index: u32,
    /// The 14-bit reading value.
    pub value: u16,
    /// True wall-clock µs at which the STOP committed the transaction.
    pub at_us: u64,
}

/// UART with a volatile MCU-side RX FIFO and a persistent device on the
/// far end that logs every received byte and answers each complete byte
/// with a deterministic response (request/response protocols read the
/// answers back with `uart_rx`).
#[derive(Debug, Clone, Default)]
pub struct Uart {
    /// MCU-side RX FIFO — **volatile**, cleared on power failure.
    rx_fifo: VecDeque<u8>,
    /// Everything that ever appeared on the TX wire — device-side,
    /// persistent. The oracle's ground truth.
    wire: Vec<WireByte>,
    /// Device-side outbound queue: responses generated but not yet
    /// pulled into the MCU FIFO. Persistent.
    device_out: VecDeque<u8>,
    /// Every response byte the device ever generated, in order.
    /// Persistent; the oracle checks committed responses against it.
    responses: Vec<u8>,
}

impl Uart {
    /// The device's deterministic response to one received byte.
    #[must_use]
    pub fn respond(byte: u8) -> u8 {
        byte.wrapping_mul(31).wrapping_add(7) ^ 0x5A
    }

    /// Clocks one byte onto the wire. `torn` means the energy deadline
    /// fell inside the byte time; the device logs a framing error and
    /// generates no response.
    pub fn tx(&mut self, byte: u8, torn: bool, at_us: u64) {
        self.wire.push(WireByte { byte, torn, at_us });
        if !torn {
            let r = Self::respond(byte);
            self.device_out.push_back(r);
            self.responses.push(r);
        }
    }

    /// Reads one byte: refills the MCU FIFO from the device's outbound
    /// queue if empty, then pops. Returns `-1` when nothing is pending
    /// anywhere.
    pub fn rx(&mut self) -> i32 {
        if self.rx_fifo.is_empty() {
            while self.rx_fifo.len() < UART_FIFO_DEPTH {
                let Some(b) = self.device_out.pop_front() else {
                    break;
                };
                self.rx_fifo.push_back(b);
            }
        }
        self.rx_fifo.pop_front().map_or(-1, i32::from)
    }

    /// Whether a byte is ready for [`Uart::rx`] without returning `-1`
    /// (the RX interrupt line level).
    #[must_use]
    pub fn rx_pending(&self) -> bool {
        !self.rx_fifo.is_empty() || !self.device_out.is_empty()
    }

    /// The TX wire log (device-side ground truth).
    #[must_use]
    pub fn wire(&self) -> &[WireByte] {
        &self.wire
    }

    /// Every response byte the device generated, in order.
    #[must_use]
    pub fn responses(&self) -> &[u8] {
        &self.responses
    }

    /// Power failure: MCU-side FIFO contents are lost; the device side
    /// (wire log, outbound queue, response history) survives.
    pub fn power_fail(&mut self) {
        self.rx_fifo.clear();
    }

    /// Returns the UART — both sides of the wire — to its
    /// as-constructed state, keeping the log allocations. Unlike
    /// [`Uart::power_fail`], this models swapping in a *new device*,
    /// not rebooting the same one: machine recycling only.
    pub fn recycle(&mut self) {
        self.rx_fifo.clear();
        self.wire.clear();
        self.device_out.clear();
        self.responses.clear();
    }
}

/// The sensor's transaction-phase state, persistent across MCU reboots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum I2cState {
    /// No transaction open.
    #[default]
    Idle,
    /// START + address acknowledged, no data moved yet.
    Started,
    /// `served` data bytes of the current reading clocked out.
    Reading {
        /// Bytes served so far (< [`I2C_READING_BYTES`] mid-read).
        served: u8,
    },
}

/// I2C master + simulated multi-byte sensor. The sensor serves 14-bit
/// readings two bytes at a time; its read-out cursor advances only when
/// a read transaction *completes* (all bytes + STOP). A reboot leaves
/// the device mid-transaction: the next START is NACKed until the
/// master issues a bus-clear ([`I2c::reset`]).
#[derive(Debug, Clone)]
pub struct I2c {
    state: I2cState,
    sample_counter: u32,
    seed: u64,
    wire: Vec<I2cWireOp>,
    served: Vec<ServedRead>,
}

impl I2c {
    /// A sensor with a deterministic reading stream derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> I2c {
        I2c {
            state: I2cState::Idle,
            sample_counter: 0,
            seed,
            wire: Vec::new(),
            served: Vec::new(),
        }
    }

    /// The reading the sensor serves at cursor `index` for `seed` —
    /// exposed so golden runs and oracles can recompute the stream.
    #[must_use]
    pub fn reading_at(seed: u64, index: u32) -> u16 {
        (splitmix64(seed ^ (u64::from(index) + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93)) & 0x3FFF)
            as u16
    }

    fn log(&mut self, op: I2cPhase, value: u8, ack: bool, at_us: u64) -> bool {
        self.wire.push(I2cWireOp {
            op,
            value,
            ack,
            at_us,
        });
        ack
    }

    /// START condition + address phase. NACKed if the address is wrong,
    /// the phase tore, or the device is still mid-transaction from
    /// before a reboot (the torn-wire failure this module exists to
    /// model).
    pub fn start(&mut self, addr: u8, torn: bool, at_us: u64) -> bool {
        if torn || addr != I2C_SENSOR_ADDR || self.state != I2cState::Idle {
            return self.log(I2cPhase::Start, addr, false, at_us);
        }
        self.state = I2cState::Started;
        self.log(I2cPhase::Start, addr, true, at_us)
    }

    /// One data byte written to the device (register select; the sensor
    /// accepts and ignores it mid-transaction).
    pub fn write(&mut self, byte: u8, torn: bool, at_us: u64) -> bool {
        let ok = !torn && self.state == I2cState::Started;
        self.log(I2cPhase::Write, byte, ok, at_us)
    }

    /// One data byte read from the current reading. Returns `None` (and
    /// logs a NACK) outside an open transaction, past the reading
    /// length, or when the phase tore.
    pub fn read(&mut self, torn: bool, at_us: u64) -> Option<u8> {
        let served = match self.state {
            I2cState::Started => 0,
            I2cState::Reading { served } => served,
            I2cState::Idle => {
                self.log(I2cPhase::Read, 0, false, at_us);
                return None;
            }
        };
        if torn || served >= I2C_READING_BYTES {
            self.log(I2cPhase::Read, 0, false, at_us);
            return None;
        }
        let value = Self::reading_at(self.seed, self.sample_counter);
        let byte = if served == 0 {
            (value >> 8) as u8
        } else {
            (value & 0xFF) as u8
        };
        self.state = I2cState::Reading { served: served + 1 };
        self.log(I2cPhase::Read, byte, true, at_us);
        Some(byte)
    }

    /// STOP condition. Completes the transaction — advancing the
    /// sensor's cursor and recording a [`ServedRead`] — only if the
    /// whole reading was clocked out and the STOP itself did not tear.
    /// Returns whether the transaction committed on the device.
    pub fn stop(&mut self, torn: bool, at_us: u64) -> bool {
        if torn {
            // The device never saw the STOP; it stays mid-transaction.
            return self.log(I2cPhase::Stop, 0, false, at_us);
        }
        let complete =
            matches!(self.state, I2cState::Reading { served } if served >= I2C_READING_BYTES);
        if complete {
            self.served.push(ServedRead {
                index: self.sample_counter,
                value: Self::reading_at(self.seed, self.sample_counter),
                at_us,
            });
            self.sample_counter += 1;
        }
        self.state = I2cState::Idle;
        self.log(I2cPhase::Stop, 0, complete, at_us)
    }

    /// Bus-clear (nine clock pulses): aborts any half-completed
    /// transaction without committing it. Always succeeds; the cursor
    /// does not advance, so a retried read serves the same reading.
    pub fn reset(&mut self, at_us: u64) -> bool {
        self.state = I2cState::Idle;
        self.log(I2cPhase::Reset, 0, true, at_us)
    }

    /// Whether the device is mid-transaction (a START now would NACK).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.state != I2cState::Idle
    }

    /// The bus-phase wire log (device-side ground truth).
    #[must_use]
    pub fn wire(&self) -> &[I2cWireOp] {
        &self.wire
    }

    /// Readings served through completed transactions, in order.
    #[must_use]
    pub fn served(&self) -> &[ServedRead] {
        &self.served
    }

    /// The sensor's seed (for oracles recomputing the stream).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the sensor with a fresh one serving the `seed` stream,
    /// keeping the log allocations. Distinct from [`I2c::reset`], which
    /// is the *bus-clear operation* on the same device.
    pub fn recycle(&mut self, seed: u64) {
        self.state = I2cState::Idle;
        self.sample_counter = 0;
        self.seed = seed;
        self.wire.clear();
        self.served.clear();
    }
}

/// The machine's peripheral complement: one UART, one I2C sensor.
#[derive(Debug, Clone)]
pub struct PeripheralBus {
    /// The UART (telemetry out, request/response).
    pub uart: Uart,
    /// The I2C master + sensor.
    pub i2c: I2c,
}

impl PeripheralBus {
    /// Peripherals with device streams derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> PeripheralBus {
        PeripheralBus {
            uart: Uart::default(),
            i2c: I2c::new(splitmix64(seed ^ 0x1C2C_5EED_0000_0001)),
        }
    }

    /// Power failure: volatile MCU-side peripheral state (FIFOs) is
    /// lost; device-side state — wire logs, the sensor's transaction
    /// phase and cursor, pending responses — survives. This asymmetry
    /// *is* the torn-wire failure class.
    pub fn power_fail(&mut self) {
        self.uart.power_fail();
    }

    /// Swaps in factory-fresh peripherals with device streams derived
    /// from `seed`, reusing the wire-log allocations. Must match
    /// [`PeripheralBus::new`] observably — the machine-reset
    /// differential test covers it.
    pub fn recycle(&mut self, seed: u64) {
        self.uart.recycle();
        self.i2c.recycle(splitmix64(seed ^ 0x1C2C_5EED_0000_0001));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_device_state_survives_power_fail_but_fifo_does_not() {
        let mut u = Uart::default();
        u.tx(0x41, false, 10);
        u.tx(0x42, true, 20); // torn: no response generated
        assert_eq!(u.wire().len(), 2);
        assert!(u.wire()[1].torn);
        assert_eq!(u.responses().len(), 1);
        assert!(u.rx_pending());
        // Pull the response into the MCU FIFO, then lose power.
        assert_eq!(u.rx(), i32::from(Uart::respond(0x41)));
        u.tx(0x43, false, 30);
        assert_eq!(u.rx(), i32::from(Uart::respond(0x43)));
        u.power_fail();
        // Wire log persisted; FIFO and consumed responses are gone.
        assert_eq!(u.wire().len(), 3);
        assert_eq!(u.rx(), -1);
    }

    #[test]
    fn i2c_read_transaction_advances_only_on_completed_stop() {
        let mut d = I2c::new(99);
        assert!(d.start(I2C_SENSOR_ADDR, false, 0));
        let hi = d.read(false, 1).unwrap();
        let lo = d.read(false, 2).unwrap();
        assert!(d.stop(false, 3));
        let r0 = I2c::reading_at(99, 0);
        assert_eq!((u16::from(hi) << 8) | u16::from(lo), r0);
        assert_eq!(d.served().len(), 1);
        assert_eq!(d.served()[0].index, 0);

        // Half-completed transaction: cursor must not advance.
        assert!(d.start(I2C_SENSOR_ADDR, false, 4));
        let hi2 = d.read(false, 5).unwrap();
        assert_eq!(u16::from(hi2), I2c::reading_at(99, 1) >> 8);
        // Power dies here: the device stays mid-transaction.
        assert!(d.is_busy());
        assert!(!d.start(I2C_SENSOR_ADDR, false, 6), "START must NACK");
        assert!(d.reset(7));
        assert!(d.start(I2C_SENSOR_ADDR, false, 8));
        let hi3 = d.read(false, 9).unwrap();
        // Same reading served again: nothing was committed.
        assert_eq!(hi3, hi2);
        let _ = d.read(false, 10).unwrap();
        assert!(d.stop(false, 11));
        assert_eq!(d.served().len(), 2);
        assert_eq!(d.served()[1].index, 1);
    }

    #[test]
    fn torn_stop_does_not_commit() {
        let mut d = I2c::new(7);
        assert!(d.start(I2C_SENSOR_ADDR, false, 0));
        let _ = d.read(false, 1).unwrap();
        let _ = d.read(false, 2).unwrap();
        assert!(!d.stop(true, 3));
        assert!(d.is_busy());
        assert!(d.served().is_empty());
    }

    #[test]
    fn wrong_address_nacks() {
        let mut d = I2c::new(7);
        assert!(!d.start(0x13, false, 0));
        assert!(!d.is_busy());
    }

    #[test]
    fn reading_stream_is_deterministic_and_14_bit() {
        for i in 0..64 {
            let a = I2c::reading_at(42, i);
            let b = I2c::reading_at(42, i);
            assert_eq!(a, b);
            assert!(a < 0x4000);
        }
        assert_ne!(I2c::reading_at(42, 0), I2c::reading_at(43, 0));
    }
}
