//! Addresses and address regions of the simulated MCU.

use std::fmt;

/// A byte address in the simulated MCU address space.
///
/// Addresses are 32-bit for implementation convenience; the modeled device
/// only populates a few tens of kilobytes of the space (see
/// [`MemoryLayout`](crate::MemoryLayout)).
///
/// ```
/// use tics_mcu::Addr;
/// let a = Addr(0x4000);
/// assert_eq!(a.offset(8), Addr(0x4008));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address `bytes` past `self`.
    #[must_use]
    pub fn offset(self, bytes: u32) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Returns the raw numeric address.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

/// A half-open address range `[start, end)`.
///
/// ```
/// use tics_mcu::{Addr, Region};
/// let r = Region::new(Addr(0x1000), Addr(0x1800));
/// assert_eq!(r.len(), 0x800);
/// assert!(r.contains(Addr(0x1000)));
/// assert!(!r.contains(Addr(0x1800)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First address inside the region.
    pub start: Addr,
    /// First address past the end of the region.
    pub end: Addr,
}

impl Region {
    /// Creates a region from `start` (inclusive) to `end` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: Addr, end: Addr) -> Region {
        assert!(end >= start, "region end {end} before start {start}");
        Region { start, end }
    }

    /// Creates a region from a start address and a byte length.
    #[must_use]
    pub fn with_len(start: Addr, len: u32) -> Region {
        Region::new(start, start.offset(len))
    }

    /// Length of the region in bytes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end.0 - self.start.0
    }

    /// Whether the region contains no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether an access of `len` bytes starting at `addr` is entirely
    /// inside the region.
    #[must_use]
    pub fn contains_range(&self, addr: Addr, len: u32) -> bool {
        addr >= self.start && addr.0.checked_add(len).is_some_and(|e| e <= self.end.0)
    }

    /// Whether `other` overlaps this region by at least one byte.
    #[must_use]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_display() {
        let a = Addr(0x4000);
        assert_eq!(a.offset(0x10).raw(), 0x4010);
        assert_eq!(format!("{a}"), "0x4000");
    }

    #[test]
    fn region_contains_bounds() {
        let r = Region::new(Addr(10), Addr(20));
        assert!(r.contains(Addr(10)));
        assert!(r.contains(Addr(19)));
        assert!(!r.contains(Addr(20)));
        assert!(!r.contains(Addr(9)));
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
    }

    #[test]
    fn region_contains_range() {
        let r = Region::new(Addr(10), Addr(20));
        assert!(r.contains_range(Addr(10), 10));
        assert!(r.contains_range(Addr(16), 4));
        assert!(!r.contains_range(Addr(16), 5));
        assert!(!r.contains_range(Addr(9), 2));
    }

    #[test]
    fn region_overlap() {
        let a = Region::new(Addr(0), Addr(10));
        let b = Region::new(Addr(9), Addr(12));
        let c = Region::new(Addr(10), Addr(12));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn empty_region() {
        let r = Region::new(Addr(5), Addr(5));
        assert!(r.is_empty());
        assert!(!r.contains(Addr(5)));
    }

    #[test]
    #[should_panic(expected = "region end")]
    fn inverted_region_panics() {
        let _ = Region::new(Addr(10), Addr(5));
    }
}
