//! Criterion benches of the TICS runtime primitives (the Table 4
//! operations) — host-time throughput of the simulator executing each
//! operation, complementing the simulated-cycle figures of
//! `exp_table4`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tics_core::{TicsConfig, TicsRuntime};
use tics_energy::{ContinuousPower, PeriodicTrace};
use tics_minic::{compile, opt::OptLevel, passes};
use tics_vm::{Executor, Machine, MachineConfig};

fn tics_machine(src: &str) -> (Machine, TicsRuntime) {
    let mut prog = compile(src, OptLevel::O2).expect("compiles");
    passes::instrument_tics(&mut prog).expect("instruments");
    let m = Machine::new(prog, MachineConfig::default()).expect("loads");
    let rt = TicsRuntime::new(TicsConfig::s2());
    (m, rt)
}

fn bench_checkpoint(c: &mut Criterion) {
    c.bench_function("tics_checkpoint_commit_x64", |b| {
        let src = "int main() { for (int i = 0; i < 64; i++) { checkpoint(); } return 0; }";
        b.iter(|| {
            let (mut m, mut rt) = tics_machine(src);
            let out = Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .expect("runs");
            black_box(out);
            assert!(m.stats().checkpoints >= 64);
        });
    });
}

fn bench_undo_log(c: &mut Criterion) {
    c.bench_function("tics_logged_stores_x128", |b| {
        let src = "int g;
                   int main() { int *p = &g; for (int i = 0; i < 128; i++) { *p = i; } return g; }";
        b.iter(|| {
            let (mut m, mut rt) = tics_machine(src);
            let out = Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .expect("runs");
            black_box(out);
        });
    });
}

fn bench_stack_segmentation(c: &mut Criterion) {
    c.bench_function("tics_stack_grow_shrink_x64", |b| {
        let src = "int leaf(int x) { int pad[56]; pad[0] = x; return pad[0]; }
                   int main() { int s = 0; for (int i = 0; i < 64; i++) { s += leaf(i); } return s; }";
        b.iter(|| {
            let (mut m, mut rt) = tics_machine(src);
            let out = Executor::new()
                .run(&mut m, &mut rt, &mut ContinuousPower::new())
                .expect("runs");
            black_box(out);
            assert!(m.stats().stack_grows >= 64);
        });
    });
}

fn bench_restore_cycle(c: &mut Criterion) {
    c.bench_function("tics_power_cycle_restore_x32", |b| {
        let src = "int g;
                   int main() { for (int i = 0; i < 100000; i++) { g = g + 1; } return g; }";
        b.iter(|| {
            let (mut m, rt) = tics_machine(src);
            let rt_cfg = TicsConfig::s2().with_timer(Some(2_000));
            let mut rt2 = TicsRuntime::new(rt_cfg);
            let _ = rt;
            let out = Executor::new()
                .with_time_budget(400_000)
                .run(&mut m, &mut rt2, &mut PeriodicTrace::new(10_000, 500))
                .expect("runs");
            black_box(out);
        });
    });
}

criterion_group!(
    name = ops;
    config = Criterion::default().sample_size(20);
    targets = bench_checkpoint, bench_undo_log, bench_stack_segmentation, bench_restore_cycle
);
criterion_main!(ops);
