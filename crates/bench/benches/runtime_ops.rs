//! Host-time benches of the TICS runtime primitives (the Table 4
//! operations) — throughput of the simulator executing each operation,
//! complementing the simulated-cycle figures of `exp_table4`. A plain
//! `std::time::Instant` harness (harness = false) replaces the
//! benchmarking crate so the workspace builds offline.

use std::hint::black_box;
use std::time::Instant;
use tics_core::{TicsConfig, TicsRuntime};
use tics_energy::{ContinuousPower, PeriodicTrace};
use tics_minic::{compile, opt::OptLevel, passes};
use tics_vm::{Executor, Machine, MachineConfig};

const SAMPLES: u32 = 20;

fn tics_machine(src: &str) -> (Machine, TicsRuntime) {
    let mut prog = compile(src, OptLevel::O2).expect("compiles");
    passes::instrument_tics(&mut prog).expect("instruments");
    let m = Machine::new(prog, MachineConfig::default()).expect("loads");
    let rt = TicsRuntime::new(TicsConfig::s2());
    (m, rt)
}

/// Times `f` over SAMPLES runs; reports best / mean in µs.
fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warm-up (compile caches, allocator)
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        best = best.min(dt);
        total += dt;
    }
    println!(
        "{name:<32} best {best:>10.1} us   mean {:>10.1} us   ({SAMPLES} samples)",
        total / f64::from(SAMPLES)
    );
}

fn bench_checkpoint() {
    let src = "int main() { for (int i = 0; i < 64; i++) { checkpoint(); } return 0; }";
    bench("tics_checkpoint_commit_x64", || {
        let (mut m, mut rt) = tics_machine(src);
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .expect("runs");
        black_box(out);
        assert!(m.stats().checkpoints >= 64);
    });
}

fn bench_undo_log() {
    let src = "int g;
               int main() { int *p = &g; for (int i = 0; i < 128; i++) { *p = i; } return g; }";
    bench("tics_logged_stores_x128", || {
        let (mut m, mut rt) = tics_machine(src);
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .expect("runs");
        black_box(out);
    });
}

fn bench_stack_segmentation() {
    let src = "int leaf(int x) { int pad[56]; pad[0] = x; return pad[0]; }
               int main() { int s = 0; for (int i = 0; i < 64; i++) { s += leaf(i); } return s; }";
    bench("tics_stack_grow_shrink_x64", || {
        let (mut m, mut rt) = tics_machine(src);
        let out = Executor::new()
            .run(&mut m, &mut rt, &mut ContinuousPower::new())
            .expect("runs");
        black_box(out);
        assert!(m.stats().stack_grows >= 64);
    });
}

fn bench_restore_cycle() {
    let src = "int g;
               int main() { for (int i = 0; i < 100000; i++) { g = g + 1; } return g; }";
    bench("tics_power_cycle_restore_x32", || {
        let (mut m, _rt) = tics_machine(src);
        let mut rt = TicsRuntime::new(TicsConfig::s2().with_timer(Some(2_000)));
        let out = Executor::new()
            .with_time_budget(400_000)
            .run(&mut m, &mut rt, &mut PeriodicTrace::new(10_000, 500))
            .expect("runs");
        black_box(out);
    });
}

fn main() {
    println!("runtime_ops: host-time cost of TICS runtime primitives\n");
    bench_checkpoint();
    bench_undo_log();
    bench_stack_segmentation();
    bench_restore_cycle();
}
