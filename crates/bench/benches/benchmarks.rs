//! Host-time benches of the full paper benchmarks (AR, BC, CF) under
//! each feasible runtime — the host-time counterpart of Figure 9. A
//! plain `std::time::Instant` harness (harness = false) replaces the
//! benchmarking crate so the workspace builds offline.

use std::hint::black_box;
use std::time::Instant;
use tics_apps::workload::ar_trace;
use tics_apps::{ar, build_app, App, SystemUnderTest};
use tics_energy::ContinuousPower;
use tics_minic::opt::OptLevel;
use tics_vm::{Executor, Machine, MachineConfig};

const SCALE: u32 = 12;
const SAMPLES: u32 = 10;

fn run_once(app: App, system: SystemUnderTest) {
    let Ok(prog) = build_app(app, system, OptLevel::O2, tics_apps::build::Scale(SCALE)) else {
        return; // infeasible combination (the Figure 9 crosses)
    };
    let sensor_trace = match app {
        App::Ar => ar_trace(SCALE * 2, ar::WINDOW, 3, 7).0,
        _ => Vec::new(),
    };
    let mut m = Machine::new(
        prog.clone(),
        MachineConfig {
            sensor_trace: sensor_trace.into(),
            ..MachineConfig::default()
        },
    )
    .expect("loads");
    let mut rt = tics_apps::build::make_runtime(system, &prog);
    let out = Executor::new()
        .with_time_budget(60_000_000_000)
        .run(&mut m, rt.as_mut(), &mut ContinuousPower::new())
        .expect("runs");
    black_box(out);
}

fn main() {
    println!("benchmarks: host-time of the Figure 9 app x system grid\n");
    for app in [App::Ar, App::Bc, App::Cuckoo] {
        for system in [
            SystemUnderTest::PlainC,
            SystemUnderTest::Tics,
            SystemUnderTest::Mementos,
            SystemUnderTest::Alpaca,
            SystemUnderTest::Ink,
        ] {
            // Skip infeasible pairs up-front so the listing stays clean.
            if build_app(app, system, OptLevel::O2, tics_apps::build::Scale(SCALE)).is_err() {
                continue;
            }
            run_once(app, system); // warm-up
            let mut best = f64::INFINITY;
            let mut total = 0.0;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                run_once(app, system);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                best = best.min(dt);
                total += dt;
            }
            println!(
                "{:<8} {:<12} best {best:>8.2} ms   mean {:>8.2} ms",
                app.name(),
                system.name(),
                total / f64::from(SAMPLES)
            );
        }
    }
}
