//! Criterion benches of the full paper benchmarks (AR, BC, CF) under
//! each feasible runtime — the host-time counterpart of Figure 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tics_apps::workload::ar_trace;
use tics_apps::{ar, build_app, App, SystemUnderTest};
use tics_energy::ContinuousPower;
use tics_minic::opt::OptLevel;
use tics_vm::{Executor, Machine, MachineConfig};

const SCALE: u32 = 12;

fn run_once(app: App, system: SystemUnderTest) {
    let Ok(prog) = build_app(app, system, OptLevel::O2, tics_apps::build::Scale(SCALE)) else {
        return; // infeasible combination (the Figure 9 crosses)
    };
    let sensor_trace = match app {
        App::Ar => ar_trace(SCALE * 2, ar::WINDOW, 3, 7).0,
        _ => Vec::new(),
    };
    let mut m = Machine::new(
        prog.clone(),
        MachineConfig {
            sensor_trace,
            ..MachineConfig::default()
        },
    )
    .expect("loads");
    let mut rt = tics_apps::build::make_runtime(system, &prog);
    let out = Executor::new()
        .with_time_budget(60_000_000_000)
        .run(&mut m, rt.as_mut(), &mut ContinuousPower::new())
        .expect("runs");
    black_box(out);
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    for app in [App::Ar, App::Bc, App::Cuckoo] {
        for system in [
            SystemUnderTest::PlainC,
            SystemUnderTest::Tics,
            SystemUnderTest::Mementos,
            SystemUnderTest::Alpaca,
            SystemUnderTest::Ink,
        ] {
            // Skip infeasible pairs up-front so groups stay clean.
            if build_app(app, system, OptLevel::O2, tics_apps::build::Scale(SCALE)).is_err() {
                continue;
            }
            group.bench_function(BenchmarkId::new(app.name(), system.name()), |b| {
                b.iter(|| run_once(app, system))
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = apps;
    config = Criterion::default().sample_size(10);
    targets = bench_apps
);
criterion_main!(apps);
