//! Adversarial power-failure fault injection with a crash-consistency
//! oracle.
//!
//! The trace-driven experiments only ever cut power on a fixed cadence,
//! so a runtime's recovery protocol is exercised at a handful of
//! accidental alignments. This module instead drives each run from a
//! [`FaultPlan`] — power dies at *chosen* absolute cycles — and judges
//! the survivors against a golden run on continuous power:
//!
//! 1. **Golden run** — the program runs to completion without failures;
//!    its externally visible events (`send`/`mark`, the simulation's
//!    logic-analyzer trace) and exit code are recorded.
//! 2. **Faulted replay** — the same image reruns under an
//!    [`AdversarialSupply`]. The machine arms a torn-write boundary at
//!    each period deadline, so multi-word stores straddling a cut
//!    commit only a prefix.
//! 3. **Oracle** — the replay's event stream, segmented at each power
//!    failure, must be *idempotent-prefix-equivalent* to the golden
//!    trace: every post-reboot segment must replay from some position
//!    at or before the high-water mark of golden progress. Duplicated
//!    suffixes (re-execution from a checkpoint) are legal; events that
//!    match no golden prefix are a memory-consistency violation.
//! 4. **Shrinking** — a violating multi-cut plan is greedily reduced to
//!    a minimal cut set that still violates, so the journal carries a
//!    directly replayable counterexample.
//!
//! Live-lock (no new checkpoint and no new visible event across many
//! consecutive reboots, e.g. a checkpoint that cannot fit in the
//! on-period) is reported as a *diagnosis*, distinct from a memory
//! violation — the run never lies about state, it just never advances.

use tics_apps::build::make_runtime;
use tics_apps::SystemUnderTest;
use tics_baselines::TaskFlavor;
use tics_energy::{AdversarialSupply, ContinuousPower, Corruption, FaultPlan, Tail};
use tics_mcu::CorruptionModel;
use tics_minic::opt::OptLevel;
use tics_minic::{compile, passes, Program};
use tics_trace::{TraceEvent, TraceRecord};
use tics_vm::{Executor, Machine, MachineConfig, RunOutcome, VmError};

use crate::sweep::splitmix64;

/// Outage injected after each planned cut (µs). Strictly positive so
/// post-reboot events can never share a timestamp with the failure.
pub const OFF_US: u64 = 150;

/// Reboots without progress before the executor's guard calls it a
/// live-lock.
pub const GUARD_BOOTS: u64 = 48;

// ---------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------

/// A deliberately small, fully deterministic program corpus for fault
/// injection. None of these touch `sample()`/`rand16()`/time syscalls:
/// host-side sensor and RNG positions are not rolled back by a
/// checkpoint restore, so any nondeterminism would blame the runtime
/// for divergence it did not cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultProgram {
    /// `nv` scalars and a small `nv` histogram with WAR-heavy updates.
    NvAccumulator,
    /// A Lehmer generator streaming values over `send` — one corrupted
    /// state word derails every later event.
    LcgStream,
    /// Windowed min/max over a synthetic series (greenhouse-monitor
    /// shape), mixing `mark` and `send` events.
    GhmMini,
    /// Pointer-walk writes through a volatile buffer guarded by an `nv`
    /// commit counter (exercises pointer-conservative instrumentation).
    PtrJournal,
    /// Recursive checksum accumulated into `nv` state.
    RecChecksum,
    /// Sample → transform → emit pipeline; also available as a
    /// hand-ported task graph for the task kernels.
    TaskPipeline,
    /// 12 KB of `nv` state mutated in long silent loops: whole-state
    /// checkpointers cannot commit inside a short on-period, which is
    /// what the live-lock probe demonstrates.
    BigState,
}

const NV_ACCUMULATOR_SRC: &str = "
nv int acc;
nv int steps;
nv int hist[8];
int main() {
    for (int i = 0; i < 40; i++) {
        acc = acc + i;
        hist[i % 8] = hist[i % 8] + acc;
        steps = steps + 1;
        if (i % 8 == 7) { send(acc); send(hist[7]); }
    }
    send(acc);
    send(steps);
    return acc;
}
";

const NV_ACCUMULATOR_TASK_SRC: &str = "
nv int cur_task;
nv int i;
nv int acc;
nv int steps;
nv int hist[8];
int task_step() {
    acc = acc + i;
    hist[i % 8] = hist[i % 8] + acc;
    steps = steps + 1;
    i = i + 1;
    if (i % 8 == 0) { return 1; }
    return 0;
}
int task_emit() {
    send(acc);
    send(hist[7]);
    return 0;
}
int main() {
    while (i < 40) {
        if (cur_task == 0) { cur_task = task_step(); }
        else { cur_task = task_emit(); }
    }
    send(acc);
    send(steps);
    return acc;
}
";

const NV_ACCUMULATOR_TASKS: &[&str] = &["task_step", "task_emit"];

const LCG_STREAM_SRC: &str = "
nv int lcg;
nv int emitted;
int main() {
    lcg = 1;
    for (int i = 0; i < 60; i++) {
        lcg = (lcg * 75 + 74) % 65537;
        if (i % 6 == 5) { send(lcg); emitted = emitted + 1; }
    }
    send(emitted);
    return lcg % 32768;
}
";

const LCG_STREAM_TASK_SRC: &str = "
nv int cur_task;
nv int i;
nv int lcg;
nv int emitted;
int task_seed() {
    lcg = 1;
    return 1;
}
int task_step() {
    lcg = (lcg * 75 + 74) % 65537;
    i = i + 1;
    if (i % 6 == 0) { return 2; }
    return 1;
}
int task_emit() {
    send(lcg);
    emitted = emitted + 1;
    return 1;
}
int main() {
    while (i < 60) {
        if (cur_task == 0) { cur_task = task_seed(); }
        else {
            if (cur_task == 1) { cur_task = task_step(); }
            else { cur_task = task_emit(); }
        }
    }
    send(emitted);
    return lcg % 32768;
}
";

const LCG_STREAM_TASKS: &[&str] = &["task_seed", "task_step", "task_emit"];

const GHM_MINI_SRC: &str = "
nv int mn;
nv int mx;
nv int w;
int main() {
    int x = 7;
    mn = 9999;
    mx = 0 - 9999;
    for (int i = 0; i < 48; i++) {
        x = (x * 31 + 17) % 101;
        if (x < mn) { mn = x; }
        if (x > mx) { mx = x; }
        w = w + 1;
        if (i % 12 == 11) {
            send(mn);
            send(mx);
            mark(1);
            mn = 9999;
            mx = 0 - 9999;
        }
    }
    send(w);
    return w;
}
";

const PTR_JOURNAL_SRC: &str = "
int buf[16];
nv int commits;
int main() {
    int *p = buf;
    for (int r = 0; r < 6; r++) {
        for (int i = 0; i < 16; i++) { *(p + i) = r * 16 + i + commits; }
        int s = 0;
        for (int i = 0; i < 16; i++) { s = s + *(p + i); }
        commits = commits + 1;
        send(s);
    }
    send(commits);
    return commits;
}
";

const REC_CHECKSUM_SRC: &str = "
nv int total;
int rec(int n) {
    if (n == 0) { return 0; }
    return n + rec(n - 1);
}
int main() {
    for (int r = 1; r < 9; r++) {
        total = total + rec(r + 4);
        send(total);
    }
    return total;
}
";

const TASK_PIPELINE_SRC: &str = "
nv int raw;
nv int cooked;
nv int emitted;
int main() {
    for (int u = 0; u < 12; u++) {
        raw = u * 7 + 3;
        cooked = cooked + raw * raw % 97;
        send(cooked);
        emitted = emitted + 1;
    }
    send(emitted);
    return cooked;
}
";

const TASK_PIPELINE_TASK_SRC: &str = "
nv int cur_task;
nv int u;
nv int raw;
nv int cooked;
nv int emitted;
int task_sample() {
    raw = u * 7 + 3;
    return 1;
}
int task_cook() {
    cooked = cooked + raw * raw % 97;
    return 2;
}
int task_emit() {
    send(cooked);
    emitted = emitted + 1;
    u = u + 1;
    return 0;
}
int main() {
    while (u < 12) {
        if (cur_task == 0) { cur_task = task_sample(); }
        else {
            if (cur_task == 1) { cur_task = task_cook(); }
            else { cur_task = task_emit(); }
        }
    }
    send(emitted);
    return cooked;
}
";

const TASK_PIPELINE_TASKS: &[&str] = &["task_sample", "task_cook", "task_emit"];

const BIG_STATE_SRC: &str = "
nv int blob[3000];
nv int done;
int main() {
    for (int r = 0; r < 3; r++) {
        for (int i = 0; i < 3000; i++) { blob[i] = blob[i] + i + r; }
        mark(1);
    }
    done = blob[0] + blob[2999];
    send(done);
    return done % 32768;
}
";

impl FaultProgram {
    /// The whole corpus, grid order.
    pub const ALL: [FaultProgram; 7] = [
        FaultProgram::NvAccumulator,
        FaultProgram::LcgStream,
        FaultProgram::GhmMini,
        FaultProgram::PtrJournal,
        FaultProgram::RecChecksum,
        FaultProgram::TaskPipeline,
        FaultProgram::BigState,
    ];

    /// Journal label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultProgram::NvAccumulator => "nv-accumulator",
            FaultProgram::LcgStream => "lcg-stream",
            FaultProgram::GhmMini => "ghm-mini",
            FaultProgram::PtrJournal => "ptr-journal",
            FaultProgram::RecChecksum => "rec-checksum",
            FaultProgram::TaskPipeline => "task-pipeline",
            FaultProgram::BigState => "big-state",
        }
    }

    /// Parses a journal label back into a program.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultProgram> {
        FaultProgram::ALL.into_iter().find(|p| p.name() == name)
    }

    fn legacy_src(self) -> &'static str {
        match self {
            FaultProgram::NvAccumulator => NV_ACCUMULATOR_SRC,
            FaultProgram::LcgStream => LCG_STREAM_SRC,
            FaultProgram::GhmMini => GHM_MINI_SRC,
            FaultProgram::PtrJournal => PTR_JOURNAL_SRC,
            FaultProgram::RecChecksum => REC_CHECKSUM_SRC,
            FaultProgram::TaskPipeline => TASK_PIPELINE_SRC,
            FaultProgram::BigState => BIG_STATE_SRC,
        }
    }

    fn task_src(self) -> Option<(&'static str, &'static [&'static str])> {
        match self {
            FaultProgram::NvAccumulator => {
                Some((NV_ACCUMULATOR_TASK_SRC, NV_ACCUMULATOR_TASKS))
            }
            FaultProgram::LcgStream => Some((LCG_STREAM_TASK_SRC, LCG_STREAM_TASKS)),
            FaultProgram::TaskPipeline => Some((TASK_PIPELINE_TASK_SRC, TASK_PIPELINE_TASKS)),
            _ => None,
        }
    }
}

/// Builds (compiles + instruments) a corpus program for `system`,
/// mirroring the per-system rules of [`tics_apps::build::build_app`]:
/// task kernels get the hand-ported task graph (loop-free task bodies,
/// so MayFly accepts them too), Chinchilla compiles at `-O0` and
/// rejects recursion, everything else runs the legacy source.
///
/// # Errors
///
/// Returns a human-readable reason for the infeasible cells (no task
/// port, recursion on Chinchilla) and for compile failures.
pub fn build_fault_program(
    program: FaultProgram,
    system: SystemUnderTest,
) -> Result<Program, String> {
    if system.is_task_based() {
        let Some((src, tasks)) = program.task_src() else {
            return Err(format!(
                "{} has no task-graph port (pointer or recursion shape)",
                program.name()
            ));
        };
        let flavor = match system {
            SystemUnderTest::Alpaca => TaskFlavor::Alpaca,
            SystemUnderTest::Ink => TaskFlavor::Ink,
            _ => TaskFlavor::Mayfly,
        };
        let mut prog = compile(src, OptLevel::O1).map_err(|e| e.to_string())?;
        passes::instrument_task_based(
            &mut prog,
            tasks,
            flavor.runtime_text_bytes(),
            flavor.runtime_data_bytes(),
        )
        .map_err(|e| e.to_string())?;
        return Ok(prog);
    }
    let opt = if system == SystemUnderTest::Chinchilla {
        OptLevel::O0
    } else {
        OptLevel::O1
    };
    let mut prog = compile(program.legacy_src(), opt).map_err(|e| e.to_string())?;
    match system {
        SystemUnderTest::PlainC => {}
        SystemUnderTest::Tics => passes::instrument_tics(&mut prog).map_err(|e| e.to_string())?,
        SystemUnderTest::Mementos => {
            passes::instrument_mementos(&mut prog).map_err(|e| e.to_string())?;
        }
        SystemUnderTest::Chinchilla => {
            if prog.has_recursion {
                return Err("recursion cannot run on Chinchilla (locals are promoted)".into());
            }
            passes::instrument_chinchilla(&mut prog).map_err(|e| e.to_string())?;
        }
        SystemUnderTest::Ratchet => {
            passes::instrument_ratchet(&mut prog).map_err(|e| e.to_string())?;
        }
        _ => unreachable!("task systems handled above"),
    }
    Ok(prog)
}

// ---------------------------------------------------------------------
// Event traces and the golden run
// ---------------------------------------------------------------------

/// One externally visible event. The oracle compares event *values*,
/// never timestamps — a faulted run is slower than the golden run by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// `mark(id)` completion.
    Mark(i32),
    /// `send(value)` transmission.
    Send(i32),
    /// Sensor sample taken.
    Sample(i32),
    /// `print(value)` output.
    Print(i32),
    /// `led(x)` toggle.
    Led(i32),
    /// `uart_tx(byte)` — the byte left the pin (`torn` marks a byte the
    /// power deadline cut mid-symbol; it is still wire-visible garbage).
    UartTx {
        /// The byte driven onto the TX line.
        byte: u8,
        /// Whether the power deadline tore the byte mid-symbol.
        torn: bool,
    },
    /// An I2C bus phase (`start`/`write`/`read`/`stop`/`reset`) with its
    /// payload byte and the device's ACK.
    I2c {
        /// The bus phase.
        op: tics_trace::I2cPhase,
        /// Address or data byte carried by the phase.
        value: u8,
        /// Whether the device acknowledged.
        ack: bool,
    },
}

impl Event {
    /// The oracle-comparable form of an externally visible trace event
    /// ([`TraceEvent::is_externally_visible`] — the same fold the
    /// executor's forward-progress guard counts through, so the two can
    /// never disagree about what "visible" means). `None` for everything
    /// the outside world cannot see.
    #[must_use]
    pub fn from_trace(ev: &TraceEvent) -> Option<Event> {
        match *ev {
            TraceEvent::Mark { id } => Some(Event::Mark(id)),
            TraceEvent::Send { value } => Some(Event::Send(value)),
            TraceEvent::Sample { value } => Some(Event::Sample(value)),
            TraceEvent::Print { value } => Some(Event::Print(value)),
            TraceEvent::Led { value } => Some(Event::Led(value)),
            TraceEvent::UartTx { byte, torn } => Some(Event::UartTx { byte, torn }),
            TraceEvent::I2cOp { op, value, ack } => Some(Event::I2c { op, value, ack }),
            _ => None,
        }
    }
}

/// The run's visible events in emission order, with true wall-clock
/// timestamps (µs), folded out of the structured trace.
#[must_use]
pub fn event_timeline(records: &[TraceRecord]) -> Vec<(u64, Event)> {
    let mut v: Vec<(u64, Event)> = records
        .iter()
        .filter_map(|r| Event::from_trace(&r.event).map(|e| (r.at_us, e)))
        .collect();
    debug_assert_eq!(
        v.len() as u64,
        tics_trace::visible_event_count(records),
        "oracle event fold and visibility fold must agree"
    );
    // Events are at least one cycle apart in practice; the secondary key
    // keeps the merge deterministic regardless.
    v.sort_by_key(|&(t, e)| (t, e));
    v
}

/// The event stream split at each power failure: segment `k` holds the
/// events emitted between reboot `k` and failure `k` (the final segment
/// runs to the end). An event stamped exactly at a failure time
/// completed on the dying edge and belongs *before* the cut; post-reboot
/// events are at least `off_us` later.
#[must_use]
pub fn segmented_events(records: &[TraceRecord]) -> Vec<Vec<Event>> {
    let failure_times: Vec<u64> = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::PowerFailure { .. }))
        .map(|r| r.at_us)
        .collect();
    let timeline = event_timeline(records);
    let mut segments = Vec::with_capacity(failure_times.len() + 1);
    let mut it = timeline.into_iter().peekable();
    for &f in &failure_times {
        let mut seg = Vec::new();
        while let Some(&(t, e)) = it.peek() {
            if t > f {
                break;
            }
            seg.push(e);
            it.next();
        }
        segments.push(seg);
    }
    segments.push(it.map(|(_, e)| e).collect());
    segments
}

/// The reference trace: what the program does when power never fails.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Visible events in order.
    pub events: Vec<Event>,
    /// Exit code of the completed run.
    pub exit_code: i32,
    /// On-time cycles the golden run took — the fault-plan span.
    pub on_cycles: u64,
}

/// Runs `prog` under `system` on continuous power and records the
/// golden trace.
///
/// # Errors
///
/// A golden run that does not finish is a corpus or runtime bug, not a
/// fault-injection result — it is reported as a string error.
pub fn golden_run(prog: &Program, system: SystemUnderTest) -> Result<Golden, String> {
    let mut m = Machine::new(prog.clone(), MachineConfig::default())
        .map_err(|e| format!("golden load failed: {e}"))?;
    let mut rt = make_runtime(system, prog);
    let out = Executor::new()
        .with_time_budget(30_000_000_000)
        .run(&mut m, rt.as_mut(), &mut ContinuousPower::new());
    match out {
        Ok(RunOutcome::Finished(code)) => Ok(Golden {
            events: event_timeline(m.trace().records())
                .into_iter()
                .map(|(_, e)| e)
                .collect(),
            exit_code: code,
            on_cycles: m.cycles(),
        }),
        Ok(other) => Err(format!("golden run did not finish: {other:?}")),
        Err(e) => Err(format!("golden run trapped: {e}")),
    }
}

// ---------------------------------------------------------------------
// Faulted trials and the oracle
// ---------------------------------------------------------------------

/// One faulted replay: outcome plus everything the oracle needs.
#[derive(Debug)]
pub struct Trial {
    /// How the executor finished (or the error it surfaced).
    pub outcome: Result<RunOutcome, VmError>,
    /// The run's recorded trace (timeline events; the oracle's input).
    pub trace: Vec<TraceRecord>,
    /// Power failures injected during the run.
    pub power_failures: u64,
    /// Stores truncated at a power cut (word-granularity torn writes).
    pub torn_writes: u64,
    /// Stores bit-flipped or dropped by the brown-out corruption model
    /// (zero unless the plan carries a [`Corruption`] spec).
    pub corrupted_writes: u64,
    /// Checkpoint-bank recoveries the runtime performed (CRC-detected
    /// corruption healed by falling back to the older bank or to a
    /// fresh start).
    pub recoveries: u64,
    /// On-time cycles consumed.
    pub cycles: u64,
}

/// On-time budget for a faulted replay of `golden`: generous enough
/// that any completing runtime completes, small enough that a wedged
/// replay terminates.
#[must_use]
pub fn fault_budget_us(golden: &Golden) -> u64 {
    golden.on_cycles.saturating_mul(64).saturating_add(10_000_000)
}

/// Replays `prog` under `system` with power dying per `plan`.
#[must_use]
pub fn run_plan(
    prog: &Program,
    system: SystemUnderTest,
    plan: &FaultPlan,
    budget_us: u64,
    guard_boots: u64,
) -> Trial {
    let mut m = match Machine::new(prog.clone(), MachineConfig::default()) {
        Ok(m) => m,
        Err(e) => {
            return Trial {
                outcome: Err(e),
                trace: Vec::new(),
                power_failures: 0,
                torn_writes: 0,
                corrupted_writes: 0,
                recoveries: 0,
                cycles: 0,
            }
        }
    };
    if let Some(c) = &plan.corruption {
        m.mem.set_corruption(Some(
            CorruptionModel::new(c.window, c.flip_prob, c.drop_prob, c.seed)
                .with_sram_decay(c.sram_decay),
        ));
    }
    let mut rt = make_runtime(system, prog);
    let mut supply = AdversarialSupply::new(plan.clone());
    // Executing from hardware-corrupted state can drive the VM somewhere
    // its own checks never anticipated (a restored register becomes a
    // wild pc). On silicon that is a fail-stop crash; here the panic is
    // contained and judged as a loud `Error` verdict rather than taking
    // the harness thread down.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Executor::new()
            .with_time_budget(budget_us)
            .with_progress_guard(guard_boots)
            .run(&mut m, rt.as_mut(), &mut supply)
    }))
    .unwrap_or_else(|payload| {
        let text = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(VmError::Trap(format!("vm crashed on corrupted state: {text}")))
    });
    Trial {
        outcome,
        trace: m.trace().records().to_vec(),
        power_failures: m.stats().power_failures,
        torn_writes: m.mem.stats().torn_writes,
        corrupted_writes: m.mem.stats().corrupted_writes,
        recoveries: m.stats().recoveries,
        cycles: m.cycles(),
    }
}

/// The oracle's judgment of one faulted replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every segment replayed a golden prefix and the run finished with
    /// the golden exit code.
    Consistent,
    /// A post-reboot segment matches no golden position at or before
    /// the progress high-water mark: state was corrupted.
    Divergent {
        /// Index of the offending segment (0 = before the first cut).
        segment: usize,
        /// Golden progress (events) proven before the mismatch.
        matched: usize,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// Events matched but the final exit code did not.
    WrongExit {
        /// Golden exit code.
        expected: i32,
        /// Replay exit code.
        got: i32,
    },
    /// Silent divergence in a trial where the brown-out model corrupted
    /// at least one store: the runtime consumed corrupted state without
    /// detecting it. The detect-or-die failure mode — a runtime is
    /// allowed to heal (fall back to a valid bank), restart fresh, or
    /// trap loudly, but never to keep computing on garbage.
    CorruptedState {
        /// Stores the brown-out model corrupted during the trial.
        corrupted_writes: u64,
        /// The underlying silent-divergence description.
        detail: String,
    },
    /// The replay never finished inside the (generous) budget.
    Incomplete {
        /// Executor outcome text.
        outcome: String,
    },
    /// No checkpoint and no visible event across many consecutive
    /// reboots — a liveness diagnosis, not a memory violation.
    Livelock {
        /// Reboots the guard observed without progress.
        boots: u64,
    },
    /// The replay trapped (a crash is a robustness failure too).
    Error {
        /// Trap description.
        detail: String,
    },
}

impl Verdict {
    /// Short journal label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Consistent => "consistent",
            Verdict::Divergent { .. } => "divergent",
            Verdict::WrongExit { .. } => "wrong-exit",
            Verdict::CorruptedState { .. } => "corrupted-state",
            Verdict::Incomplete { .. } => "incomplete",
            Verdict::Livelock { .. } => "livelock",
            Verdict::Error { .. } => "error",
        }
    }

    /// Whether this verdict counts against a memory-consistency claim.
    /// Live-lock is deliberately excluded (liveness, not consistency);
    /// `strict_completion` controls whether a non-finishing replay
    /// counts (it should for plans with a continuous tail, where
    /// nothing stops a healthy runtime from finishing).
    #[must_use]
    pub fn is_violation(&self, strict_completion: bool) -> bool {
        match self {
            Verdict::Divergent { .. }
            | Verdict::WrongExit { .. }
            | Verdict::CorruptedState { .. }
            | Verdict::Error { .. } => true,
            Verdict::Incomplete { .. } => strict_completion,
            Verdict::Consistent | Verdict::Livelock { .. } => false,
        }
    }
}

/// Largest `r ≤ high_water` with `golden[r .. r+seg.len()] == seg`.
/// Preferring the largest sound resume point can only overestimate
/// progress, never invent a match — so it cannot produce a false
/// violation for a correct runtime.
fn match_segment(golden: &[Event], high_water: usize, seg: &[Event]) -> Option<usize> {
    if seg.is_empty() {
        return Some(high_water);
    }
    for r in (0..=high_water).rev() {
        if r + seg.len() <= golden.len() && golden[r..r + seg.len()] == *seg {
            return Some(r);
        }
    }
    None
}

fn describe_mismatch(golden: &Golden, high_water: usize, seg: &[Event]) -> String {
    // Align at the high-water mark for the message — the position a
    // correct resume would replay from at the latest.
    let mut i = 0;
    while i < seg.len()
        && high_water + i < golden.events.len()
        && seg[i] == golden.events[high_water + i]
    {
        i += 1;
    }
    format!(
        "segment event {} is {:?} but golden[{}] is {:?}",
        i,
        seg.get(i),
        high_water + i,
        golden.events.get(high_water + i),
    )
}

/// Judges one faulted replay against the golden trace.
///
/// When the trial ran under a brown-out [`Corruption`] model and at
/// least one store was actually corrupted, silent divergence
/// (`Divergent` / `WrongExit`) is upgraded to
/// [`Verdict::CorruptedState`]: the runtime kept computing on state the
/// hardware damaged, without detecting it. Loud failures (traps) keep
/// their `Error` verdict — dying is an acceptable answer to corruption,
/// lying is not — and `run_chaos_cell` counts them as detections.
#[must_use]
pub fn judge(golden: &Golden, trial: &Trial) -> Verdict {
    match judge_events(golden, trial) {
        v @ (Verdict::Divergent { .. } | Verdict::WrongExit { .. })
            if trial.corrupted_writes > 0 =>
        {
            let detail = match &v {
                Verdict::Divergent { detail, .. } => detail.clone(),
                Verdict::WrongExit { expected, got } => {
                    format!("expected exit {expected}, got {got}")
                }
                _ => unreachable!("guard admits only divergent/wrong-exit"),
            };
            Verdict::CorruptedState {
                corrupted_writes: trial.corrupted_writes,
                detail,
            }
        }
        v => v,
    }
}

/// The corruption-blind core of [`judge`]: segment matching against the
/// golden trace plus the exit-code check.
fn judge_events(golden: &Golden, trial: &Trial) -> Verdict {
    match &trial.outcome {
        Err(VmError::NoForwardProgress { boots, .. }) => {
            return Verdict::Livelock { boots: *boots }
        }
        Err(e) => {
            return Verdict::Error {
                detail: e.to_string(),
            }
        }
        Ok(_) => {}
    }
    let segments = segmented_events(&trial.trace);
    let mut high_water = 0usize;
    for (index, seg) in segments.iter().enumerate() {
        match match_segment(&golden.events, high_water, seg) {
            Some(r) => high_water = high_water.max(r + seg.len()),
            None => {
                return Verdict::Divergent {
                    segment: index,
                    matched: high_water,
                    detail: describe_mismatch(golden, high_water, seg),
                }
            }
        }
    }
    match &trial.outcome {
        Ok(RunOutcome::Finished(code)) => {
            let code = *code;
            if high_water < golden.events.len() {
                return Verdict::Divergent {
                    segment: segments.len(),
                    matched: high_water,
                    detail: format!(
                        "finished having replayed only {high_water} of {} golden events",
                        golden.events.len()
                    ),
                };
            }
            if code == golden.exit_code {
                Verdict::Consistent
            } else {
                Verdict::WrongExit {
                    expected: golden.exit_code,
                    got: code,
                }
            }
        }
        Ok(RunOutcome::Starved { boots }) => Verdict::Livelock { boots: *boots },
        Ok(other) => Verdict::Incomplete {
            outcome: format!("{other:?}"),
        },
        Err(_) => unreachable!("executor errors are handled before segment matching"),
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily removes cuts from a violating plan while the violation
/// persists, yielding a minimal cut set (1-minimal: removing any single
/// remaining cut makes the violation disappear).
#[must_use]
pub fn shrink_plan(
    prog: &Program,
    system: SystemUnderTest,
    golden: &Golden,
    plan: &FaultPlan,
    budget_us: u64,
    guard_boots: u64,
    strict_completion: bool,
) -> FaultPlan {
    let mut current = plan.clone();
    let mut changed = true;
    while changed && current.cuts.len() > 1 {
        changed = false;
        for i in 0..current.cuts.len() {
            let candidate = current.without(i);
            let trial = run_plan(prog, system, &candidate, budget_us, guard_boots);
            if judge(golden, &trial).is_violation(strict_completion) {
                current = candidate;
                changed = true;
                break;
            }
        }
    }
    current
}

// ---------------------------------------------------------------------
// Cut-point strategies and the cell driver
// ---------------------------------------------------------------------

/// How a cell chooses its fault plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-cut plans on an even stride across the golden span —
    /// exhaustive coverage of "power dies once, anywhere".
    Stride,
    /// Seeded multi-cut plans (up to 4 cuts) — compound failures.
    Random,
    /// No planned cuts, a periodic tail instead: the live-lock probe.
    Probe,
}

impl Strategy {
    /// All strategies, grid order.
    pub const ALL: [Strategy; 3] = [Strategy::Stride, Strategy::Random, Strategy::Probe];

    /// Journal label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Stride => "stride",
            Strategy::Random => "random",
            Strategy::Probe => "probe",
        }
    }

    /// Whether a non-finishing replay counts as a violation under this
    /// strategy. Probe plans keep killing power forever, so a slow
    /// runtime legitimately never finishes.
    #[must_use]
    pub fn strict_completion(self) -> bool {
        !matches!(self, Strategy::Probe)
    }

    /// The plans this strategy runs against `golden`.
    #[must_use]
    pub fn plans(self, golden: &Golden, trials: usize, seed: u64) -> Vec<FaultPlan> {
        match self {
            Strategy::Stride => FaultPlan::sweep(golden.on_cycles, trials as u64, OFF_US),
            Strategy::Random => (0..trials)
                .map(|i| {
                    let s = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    FaultPlan::random(s, golden.on_cycles, 1 + i % 4, OFF_US)
                })
                .collect(),
            // On-periods from just above the paper's S2* progress floor
            // down to "nothing with a whole-state checkpoint survives".
            Strategy::Probe => [2_500u64, 5_000, 8_000, 14_000, 20_000]
                .iter()
                .map(|&on_us| {
                    FaultPlan::new(Vec::new(), 300).with_tail(Tail::Periodic { on_us, off_us: 300 })
                })
                .collect(),
        }
    }
}

/// A violating plan with its shrunk minimal counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The plan as generated.
    pub plan: FaultPlan,
    /// The 1-minimal shrunk plan (equal to `plan` for single cuts).
    pub shrunk: FaultPlan,
    /// Verdict label (`divergent`, `wrong-exit`, ...).
    pub verdict: String,
    /// Mismatch description from the oracle.
    pub detail: String,
}

/// Aggregated verdicts of one (program × system × strategy) cell.
#[derive(Debug, Clone, Default)]
pub struct CellReport {
    /// Golden trace length (events).
    pub golden_events: usize,
    /// Golden on-time span (cycles) — the cut window.
    pub golden_cycles: u64,
    /// Trials executed.
    pub trials: u64,
    /// Verdict tallies.
    pub consistent: u64,
    /// Divergent replays.
    pub divergent: u64,
    /// Finished with the wrong exit code.
    pub wrong_exit: u64,
    /// Silent divergence on hardware-corrupted state (chaos cells only;
    /// always zero when plans carry no corruption spec).
    pub corrupted_state: u64,
    /// Never finished within budget.
    pub incomplete: u64,
    /// Live-lock diagnoses.
    pub livelocks: u64,
    /// Trapped replays.
    pub errors: u64,
    /// Memory-consistency violations (strategy-aware).
    pub violations: u64,
    /// Trials in which at least one store was torn at a cut.
    pub torn_write_trials: u64,
    /// Power failures injected across all trials.
    pub failures_injected: u64,
    /// On-time cycles simulated across all trials.
    pub total_cycles: u64,
    /// First violation found, shrunk for the journal.
    pub first_violation: Option<Violation>,
}

/// Runs every plan of `strategy` for one cell and judges each replay.
#[must_use]
pub fn run_fault_cell(
    prog: &Program,
    system: SystemUnderTest,
    golden: &Golden,
    strategy: Strategy,
    trials: usize,
    seed: u64,
) -> CellReport {
    let plans = strategy.plans(golden, trials, seed);
    let budget = fault_budget_us(golden);
    let strict = strategy.strict_completion();
    let mut report = CellReport {
        golden_events: golden.events.len(),
        golden_cycles: golden.on_cycles,
        ..CellReport::default()
    };
    for plan in &plans {
        let trial = run_plan(prog, system, plan, budget, GUARD_BOOTS);
        let verdict = judge(golden, &trial);
        report.trials += 1;
        report.failures_injected += trial.power_failures;
        report.total_cycles += trial.cycles;
        if trial.torn_writes > 0 {
            report.torn_write_trials += 1;
        }
        match &verdict {
            Verdict::Consistent => report.consistent += 1,
            Verdict::Divergent { .. } => report.divergent += 1,
            Verdict::WrongExit { .. } => report.wrong_exit += 1,
            Verdict::CorruptedState { .. } => report.corrupted_state += 1,
            Verdict::Incomplete { .. } => report.incomplete += 1,
            Verdict::Livelock { .. } => report.livelocks += 1,
            Verdict::Error { .. } => report.errors += 1,
        }
        if verdict.is_violation(strict) {
            report.violations += 1;
            if report.first_violation.is_none() {
                let shrunk = shrink_plan(prog, system, golden, plan, budget, GUARD_BOOTS, strict);
                let detail = match &verdict {
                    Verdict::Divergent { detail, .. }
                    | Verdict::CorruptedState { detail, .. } => detail.clone(),
                    Verdict::WrongExit { expected, got } => {
                        format!("expected exit {expected}, got {got}")
                    }
                    Verdict::Incomplete { outcome } => outcome.clone(),
                    Verdict::Error { detail } => detail.clone(),
                    _ => String::new(),
                };
                report.first_violation = Some(Violation {
                    plan: plan.clone(),
                    shrunk,
                    verdict: verdict.label().to_string(),
                    detail,
                });
            }
        }
    }
    report
}

// ---------------------------------------------------------------------
// Chaos cells: brown-out corruption vs the detect-or-die oracle
// ---------------------------------------------------------------------

/// At-risk window (cycles of on-time before each cut) the chaos grid
/// arms. Wide enough that a checkpoint committed anywhere near a cut is
/// exposed; the hardened runtimes read back every staged bank, so width
/// costs them retries, not correctness.
pub const CHAOS_WINDOW: u64 = 4_000;

/// Aggregated verdicts of one (program × system × corruption-rate)
/// chaos cell, judged by the detect-or-die rule: a runtime facing
/// corrupted state may *recover* (finish consistently, healing via CRC
/// fallback), *die loudly* (trap on a failed read-back), or live-lock —
/// but silently computing on garbage is a [`Verdict::CorruptedState`]
/// violation.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: u64,
    /// Finished consistently (recovered or unharmed).
    pub consistent: u64,
    /// Trapped loudly (fail-stop detection — an acceptable death).
    pub detected: u64,
    /// Silent divergence on corrupted state: the oracle's failures.
    pub corrupted_state: u64,
    /// Silent divergence or wrong exit in trials the corruption model
    /// never actually touched (plain torn-write divergence).
    pub clean_divergence: u64,
    /// Live-lock diagnoses.
    pub livelocks: u64,
    /// Never finished inside the budget.
    pub incomplete: u64,
    /// Trials in which the model corrupted at least one store.
    pub corrupted_write_trials: u64,
    /// Stores corrupted across all trials.
    pub corrupted_writes: u64,
    /// CRC-detected bank recoveries the runtime performed.
    pub recoveries: u64,
    /// Power failures injected across all trials.
    pub failures_injected: u64,
    /// Reboots summed over consistent trials (numerator of
    /// [`ChaosReport::mean_reboots_to_recover`]).
    pub reboots_in_consistent: u64,
    /// On-time cycles simulated across all trials.
    pub total_cycles: u64,
    /// Detail of the first corrupted-state verdict, for the journal.
    pub first_corruption: Option<String>,
}

impl ChaosReport {
    /// Fraction of trials that recovered or died loudly — everything
    /// except silent corruption. The gate demands `1.0` from every
    /// runtime that claims memory consistency.
    #[must_use]
    pub fn detect_or_recover_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        1.0 - self.corrupted_state as f64 / self.trials as f64
    }

    /// Mean reboots a consistent trial took to reach completion — how
    /// many retries self-healing cost.
    #[must_use]
    pub fn mean_reboots_to_recover(&self) -> f64 {
        if self.consistent == 0 {
            return 0.0;
        }
        self.reboots_in_consistent as f64 / self.consistent as f64
    }
}

/// Runs `trials` seeded multi-cut plans with brown-out corruption at
/// `rate` riding on every cut, and folds the detect-or-die verdicts.
/// Deterministic: same seed, same plans, same corruption stream.
#[must_use]
pub fn run_chaos_cell(
    prog: &Program,
    system: SystemUnderTest,
    golden: &Golden,
    rate: f64,
    trials: usize,
    seed: u64,
) -> ChaosReport {
    let budget = fault_budget_us(golden);
    let mut report = ChaosReport::default();
    for i in 0..trials {
        let s = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let plan = FaultPlan::random(s, golden.on_cycles, 1 + i % 3, OFF_US)
            .with_corruption(Corruption::with_rate(CHAOS_WINDOW, rate, splitmix64(s)));
        let trial = run_plan(prog, system, &plan, budget, GUARD_BOOTS);
        let verdict = judge(golden, &trial);
        report.trials += 1;
        report.failures_injected += trial.power_failures;
        report.total_cycles += trial.cycles;
        report.corrupted_writes += trial.corrupted_writes;
        report.recoveries += trial.recoveries;
        if trial.corrupted_writes > 0 {
            report.corrupted_write_trials += 1;
        }
        match &verdict {
            Verdict::Consistent => {
                report.consistent += 1;
                report.reboots_in_consistent += trial.power_failures;
            }
            Verdict::Error { .. } => report.detected += 1,
            Verdict::CorruptedState { detail, .. } => {
                report.corrupted_state += 1;
                if report.first_corruption.is_none() {
                    report.first_corruption = Some(detail.clone());
                }
            }
            Verdict::Divergent { .. } | Verdict::WrongExit { .. } => {
                report.clean_divergence += 1;
            }
            Verdict::Livelock { .. } => report.livelocks += 1,
            Verdict::Incomplete { .. } => report.incomplete += 1,
        }
    }
    report
}

/// Formats a plan's cuts for the journal (`"1200,8400"`).
#[must_use]
pub fn cuts_string(plan: &FaultPlan) -> String {
    plan.cuts
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a journal cut string back into cycles. Ignores garbage —
/// replaying a truncated row is better than refusing to.
#[must_use]
pub fn parse_cuts(s: &str) -> Vec<u64> {
    s.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_of(p: FaultProgram, system: SystemUnderTest) -> (Program, Golden) {
        let prog = build_fault_program(p, system).unwrap();
        let golden = golden_run(&prog, system).unwrap();
        (prog, golden)
    }

    fn send(value: i32, at_us: u64) -> TraceRecord {
        TraceRecord {
            at_us,
            cycle: at_us,
            event: TraceEvent::Send { value },
        }
    }

    fn failure(at_us: u64) -> TraceRecord {
        TraceRecord {
            at_us,
            cycle: at_us,
            event: TraceEvent::PowerFailure { off_us: OFF_US },
        }
    }

    #[test]
    fn golden_runs_emit_events_on_every_feasible_system() {
        for &p in &[FaultProgram::NvAccumulator, FaultProgram::LcgStream] {
            for system in SystemUnderTest::ALL {
                let prog = match build_fault_program(p, system) {
                    Ok(prog) => prog,
                    Err(_) => continue,
                };
                let golden = golden_run(&prog, system)
                    .unwrap_or_else(|e| panic!("{} x {}: {e}", p.name(), system.name()));
                assert!(!golden.events.is_empty(), "{} x {}", p.name(), system.name());
                assert!(golden.on_cycles > 0);
            }
        }
    }

    #[test]
    fn oracle_accepts_idempotent_replay() {
        let golden = Golden {
            events: vec![Event::Send(1), Event::Send(2), Event::Send(3)],
            exit_code: 7,
            on_cycles: 100,
        };
        // Replay re-emits event 2 after a reboot — a legal duplicate.
        let trace = vec![send(1, 10), send(2, 20), failure(30), send(2, 40), send(3, 50)];
        let trial = Trial {
            outcome: Ok(RunOutcome::Finished(7)),
            trace,
            power_failures: 1,
            torn_writes: 0,
            corrupted_writes: 0,
            recoveries: 0,
            cycles: 60,
        };
        assert_eq!(judge(&golden, &trial), Verdict::Consistent);
    }

    #[test]
    fn oracle_flags_divergent_replay() {
        let golden = Golden {
            events: vec![Event::Send(1), Event::Send(2), Event::Send(3)],
            exit_code: 7,
            on_cycles: 100,
        };
        // After the reboot the replay emits 9 — matching no golden
        // prefix at or before the high-water mark.
        let trace = vec![send(1, 10), failure(30), send(9, 40), send(3, 50)];
        let trial = Trial {
            outcome: Ok(RunOutcome::Finished(7)),
            trace,
            power_failures: 1,
            torn_writes: 0,
            corrupted_writes: 0,
            recoveries: 0,
            cycles: 60,
        };
        match judge(&golden, &trial) {
            Verdict::Divergent { segment, .. } => assert_eq!(segment, 1),
            v => panic!("expected divergence, got {v:?}"),
        }
    }

    #[test]
    fn oracle_flags_lost_events_and_wrong_exit() {
        let golden = Golden {
            events: vec![Event::Send(1), Event::Send(2)],
            exit_code: 7,
            on_cycles: 100,
        };
        let lost = Trial {
            outcome: Ok(RunOutcome::Finished(7)),
            trace: vec![send(1, 10)],
            power_failures: 0,
            torn_writes: 0,
            corrupted_writes: 0,
            recoveries: 0,
            cycles: 60,
        };
        assert!(matches!(judge(&golden, &lost), Verdict::Divergent { .. }));

        let wrong = Trial {
            outcome: Ok(RunOutcome::Finished(8)),
            trace: vec![send(1, 10), send(2, 20)],
            power_failures: 0,
            torn_writes: 0,
            corrupted_writes: 0,
            recoveries: 0,
            cycles: 60,
        };
        assert_eq!(
            judge(&golden, &wrong),
            Verdict::WrongExit {
                expected: 7,
                got: 8
            }
        );
    }

    #[test]
    fn naive_diverges_and_tics_passes_the_same_shrunk_plan() {
        // The headline result: sweep cut points over naive-mementos,
        // find a reproducible divergence, shrink it, then replay the
        // minimal plan under TICS — which must stay consistent.
        let (naive_prog, naive_golden) =
            golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Mementos);
        let report = run_fault_cell(
            &naive_prog,
            SystemUnderTest::Mementos,
            &naive_golden,
            Strategy::Stride,
            40,
            0xF417,
        );
        assert!(
            report.violations > 0,
            "naive checkpointing must diverge somewhere in the sweep: {report:?}"
        );
        let violation = report.first_violation.expect("violation recorded");
        assert!(!violation.shrunk.cuts.is_empty());

        // Same program image shape, same cut plan, TICS runtime.
        let (tics_prog, tics_golden) =
            golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Tics);
        let trial = run_plan(
            &tics_prog,
            SystemUnderTest::Tics,
            &violation.shrunk,
            fault_budget_us(&tics_golden),
            GUARD_BOOTS,
        );
        let verdict = judge(&tics_golden, &trial);
        assert_eq!(verdict, Verdict::Consistent, "TICS on {:?}", violation.shrunk);
    }

    #[test]
    fn tics_survives_a_stride_sweep() {
        let (prog, golden) = golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Tics);
        let report = run_fault_cell(
            &prog,
            SystemUnderTest::Tics,
            &golden,
            Strategy::Stride,
            32,
            0xF417,
        );
        assert_eq!(report.violations, 0, "{report:?}");
        assert_eq!(report.trials, 32);
    }

    #[test]
    fn whole_state_checkpointing_livelocks_under_short_periods() {
        // 12 KB of nv state means a naive checkpoint costs ~12.5 ms —
        // it can never commit inside a 8 ms on-period, and the long
        // silent loops emit no events either: the probe diagnoses
        // live-lock instead of blaming memory.
        let (prog, golden) = golden_of(FaultProgram::BigState, SystemUnderTest::Mementos);
        let plan =
            FaultPlan::new(Vec::new(), 300).with_tail(Tail::Periodic { on_us: 8_000, off_us: 300 });
        let trial = run_plan(
            &prog,
            SystemUnderTest::Mementos,
            &plan,
            fault_budget_us(&golden),
            GUARD_BOOTS,
        );
        assert!(
            matches!(judge(&golden, &trial), Verdict::Livelock { .. }),
            "got {:?}",
            judge(&golden, &trial)
        );
    }

    #[test]
    fn shrinker_reduces_random_plans_to_minimal_cut_sets() {
        let (prog, golden) = golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Mementos);
        // A plan with several cuts, at least one of which lands in the
        // pre-first-checkpoint window and diverges.
        let span = golden.on_cycles;
        let plan = FaultPlan::new(vec![span / 4, span / 2, 3 * span / 4], OFF_US);
        let budget = fault_budget_us(&golden);
        let trial = run_plan(&prog, SystemUnderTest::Mementos, &plan, budget, GUARD_BOOTS);
        if judge(&golden, &trial).is_violation(true) {
            let shrunk = shrink_plan(
                &prog,
                SystemUnderTest::Mementos,
                &golden,
                &plan,
                budget,
                GUARD_BOOTS,
                true,
            );
            assert!(!shrunk.cuts.is_empty() && shrunk.cuts.len() <= plan.cuts.len());
            let replay = run_plan(&prog, SystemUnderTest::Mementos, &shrunk, budget, GUARD_BOOTS);
            assert!(judge(&golden, &replay).is_violation(true));
        }
    }

    #[test]
    fn silent_divergence_upgrades_to_corrupted_state_only_under_corruption() {
        let golden = Golden {
            events: vec![Event::Send(1), Event::Send(2), Event::Send(3)],
            exit_code: 7,
            on_cycles: 100,
        };
        let diverging_trace = vec![send(1, 10), failure(30), send(9, 40), send(3, 50)];
        let clean = Trial {
            outcome: Ok(RunOutcome::Finished(7)),
            trace: diverging_trace.clone(),
            power_failures: 1,
            torn_writes: 1,
            corrupted_writes: 0,
            recoveries: 0,
            cycles: 60,
        };
        assert!(matches!(judge(&golden, &clean), Verdict::Divergent { .. }));

        let dirty = Trial {
            corrupted_writes: 3,
            ..Trial {
                outcome: Ok(RunOutcome::Finished(7)),
                trace: diverging_trace,
                power_failures: 1,
                torn_writes: 1,
                corrupted_writes: 0,
                recoveries: 0,
                cycles: 60,
            }
        };
        match judge(&golden, &dirty) {
            Verdict::CorruptedState {
                corrupted_writes, ..
            } => assert_eq!(corrupted_writes, 3),
            v => panic!("expected corrupted-state, got {v:?}"),
        }
        assert!(judge(&golden, &dirty).is_violation(false));
        assert_eq!(judge(&golden, &dirty).label(), "corrupted-state");
    }

    #[test]
    fn naive_corrupts_silently_where_tics_detects_or_recovers() {
        // The chaos headline: under brown-out corruption the naive
        // whole-state checkpointer restores flipped banks and keeps
        // going (silent corrupted-state), while TICS's CRC-validated
        // double banks either heal or trap — never lie.
        let (naive_prog, naive_golden) =
            golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Mementos);
        let naive = run_chaos_cell(
            &naive_prog,
            SystemUnderTest::Mementos,
            &naive_golden,
            0.4,
            24,
            0xC0FF,
        );
        assert!(
            naive.corrupted_write_trials > 0,
            "corruption model never fired: {naive:?}"
        );
        assert!(
            naive.corrupted_state > 0,
            "naive checkpointing must silently consume corruption somewhere: {naive:?}"
        );

        let (tics_prog, tics_golden) =
            golden_of(FaultProgram::NvAccumulator, SystemUnderTest::Tics);
        let tics = run_chaos_cell(
            &tics_prog,
            SystemUnderTest::Tics,
            &tics_golden,
            0.4,
            24,
            0xC0FF,
        );
        assert_eq!(tics.corrupted_state, 0, "{tics:?}");
        assert!(
            (tics.detect_or_recover_rate() - 1.0).abs() < f64::EPSILON,
            "{tics:?}"
        );
        assert!(
            tics.corrupted_write_trials > 0,
            "TICS trials must actually face corruption: {tics:?}"
        );
    }

    #[test]
    fn cuts_roundtrip_through_the_journal_format() {
        let plan = FaultPlan::new(vec![1_200, 8_400], 150);
        assert_eq!(cuts_string(&plan), "1200,8400");
        assert_eq!(parse_cuts(&cuts_string(&plan)), vec![1_200, 8_400]);
        assert_eq!(parse_cuts(""), Vec::<u64>::new());
    }
}
