//! Fleet-scale streaming Monte Carlo (the `exp_fleet` engine).
//!
//! A fleet run simulates N independent devices of one (app × system ×
//! clock × supply) configuration, each with its own splitmix64-derived
//! supply seed, and folds every device into fixed-memory aggregates:
//! counters, streaming log-bucket histograms for reactive-time and
//! runtime-overhead distributions, and a reservoir sample of the worst
//! offenders. Aggregator state is independent of N, so a million-device
//! sweep runs in the same memory as a thousand-device one.
//!
//! The engine is built on the machine-recycling refactor: a shard
//! worker builds one [`MachineImage`] (program, layout, cost model,
//! sensor trace — all shared, immutable) and **one** [`Machine`], then
//! recycles that machine across its whole device range with
//! [`Machine::reset`] — proven trace-identical to fresh construction by
//! the `machine_recycling` differential suite. Per-device cost is the
//! mutable block only: zeroing memory images and re-seeding RNGs, with
//! zero allocation after the first device.
//!
//! Sharding is deterministic: device `d`'s seed depends only on the
//! fleet seed and `d`, never on shard boundaries or thread count, so
//! `run_shard(0, 40)` equals `run_shard(0, 20)` merged with
//! `run_shard(20, 20)` — the property that makes journaled shard rows
//! resumable ([`JournalRow::shard`]).
//!
//! [`JournalRow::shard`]: crate::journal::JournalRow

use std::sync::Arc;

use tics_apps::{build_app, App, SystemUnderTest};
use tics_minic::opt::OptLevel;
use tics_trace::SpanKind;
use tics_vm::{DispatchEngine, ExecStats, Executor, Machine, MachineConfig, MachineImage,
              RunOutcome};

use crate::json::Json;
use crate::oracle::count_violations;
use crate::runner::ClockKind;
use crate::sweep::{cell_seed, splitmix64, standard_sensor_trace, SupplySpec};

/// Offender exemplars kept per shard (and in the merged report).
pub const RESERVOIR_K: usize = 16;

// ---- streaming histogram ----

/// Sub-bucket resolution bits: 32 sub-buckets per power of two, i.e.
/// ~3 % relative error on any recorded value.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Values below `SUB * 2` are exact; above, `shift = exponent - SUB_BITS`
/// ranges over `0..=63 - SUB_BITS`, each contributing `SUB` buckets.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-memory log-bucket histogram of `u64` samples (HDR-histogram
/// style): exact below 64, ~3 % relative-error buckets above, ~15 KiB
/// of state regardless of how many samples are recorded. Merging two
/// histograms is element-wise addition, so shard aggregates fold into
/// fleet totals without loss.
///
/// [`StreamingHistogram::percentile`] returns the *bucket bounds*
/// containing the requested rank; the exactness property test checks
/// the sorted-ground-truth value always lies inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> StreamingHistogram {
        StreamingHistogram::default()
    }

    fn bucket(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let exponent = 63 - u64::from(v.leading_zeros());
            let shift = exponent - u64::from(SUB_BITS);
            let sub = ((v >> shift) as usize) - SUB;
            SUB + (shift as usize) * SUB + sub
        }
    }

    /// The value range `[lo, hi]` a bucket covers (inclusive).
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < SUB {
            (index as u64, index as u64)
        } else {
            let shift = ((index - SUB) / SUB) as u32;
            let sub = ((index - SUB) % SUB) as u64;
            let lo = (sub + SUB as u64) << shift;
            (lo, lo + ((1u64 << shift) - 1))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of the recorded values (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The rank a percentile denotes over `total` samples — shared with
    /// the exactness property test so both sides agree on the
    /// nearest-rank convention.
    #[must_use]
    pub fn rank_of(percentile: f64, total: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        let frac = (percentile / 100.0).clamp(0.0, 1.0);
        let rank = (frac * ((total - 1) as f64)).round();
        (rank as u64).min(total - 1)
    }

    /// The `[lo, hi]` bucket bounds containing the value at percentile
    /// `p` (0–100, nearest rank); `None` when empty. The true value at
    /// that rank is guaranteed to lie within the bounds.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<(u64, u64)> {
        if self.total == 0 {
            return None;
        }
        let rank = Self::rank_of(p, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let (lo, hi) = Self::bucket_bounds(i);
                // The exact extrema tighten the edge buckets for free.
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("rank below total implies a containing bucket");
    }

    /// Folds another histogram in (element-wise; lossless).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sparse wire form: only non-empty buckets are listed, so a
    /// journal row stays small even though the dense state is ~15 KiB.
    /// `sum`/`min`/`max` travel as hex strings (the journal's u64
    /// convention — JSON numbers stop at `i64::MAX`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
            .collect();
        Json::obj()
            .field("n", self.total)
            .field("sum", format!("{:#x}", self.sum))
            .field(
                "min",
                format!("{:#x}", if self.total > 0 { self.min } else { 0 }),
            )
            .field("max", format!("{:#x}", self.max))
            .field("buckets", Json::Arr(buckets))
            .build()
    }

    /// Parses the sparse wire form back.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<StreamingHistogram> {
        let hex = |key: &str| -> Option<u64> {
            u64::from_str_radix(v.get(key)?.as_str()?.trim_start_matches("0x"), 16).ok()
        };
        let mut h = StreamingHistogram::new();
        h.total = v.get("n")?.as_u64()?;
        h.sum = hex("sum")?;
        h.max = hex("max")?;
        h.min = if h.total > 0 { hex("min")? } else { u64::MAX };
        for pair in v.get("buckets")?.as_arr()? {
            let [i, c] = pair.as_arr()? else { return None };
            h.counts[usize::try_from(i.as_u64()?).ok()?] = c.as_u64()?;
        }
        Some(h)
    }
}

// ---- offender reservoir ----

/// One worst-offender exemplar: enough coordinates to re-simulate the
/// exact device (`device` + the fleet seed reproduce its supply, clock,
/// and sensor schedule bit-for-bit) plus the headline numbers that made
/// it an offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Global device index within the fleet.
    pub device: u64,
    /// The device's derived seed.
    pub seed: u64,
    /// Time-consistency violations the oracle counted.
    pub violations: u64,
    /// The device's worst send-after-sample reactive time (µs).
    pub worst_reactive_us: u64,
    /// How the device's run ended (`finished`, `livelocked`, ...).
    pub outcome: String,
}

impl Exemplar {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::from(self.device),
            Json::Str(format!("{:#x}", self.seed)),
            Json::from(self.violations),
            Json::from(self.worst_reactive_us),
            Json::Str(self.outcome.clone()),
        ])
    }

    fn from_json(v: &Json) -> Option<Exemplar> {
        let [device, seed, violations, worst, outcome] = v.as_arr()? else {
            return None;
        };
        Some(Exemplar {
            device: device.as_u64()?,
            seed: u64::from_str_radix(seed.as_str()?.trim_start_matches("0x"), 16).ok()?,
            violations: violations.as_u64()?,
            worst_reactive_us: worst.as_u64()?,
            outcome: outcome.as_str()?.to_string(),
        })
    }

    /// Sort key for deterministic worst-K selection: most violations
    /// first, then slowest reaction, then lowest device index.
    fn badness(&self) -> (std::cmp::Reverse<u64>, std::cmp::Reverse<u64>, u64) {
        (
            std::cmp::Reverse(self.violations),
            std::cmp::Reverse(self.worst_reactive_us),
            self.device,
        )
    }
}

/// Algorithm-R reservoir over offender devices: a uniform sample of at
/// most [`RESERVOIR_K`] offenders in O(K) memory, deterministic per
/// shard (splitmix64 stream seeded from the shard seed). Merging across
/// shards switches to deterministic worst-K selection — a uniform
/// merged sample would need the per-shard acceptance history.
#[derive(Debug, Clone)]
pub struct Reservoir {
    items: Vec<Exemplar>,
    seen: u64,
    rng: u64,
}

/// Equality over the *observable* sample (items + seen); the private
/// replacement-RNG state is not wire state and a deserialized reservoir
/// is only ever merged, never offered to.
impl PartialEq for Reservoir {
    fn eq(&self, other: &Reservoir) -> bool {
        self.items == other.items && self.seen == other.seen
    }
}

impl Eq for Reservoir {}

impl Reservoir {
    /// An empty reservoir whose replacement stream derives from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Reservoir {
        Reservoir {
            items: Vec::with_capacity(RESERVOIR_K),
            seen: 0,
            rng: splitmix64(seed ^ 0x0FFE_17DE_5EED_0001),
        }
    }

    /// Offers one offender; kept with probability `K / seen`.
    pub fn offer(&mut self, item: Exemplar) {
        self.seen += 1;
        if self.items.len() < RESERVOIR_K {
            self.items.push(item);
        } else {
            self.rng = splitmix64(self.rng);
            let j = self.rng % self.seen;
            if (j as usize) < RESERVOIR_K {
                self.items[j as usize] = item;
            }
        }
    }

    /// Offenders offered so far (kept or not).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled exemplars (unordered).
    #[must_use]
    pub fn items(&self) -> &[Exemplar] {
        &self.items
    }

    /// Folds another reservoir in: concatenate, sort by badness, keep
    /// the worst K. Deterministic in shard-merge order and content.
    pub fn merge(&mut self, other: &Reservoir) {
        self.items.extend(other.items.iter().cloned());
        self.items.sort_by_key(Exemplar::badness);
        self.items.truncate(RESERVOIR_K);
        self.seen += other.seen;
    }
}

// ---- the per-shard aggregate ----

/// Everything a shard (or the whole merged fleet) reports. All state is
/// fixed-size — counters, two histograms, a bounded reservoir — so the
/// aggregate for a million devices is as big as for a hundred.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Devices simulated.
    pub devices: u64,
    /// Devices whose program ran to completion.
    pub finished: u64,
    /// Devices whose supply window closed first.
    pub out_of_energy: u64,
    /// Devices that hit the simulated-time budget.
    pub budget_exhausted: u64,
    /// Devices starved of forward progress (livelock).
    pub livelocked: u64,
    /// Devices whose run trapped (VM error).
    pub errored: u64,
    /// Devices with at least one time-consistency violation.
    pub violating_devices: u64,
    /// Total violations across the shard.
    pub violations: u64,
    /// Devices that performed at least one self-healing recovery.
    pub recovered_devices: u64,
    /// Power failures across the shard.
    pub power_failures: u64,
    /// Checkpoints committed across the shard.
    pub checkpoints: u64,
    /// Bytecode instructions executed — deterministic per device, the
    /// host-independent quantity `exp_fleet --check` gates on.
    pub instructions: u64,
    /// Simulated on-time cycles across the shard.
    pub cycles: u64,
    /// Distribution of send-after-sample reactive times (µs).
    pub reactive_us: StreamingHistogram,
    /// Distribution of per-device runtime overhead (‰ of cycles spent
    /// outside application/ISR spans).
    pub overhead_permille: StreamingHistogram,
    /// Reservoir-sampled worst offenders.
    pub offenders: Reservoir,
}

impl ShardStats {
    /// An empty aggregate whose reservoir derives from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> ShardStats {
        ShardStats {
            devices: 0,
            finished: 0,
            out_of_energy: 0,
            budget_exhausted: 0,
            livelocked: 0,
            errored: 0,
            violating_devices: 0,
            violations: 0,
            recovered_devices: 0,
            power_failures: 0,
            checkpoints: 0,
            instructions: 0,
            cycles: 0,
            reactive_us: StreamingHistogram::new(),
            overhead_permille: StreamingHistogram::new(),
            offenders: Reservoir::new(seed),
        }
    }

    /// Folds one finished device run into the aggregate.
    fn fold_device(
        &mut self,
        device: u64,
        seed: u64,
        machine: &Machine,
        outcome: &Result<RunOutcome, tics_vm::VmError>,
        atomic_timestamps: bool,
    ) {
        self.devices += 1;
        let outcome_label = match outcome {
            Ok(RunOutcome::Finished(_)) => {
                self.finished += 1;
                "finished"
            }
            Ok(RunOutcome::OutOfEnergy) => {
                self.out_of_energy += 1;
                "out-of-energy"
            }
            Ok(RunOutcome::BudgetExhausted) => {
                self.budget_exhausted += 1;
                "budget-exhausted"
            }
            Ok(RunOutcome::Starved { .. }) => {
                self.livelocked += 1;
                "livelocked"
            }
            Err(_) => {
                self.errored += 1;
                "error"
            }
        };

        let stats = machine.stats();
        self.power_failures += stats.power_failures;
        self.checkpoints += stats.checkpoints;
        self.instructions += stats.instructions;
        self.cycles += machine.cycles();
        if stats.recoveries > 0 {
            self.recovered_devices += 1;
        }

        let worst_reactive = self.fold_reactive(stats);

        let cycles = machine.cycles();
        let spans = machine.mem.span_cycles_all();
        let overhead: u64 = SpanKind::ALL
            .iter()
            .filter(|k| k.is_runtime())
            .map(|k| spans[k.index()])
            .sum();
        if let Some(permille) = (overhead * 1000).checked_div(cycles) {
            self.overhead_permille.record(permille);
        }

        let v = count_violations(machine.trace().records(), atomic_timestamps);
        self.violations += v.total();
        let livelocked = matches!(outcome, Ok(RunOutcome::Starved { .. }));
        if v.total() > 0 {
            self.violating_devices += 1;
        }
        if v.total() > 0 || livelocked {
            self.offenders.offer(Exemplar {
                device,
                seed,
                violations: v.total(),
                worst_reactive_us: worst_reactive,
                outcome: outcome_label.to_string(),
            });
        }
    }

    /// Records every send's reactive time (send minus the latest
    /// preceding sample) and returns the device's worst one.
    fn fold_reactive(&mut self, stats: &ExecStats) -> u64 {
        let samples = &stats.samples_timed;
        let mut si = 0usize;
        let mut worst = 0u64;
        for &(value, at_us) in &stats.sends_timed {
            if value < 0 {
                continue; // alerts measure deadline latency, not reaction
            }
            while si < samples.len() && samples[si] <= at_us {
                si += 1;
            }
            if si > 0 {
                let reactive = at_us - samples[si - 1];
                self.reactive_us.record(reactive);
                worst = worst.max(reactive);
            }
        }
        worst
    }

    /// Folds another shard in (commutative on every field except the
    /// reservoir, which is deterministic in merge order — fold shards
    /// in shard-index order).
    pub fn merge(&mut self, other: &ShardStats) {
        self.devices += other.devices;
        self.finished += other.finished;
        self.out_of_energy += other.out_of_energy;
        self.budget_exhausted += other.budget_exhausted;
        self.livelocked += other.livelocked;
        self.errored += other.errored;
        self.violating_devices += other.violating_devices;
        self.violations += other.violations;
        self.recovered_devices += other.recovered_devices;
        self.power_failures += other.power_failures;
        self.checkpoints += other.checkpoints;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.reactive_us.merge(&other.reactive_us);
        self.overhead_permille.merge(&other.overhead_permille);
        self.offenders.merge(&other.offenders);
    }

    /// Serializes the aggregate into journal `extra` fields, histograms
    /// sparse — a resumed sweep rebuilds the whole fleet report from
    /// journal rows without re-simulating a single device.
    #[must_use]
    pub fn to_extra(&self) -> Vec<(String, Json)> {
        vec![
            ("devices".into(), Json::from(self.devices)),
            ("finished".into(), Json::from(self.finished)),
            ("out_of_energy".into(), Json::from(self.out_of_energy)),
            ("budget_exhausted".into(), Json::from(self.budget_exhausted)),
            ("livelocked".into(), Json::from(self.livelocked)),
            ("errored".into(), Json::from(self.errored)),
            ("violating_devices".into(), Json::from(self.violating_devices)),
            ("violations".into(), Json::from(self.violations)),
            ("recovered_devices".into(), Json::from(self.recovered_devices)),
            ("fleet_power_failures".into(), Json::from(self.power_failures)),
            ("fleet_checkpoints".into(), Json::from(self.checkpoints)),
            ("instructions".into(), Json::from(self.instructions)),
            ("fleet_cycles".into(), Json::from(self.cycles)),
            ("reactive_us".into(), self.reactive_us.to_json()),
            ("overhead_permille".into(), self.overhead_permille.to_json()),
            (
                "offenders".into(),
                Json::Arr(self.offenders.items().iter().map(Exemplar::to_json).collect()),
            ),
            ("offenders_seen".into(), Json::from(self.offenders.seen())),
        ]
    }

    /// Parses an aggregate back out of journal `extra` fields (the
    /// inverse of [`ShardStats::to_extra`]).
    #[must_use]
    pub fn from_extra(extra: &[(String, Json)]) -> Option<ShardStats> {
        let get = |k: &str| extra.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let num = |k: &str| get(k).and_then(Json::as_u64);
        let mut offenders = Reservoir::new(0);
        for item in get("offenders")?.as_arr()? {
            offenders.items.push(Exemplar::from_json(item)?);
        }
        offenders.seen = num("offenders_seen")?;
        Some(ShardStats {
            devices: num("devices")?,
            finished: num("finished")?,
            out_of_energy: num("out_of_energy")?,
            budget_exhausted: num("budget_exhausted")?,
            livelocked: num("livelocked")?,
            errored: num("errored")?,
            violating_devices: num("violating_devices")?,
            violations: num("violations")?,
            recovered_devices: num("recovered_devices")?,
            power_failures: num("fleet_power_failures")?,
            checkpoints: num("fleet_checkpoints")?,
            instructions: num("instructions")?,
            cycles: num("fleet_cycles")?,
            reactive_us: StreamingHistogram::from_json(get("reactive_us")?)?,
            overhead_permille: StreamingHistogram::from_json(get("overhead_permille")?)?,
            offenders,
        })
    }
}

// ---- the fleet runner ----

/// One fleet configuration: which device to mass-produce and how many
/// different supply fates to subject it to.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// App under test.
    pub app: App,
    /// System under test.
    pub system: SystemUnderTest,
    /// Optimization level.
    pub opt: OptLevel,
    /// Timekeeper every device carries.
    pub clock: ClockKind,
    /// Supply spec, instantiated per device with the device's seed.
    pub supply: SupplySpec,
    /// Workload scale.
    pub scale: u32,
    /// Per-device on-time budget (µs).
    pub time_budget_us: u64,
    /// Boots without forward progress before a device counts as
    /// livelocked.
    pub guard_boots: u64,
    /// Dispatch engine.
    pub engine: DispatchEngine,
    /// The fleet seed all device seeds derive from.
    pub fleet_seed: u64,
}

impl FleetSpec {
    /// Device `d`'s seed — a function of the fleet seed and the global
    /// device index only, so shard boundaries and thread count never
    /// change any device's fate.
    #[must_use]
    pub fn device_seed(&self, device: u64) -> u64 {
        cell_seed(self.fleet_seed, device)
    }
}

/// Runs devices `first..first + count` of `spec` and returns the shard
/// aggregate. Builds the program and [`MachineImage`] once, then
/// recycles one machine (and one runtime) across the whole range.
///
/// # Errors
///
/// Returns a description when the app × system × opt combination does
/// not build or the image does not load. Per-device VM errors do *not*
/// abort the shard; they count into [`ShardStats::errored`].
pub fn run_shard(spec: &FleetSpec, first: u64, count: u64) -> Result<ShardStats, String> {
    let prog = build_app(
        spec.app,
        spec.system,
        spec.opt,
        tics_apps::build::Scale(spec.scale),
    )
    .map_err(|e| e.to_string())?;
    let image = MachineImage::build(
        prog.clone(),
        &MachineConfig {
            sensor_trace: standard_sensor_trace(spec.app, spec.scale),
            ..MachineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let mut runtime = tics_apps::build::make_runtime(spec.system, &prog);
    let atomic_timestamps = spec.system == SystemUnderTest::Tics;

    let mut stats = ShardStats::new(spec.device_seed(first));
    let mut machine: Option<Machine> = None;
    for d in first..first + count {
        let seed = spec.device_seed(d);
        let m = match machine.as_mut() {
            None => {
                machine = Some(
                    Machine::from_image(Arc::clone(&image), seed, spec.clock.build())
                        .map_err(|e| e.to_string())?,
                );
                machine.as_mut().expect("just built")
            }
            Some(m) => {
                m.reset(seed).map_err(|e| e.to_string())?;
                m
            }
        };
        runtime.recycle();
        let mut supply = spec.supply.build(seed);
        let outcome = Executor::new()
            .with_engine(spec.engine)
            .with_time_budget(spec.time_budget_us)
            .with_progress_guard(spec.guard_boots)
            .run(m, runtime.as_mut(), supply.as_mut());
        stats.fold_device(d, seed, m, &outcome, atomic_timestamps);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_stream(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = splitmix64(state);
                state % modulus
            })
            .collect()
    }

    #[test]
    fn histogram_buckets_are_exact_below_two_pow_six() {
        for v in 0..64u64 {
            let (lo, hi) = StreamingHistogram::bucket_bounds(StreamingHistogram::bucket(v));
            assert_eq!((lo, hi), (v, v), "value {v} must be exact");
        }
    }

    #[test]
    fn histogram_bucket_bounds_contain_their_values() {
        for &v in &[64u64, 100, 1_000, 65_535, 1 << 33, u64::MAX] {
            let i = StreamingHistogram::bucket(v);
            let (lo, hi) = StreamingHistogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            // Relative error bound: bucket width < lo / 32.
            assert!(hi - lo <= lo / 32, "bucket [{lo}, {hi}] too wide");
        }
    }

    #[test]
    fn histogram_percentiles_bound_sorted_ground_truth() {
        // The exactness property: for arbitrary data, every percentile's
        // reported bounds contain the exact nearest-rank value computed
        // from the fully sorted sample.
        for (seed, modulus) in [(1u64, 100u64), (2, 1 << 20), (3, u64::MAX), (4, 7)] {
            let values = mix_stream(seed, 500, modulus);
            let mut h = StreamingHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
                let rank = StreamingHistogram::rank_of(p, sorted.len() as u64);
                let truth = sorted[usize::try_from(rank).unwrap()];
                let (lo, hi) = h.percentile(p).unwrap();
                assert!(
                    lo <= truth && truth <= hi,
                    "p{p}: ground truth {truth} outside [{lo}, {hi}] (seed {seed})"
                );
            }
            assert_eq!(h.min(), sorted.first().copied());
            assert_eq!(h.max(), sorted.last().copied());
        }
    }

    #[test]
    fn histogram_merge_equals_bulk_recording() {
        let values = mix_stream(9, 300, 1 << 30);
        let mut bulk = StreamingHistogram::new();
        let (mut a, mut b) = (StreamingHistogram::new(), StreamingHistogram::new());
        for (i, &v) in values.iter().enumerate() {
            bulk.record(v);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        a.merge(&b);
        assert_eq!(a, bulk);
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let mut h = StreamingHistogram::new();
        for &v in &[0u64, 5, 63, 64, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(StreamingHistogram::from_json(&h.to_json()), Some(h.clone()));
        let empty = StreamingHistogram::new();
        assert_eq!(StreamingHistogram::from_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let build = || {
            let mut r = Reservoir::new(77);
            for d in 0..1_000u64 {
                r.offer(Exemplar {
                    device: d,
                    seed: d * 3,
                    violations: d % 5,
                    worst_reactive_us: d,
                    outcome: "finished".into(),
                });
            }
            r
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "same seed, same stream, same sample");
        assert_eq!(a.items().len(), RESERVOIR_K);
        assert_eq!(a.seen(), 1_000);
        assert_ne!(
            a.items().iter().map(|e| e.device).max(),
            Some(RESERVOIR_K as u64 - 1),
            "replacement must have happened"
        );
    }

    #[test]
    fn reservoir_merge_keeps_the_worst() {
        // Stay under capacity on both sides so no uniform sampling
        // happens before the merge: the worst-K choice is then exact.
        let mut a = Reservoir::new(1);
        let mut b = Reservoir::new(2);
        for d in 0..20u64 {
            let ex = Exemplar {
                device: d,
                seed: d,
                violations: d,
                worst_reactive_us: 0,
                outcome: "finished".into(),
            };
            if d % 2 == 0 { a.offer(ex) } else { b.offer(ex) }
        }
        a.merge(&b);
        assert_eq!(a.items().len(), RESERVOIR_K);
        assert_eq!(a.seen(), 20);
        // Worst-K selection is by violations, descending: exactly the
        // top 16 of 0..20 survive.
        let mut kept: Vec<u64> = a.items().iter().map(|e| e.violations).collect();
        kept.sort_unstable();
        assert_eq!(kept, (4..20).collect::<Vec<u64>>());
    }

    #[test]
    fn shard_extra_round_trips() {
        let mut s = ShardStats::new(3);
        s.devices = 10;
        s.finished = 7;
        s.livelocked = 1;
        s.violations = 4;
        s.violating_devices = 2;
        s.instructions = 123_456;
        s.cycles = 999;
        s.reactive_us.record(1_000);
        s.reactive_us.record(250_000);
        s.overhead_permille.record(31);
        s.offenders.offer(Exemplar {
            device: 4,
            seed: 0xFEED_F00D_DEAD_BEEF,
            violations: 3,
            worst_reactive_us: 250_000,
            outcome: "finished".into(),
        });
        assert_eq!(ShardStats::from_extra(&s.to_extra()), Some(s));
    }

    #[test]
    fn device_seeds_ignore_shard_boundaries() {
        let spec = FleetSpec {
            app: App::Ar,
            system: SystemUnderTest::Tics,
            opt: OptLevel::O2,
            clock: ClockKind::Perfect,
            supply: SupplySpec::Continuous,
            scale: 4,
            time_budget_us: 1,
            guard_boots: 8,
            engine: DispatchEngine::Decoded,
            fleet_seed: 0xF1EE7,
        };
        assert_eq!(spec.device_seed(37), cell_seed(0xF1EE7, 37));
        assert_ne!(spec.device_seed(0), spec.device_seed(1));
    }
}
