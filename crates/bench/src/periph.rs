//! Torn-wire peripheral workloads and the detect-or-recover oracle.
//!
//! Checkpoints rewind the *program*, never the *wire*: a UART byte that
//! left the pin or an I2C read transaction the sensor already committed
//! stays done across a reboot. A runtime replaying from a checkpoint
//! therefore re-drives I/O unless the driver layer makes every
//! transaction idempotent. This module sweeps three driver-shaped
//! workloads across the system matrix under adversarial power cuts
//! (plus optional brown-out corruption) and judges each replay at the
//! *device* side of the wire:
//!
//! - **`i2c-sensor-log`** — journaled read transactions against the
//!   multi-byte I2C sensor whose read-out cursor only advances on a
//!   completed untorn STOP. Exactly-once delivery shows up as strictly
//!   ordered `print(id · 16384 + reading)` records whose values match
//!   the sensor's own served-readings log. TICS additionally runs a
//!   timed variant that drops stale readings through `@expires`.
//! - **`uart-telemetry`** — attempt-tagged frames
//!   `[0xA5, seq, attempt, payload, checksum]`. A hardened retry bumps
//!   the attempt (the receiver dedups by `seq`); a naive replay resends
//!   the *same* `(seq, attempt)` — the oracle's smoking gun.
//! - **`uart-reqresp`** — request/response with a drain-FIFO-then-ask
//!   transaction body. Replaying the *whole* body is idempotent; a
//!   mid-transaction checkpoint resumes past the drain and reads a
//!   stale response.
//!
//! The oracle never compares timestamps or trusts the MCU: its ground
//! truth is the persistent device-side logs ([`tics_mcu::Uart`]'s wire
//! bytes, [`tics_mcu::I2c`]'s served readings). Torn bytes are visible
//! garbage (framing errors), duplicate frames with a bumped attempt are
//! *recovered*, duplicate `(seq, attempt)` or a regressed/mutated print
//! stream is a *violation*, and a trap is a loud, acceptable *detected*
//! death. A gap (power died between `tx_commit` and the app-level
//! `print`) is permitted: the transaction committed on the wire and the
//! journal skips its replay.

use tics_apps::build::make_runtime;
use tics_apps::SystemUnderTest;
use tics_baselines::TaskFlavor;
use tics_energy::{AdversarialSupply, ContinuousPower, Corruption, FaultPlan};
use tics_mcu::periph::{ServedRead, Uart, WireByte};
use tics_mcu::CorruptionModel;
use tics_minic::opt::OptLevel;
use tics_minic::{compile, passes, Program};
use tics_trace::{TraceEvent, TraceRecord};
use tics_vm::{Executor, Machine, MachineConfig, RunOutcome, VmError};

use crate::fault::{fault_budget_us, Golden, CHAOS_WINDOW, GUARD_BOOTS, OFF_US};
use crate::json::Json;
use crate::sweep::splitmix64;

/// Telemetry frame header byte — the only value ≥ 0x80 a valid frame
/// carries, so the parser can always resynchronize on it.
pub const TELEMETRY_HDR: u8 = 0xA5;

/// Transactions each workload issues (ids / sequence numbers `1..=N`).
pub const SENSOR_TXNS: u32 = 10;
/// Telemetry frames sent (`seq` runs `1..=12`).
pub const TELEMETRY_TXNS: u32 = 12;
/// Request/response exchanges (`id` runs `1..=10`).
pub const REQRESP_TXNS: u32 = 10;

// ---------------------------------------------------------------------
// Workload corpus
// ---------------------------------------------------------------------

/// A driver-shaped mini-C workload over the torn-wire peripherals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeriphWorkload {
    /// Journaled multi-byte reads from the persistent I2C sensor.
    SensorLog,
    /// Attempt-tagged UART telemetry frames.
    Telemetry,
    /// UART request/response with a drain-then-ask transaction body.
    ReqResp,
}

// Shared workload rules (the oracle depends on them):
//  - transaction ids start at 1 and are begun in increasing order (the
//    journal's high-water recycling requires monotone ids);
//  - the app-level `print` happens strictly AFTER `tx_commit`, so a cut
//    between the two yields a gap, never a duplicate;
//  - all transaction-body state lives in locals (no `nv` stores inside
//    a body), so no runtime is ever forced to checkpoint mid-txn.

const SENSOR_LOG_SRC: &str = "
int main() {
    for (int id = 1; id < 11; id = id + 1) {
        int a = tx_begin(id);
        if (a >= 0) {
            int hi = 0;
            int lo = 0;
            int ok = 0;
            while (ok == 0) {
                i2c_reset();
                i2c_start(64);
                hi = i2c_read();
                lo = i2c_read();
                ok = i2c_stop();
            }
            tx_commit(id);
            print(id * 16384 + hi * 256 + lo);
        }
    }
    return 0;
}
";

// The TICS variant stamps each committed reading with `@=` and drops it
// through `catch` (printing `-id`) if the reading went stale before the
// timed block ran. TICS seals a ~1 ms site checkpoint between the stamp
// and the `@expires` entry even on continuous power, so the TTL must
// clear that fresh-path latency; 2 ms does, while a post-commit outage
// (150 µs off plus restore, journal reconciliation, and retry backoff
// on top of the same seal) can still push a replayed reading past it
// and surface as an explicit stale-drop instead of a silently late
// record.
const SENSOR_LOG_TICS_SRC: &str = "
@expires_after = 2ms
int reading;
int main() {
    for (int id = 1; id < 11; id = id + 1) {
        int a = tx_begin(id);
        if (a >= 0) {
            int hi = 0;
            int lo = 0;
            int ok = 0;
            while (ok == 0) {
                i2c_reset();
                i2c_start(64);
                hi = i2c_read();
                lo = i2c_read();
                ok = i2c_stop();
            }
            tx_commit(id);
            reading @= hi * 256 + lo;
            @expires(reading) { print(id * 16384 + reading); }
            catch { print(0 - id); }
        }
    }
    return 0;
}
";

const SENSOR_LOG_TASK_SRC: &str = "
nv int cur_task;
nv int id;
int task_seed() {
    id = 1;
    return 1;
}
int task_txn() {
    int a = tx_begin(id);
    if (a < 0) { return 2; }
    i2c_reset();
    i2c_start(64);
    int hi = i2c_read();
    int lo = i2c_read();
    int ok = i2c_stop();
    if (ok == 0) { return 1; }
    tx_commit(id);
    print(id * 16384 + hi * 256 + lo);
    return 2;
}
int task_next() {
    id = id + 1;
    if (id < 11) { return 1; }
    return 3;
}
int main() {
    while (cur_task < 3) {
        if (cur_task == 0) { cur_task = task_seed(); }
        else {
            if (cur_task == 1) { cur_task = task_txn(); }
            else { cur_task = task_next(); }
        }
    }
    return 0;
}
";

const SENSOR_LOG_TASKS: &[&str] = &["task_seed", "task_txn", "task_next"];

const TELEMETRY_SRC: &str = "
int main() {
    for (int seq = 1; seq < 13; seq = seq + 1) {
        int a = tx_begin(seq);
        if (a >= 0) {
            int p = (seq * 37 + 11) % 97;
            int c = (seq * 7 + a * 13 + p * 3 + 5) % 128;
            int sent = 0;
            while (sent < 5) {
                sent = uart_tx(165);
                sent = sent + uart_tx(seq);
                sent = sent + uart_tx(a);
                sent = sent + uart_tx(p);
                sent = sent + uart_tx(c);
            }
            tx_commit(seq);
            print(seq);
        }
    }
    return 0;
}
";

const TELEMETRY_TASK_SRC: &str = "
nv int cur_task;
nv int seq;
int task_seed() {
    seq = 1;
    return 1;
}
int task_frame() {
    int a = tx_begin(seq);
    if (a < 0) { return 2; }
    int p = (seq * 37 + 11) % 97;
    int c = (seq * 7 + a * 13 + p * 3 + 5) % 128;
    int sent = uart_tx(165);
    sent = sent + uart_tx(seq);
    sent = sent + uart_tx(a);
    sent = sent + uart_tx(p);
    sent = sent + uart_tx(c);
    if (sent < 5) { return 1; }
    tx_commit(seq);
    print(seq);
    return 2;
}
int task_next() {
    seq = seq + 1;
    if (seq < 13) { return 1; }
    return 3;
}
int main() {
    while (cur_task < 3) {
        if (cur_task == 0) { cur_task = task_seed(); }
        else {
            if (cur_task == 1) { cur_task = task_frame(); }
            else { cur_task = task_next(); }
        }
    }
    return 0;
}
";

const TELEMETRY_TASKS: &[&str] = &["task_seed", "task_frame", "task_next"];

const REQRESP_SRC: &str = "
int main() {
    for (int id = 1; id < 11; id = id + 1) {
        int a = tx_begin(id);
        if (a >= 0) {
            int junk = 0;
            while (junk >= 0) { junk = uart_rx(); }
            int sent = 0;
            while (sent == 0) { sent = uart_tx(id * 11 % 128); }
            int r = 0 - 1;
            while (r < 0) { r = uart_rx(); }
            tx_commit(id);
            print(id * 256 + r);
        }
    }
    return 0;
}
";

impl PeriphWorkload {
    /// The whole corpus, grid order.
    pub const ALL: [PeriphWorkload; 3] = [
        PeriphWorkload::SensorLog,
        PeriphWorkload::Telemetry,
        PeriphWorkload::ReqResp,
    ];

    /// Journal label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PeriphWorkload::SensorLog => "i2c-sensor-log",
            PeriphWorkload::Telemetry => "uart-telemetry",
            PeriphWorkload::ReqResp => "uart-reqresp",
        }
    }

    /// Parses a journal label back into a workload.
    #[must_use]
    pub fn from_name(name: &str) -> Option<PeriphWorkload> {
        PeriphWorkload::ALL.into_iter().find(|w| w.name() == name)
    }

    /// Transactions the workload issues (ids `1..=txns`).
    #[must_use]
    pub fn txns(self) -> u32 {
        match self {
            PeriphWorkload::SensorLog => SENSOR_TXNS,
            PeriphWorkload::Telemetry => TELEMETRY_TXNS,
            PeriphWorkload::ReqResp => REQRESP_TXNS,
        }
    }

    fn legacy_src(self, system: SystemUnderTest) -> &'static str {
        match self {
            PeriphWorkload::SensorLog if system == SystemUnderTest::Tics => SENSOR_LOG_TICS_SRC,
            PeriphWorkload::SensorLog => SENSOR_LOG_SRC,
            PeriphWorkload::Telemetry => TELEMETRY_SRC,
            PeriphWorkload::ReqResp => REQRESP_SRC,
        }
    }

    fn task_src(self) -> Option<(&'static str, &'static [&'static str])> {
        match self {
            PeriphWorkload::SensorLog => Some((SENSOR_LOG_TASK_SRC, SENSOR_LOG_TASKS)),
            PeriphWorkload::Telemetry => Some((TELEMETRY_TASK_SRC, TELEMETRY_TASKS)),
            // The drain/await loops have no loop-free task decomposition.
            PeriphWorkload::ReqResp => None,
        }
    }
}

/// Builds (compiles + instruments) a peripheral workload for `system`,
/// mirroring the per-system rules of
/// [`crate::fault::build_fault_program`]: task kernels get the
/// hand-ported task graph (one transaction attempt per loop-free task
/// body), TICS gets the `@expires`-annotated sensor variant, Chinchilla
/// compiles at `-O0`.
///
/// # Errors
///
/// Returns a human-readable reason for infeasible cells (no task port)
/// and for compile failures.
pub fn build_periph_program(
    workload: PeriphWorkload,
    system: SystemUnderTest,
) -> Result<Program, String> {
    if system.is_task_based() {
        let Some((src, tasks)) = workload.task_src() else {
            return Err(format!(
                "{} has no loop-free task-graph port",
                workload.name()
            ));
        };
        let flavor = match system {
            SystemUnderTest::Alpaca => TaskFlavor::Alpaca,
            SystemUnderTest::Ink => TaskFlavor::Ink,
            _ => TaskFlavor::Mayfly,
        };
        let mut prog = compile(src, OptLevel::O1).map_err(|e| e.to_string())?;
        passes::instrument_task_based(
            &mut prog,
            tasks,
            flavor.runtime_text_bytes(),
            flavor.runtime_data_bytes(),
        )
        .map_err(|e| e.to_string())?;
        return Ok(prog);
    }
    let opt = if system == SystemUnderTest::Chinchilla {
        OptLevel::O0
    } else {
        OptLevel::O1
    };
    let mut prog =
        compile(workload.legacy_src(system), opt).map_err(|e| e.to_string())?;
    match system {
        SystemUnderTest::PlainC => {}
        SystemUnderTest::Tics => passes::instrument_tics(&mut prog).map_err(|e| e.to_string())?,
        SystemUnderTest::Mementos => {
            passes::instrument_mementos(&mut prog).map_err(|e| e.to_string())?;
        }
        SystemUnderTest::Chinchilla => {
            passes::instrument_chinchilla(&mut prog).map_err(|e| e.to_string())?;
        }
        SystemUnderTest::Ratchet => {
            passes::instrument_ratchet(&mut prog).map_err(|e| e.to_string())?;
        }
        _ => unreachable!("task systems handled above"),
    }
    Ok(prog)
}

// ---------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------

/// One parsed telemetry frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Monotone sequence number (`1..=TELEMETRY_TXNS`).
    pub seq: u8,
    /// Driver attempt counter the frame was sent under.
    pub attempt: u8,
    /// Payload byte.
    pub payload: u8,
}

/// The deterministic payload the workload computes for `seq`.
#[must_use]
pub fn expected_payload(seq: u8) -> u8 {
    ((u32::from(seq) * 37 + 11) % 97) as u8
}

fn frame_checksum(seq: u8, attempt: u8, payload: u8) -> u8 {
    ((u32::from(seq) * 7 + u32::from(attempt) * 13 + u32::from(payload) * 3 + 5) % 128) as u8
}

/// The request byte the req/resp workload sends for transaction `id`.
#[must_use]
pub fn request_byte(id: u32) -> u8 {
    ((id * 11) % 128) as u8
}

/// Parses valid frames out of a device-side wire log. A valid frame is
/// five consecutive *untorn* bytes: the `0xA5` header, three bytes
/// below 0x80, and a matching checksum. Anything else (torn symbols,
/// partial frames cut by a power failure) is framing garbage the
/// receiver discards; the parser resynchronizes on the next header.
#[must_use]
pub fn parse_frames(wire: &[WireByte]) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut i = 0;
    while i + 5 <= wire.len() {
        let w = &wire[i..i + 5];
        let valid = w.iter().all(|b| !b.torn)
            && w[0].byte == TELEMETRY_HDR
            && w[1..].iter().all(|b| b.byte < 0x80)
            && w[4].byte == frame_checksum(w[1].byte, w[2].byte, w[3].byte);
        if valid {
            frames.push(Frame {
                seq: w[1].byte,
                attempt: w[2].byte,
                payload: w[3].byte,
            });
            i += 5;
        } else {
            i += 1;
        }
    }
    frames
}

// ---------------------------------------------------------------------
// Golden capture and faulted trials
// ---------------------------------------------------------------------

/// The reference run on continuous power, including the device's view.
#[derive(Debug, Clone)]
pub struct PeriphGolden {
    /// `print` values in emission order.
    pub prints: Vec<i32>,
    /// Valid telemetry frames on the golden wire (all attempt 0).
    pub frames: Vec<Frame>,
    /// Sensor readings the device served.
    pub served: Vec<ServedRead>,
    /// Exit code of the completed run.
    pub exit_code: i32,
    /// On-time cycles — the fault-plan span.
    pub on_cycles: u64,
}

/// One faulted replay with the device-side wire logs the oracle needs
/// (the [`crate::fault::Trial`] shape, plus everything that persists on
/// the far side of the pins).
#[derive(Debug)]
pub struct PeriphTrial {
    /// How the executor finished (or the error it surfaced).
    pub outcome: Result<RunOutcome, VmError>,
    /// The run's recorded trace.
    pub trace: Vec<TraceRecord>,
    /// Power failures injected.
    pub power_failures: u64,
    /// Stores the brown-out model corrupted.
    pub corrupted_writes: u64,
    /// On-time cycles consumed.
    pub cycles: u64,
    /// Every byte the UART device saw, torn symbols included.
    pub uart_wire: Vec<WireByte>,
    /// Sensor readings the I2C device served (completed transactions).
    pub i2c_served: Vec<ServedRead>,
}

fn prints_of(trace: &[TraceRecord]) -> Vec<i32> {
    trace
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Print { value } => Some(value),
            _ => None,
        })
        .collect()
}

/// Runs `prog` under `system` on continuous power and records the
/// golden trace plus the device-side logs.
///
/// # Errors
///
/// A golden run that does not finish, or that never prints, is a corpus
/// or runtime bug, not a fault-injection result.
pub fn periph_golden(prog: &Program, system: SystemUnderTest) -> Result<PeriphGolden, String> {
    let mut m = Machine::new(prog.clone(), MachineConfig::default())
        .map_err(|e| format!("golden load failed: {e}"))?;
    let mut rt = make_runtime(system, prog);
    let out = Executor::new()
        .with_time_budget(30_000_000_000)
        .run(&mut m, rt.as_mut(), &mut ContinuousPower::new());
    match out {
        Ok(RunOutcome::Finished(code)) => {
            let prints = prints_of(m.trace().records());
            if prints.is_empty() {
                return Err("golden run printed nothing".to_string());
            }
            Ok(PeriphGolden {
                prints,
                frames: parse_frames(m.periph.uart.wire()),
                served: m.periph.i2c.served().to_vec(),
                exit_code: code,
                on_cycles: m.cycles(),
            })
        }
        Ok(other) => Err(format!("golden run did not finish: {other:?}")),
        Err(e) => Err(format!("golden run trapped: {e}")),
    }
}

/// Replays `prog` under `system` with power dying per `plan`, keeping
/// the device-side wire logs for the oracle.
#[must_use]
pub fn run_periph_plan(
    prog: &Program,
    system: SystemUnderTest,
    plan: &FaultPlan,
    budget_us: u64,
    guard_boots: u64,
) -> PeriphTrial {
    let mut m = match Machine::new(prog.clone(), MachineConfig::default()) {
        Ok(m) => m,
        Err(e) => {
            return PeriphTrial {
                outcome: Err(e),
                trace: Vec::new(),
                power_failures: 0,
                corrupted_writes: 0,
                cycles: 0,
                uart_wire: Vec::new(),
                i2c_served: Vec::new(),
            }
        }
    };
    if let Some(c) = &plan.corruption {
        m.mem.set_corruption(Some(
            CorruptionModel::new(c.window, c.flip_prob, c.drop_prob, c.seed)
                .with_sram_decay(c.sram_decay),
        ));
    }
    let mut rt = make_runtime(system, prog);
    let mut supply = AdversarialSupply::new(plan.clone());
    // Same containment as `fault::run_plan`: corrupted state can drive
    // the VM into a panic; judge it as a loud death, not a harness kill.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Executor::new()
            .with_time_budget(budget_us)
            .with_progress_guard(guard_boots)
            .run(&mut m, rt.as_mut(), &mut supply)
    }))
    .unwrap_or_else(|payload| {
        let text = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(VmError::Trap(format!("vm crashed on corrupted state: {text}")))
    });
    PeriphTrial {
        outcome,
        trace: m.trace().records().to_vec(),
        power_failures: m.stats().power_failures,
        corrupted_writes: m.mem.stats().corrupted_writes,
        cycles: m.cycles(),
        uart_wire: m.periph.uart.wire().to_vec(),
        i2c_served: m.periph.i2c.served().to_vec(),
    }
}

/// Adapter so the fault-plan span helper accepts a peripheral golden.
#[must_use]
pub fn periph_budget_us(golden: &PeriphGolden) -> u64 {
    fault_budget_us(&Golden {
        events: Vec::new(),
        exit_code: golden.exit_code,
        on_cycles: golden.on_cycles,
    })
}

// ---------------------------------------------------------------------
// The detect-or-recover oracle
// ---------------------------------------------------------------------

/// Degradation a recovered replay paid — never a violation, always
/// reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryNotes {
    /// Committed transactions whose app-level print never happened
    /// (power died in the commit→print window, or the txn poisoned).
    pub gaps: u64,
    /// Prints re-emitted verbatim after a reboot (checkpoint landed
    /// between `tx_commit` and `print`; content-identical, dedupable).
    pub replayed_prints: u64,
    /// TICS stale-drops: readings explicitly discarded via `@expires`.
    pub stale_drops: u64,
    /// Device-served sensor readings no print consumed (a retry after a
    /// commit-window cut re-reads; the orphan is wire-visible cost).
    pub orphan_serves: u64,
}

impl RecoveryNotes {
    fn is_clean(self) -> bool {
        self == RecoveryNotes::default()
    }
}

/// The oracle's judgment of one faulted peripheral replay.
#[derive(Debug, Clone, PartialEq)]
pub enum PeriphVerdict {
    /// Finished with golden-equivalent delivery and no degradation.
    Clean,
    /// Finished (or died loudly mid-run) with every wire invariant
    /// intact, paying the recorded degradation.
    Recovered(RecoveryNotes),
    /// Trapped loudly — fail-stop is an acceptable answer to torn wires
    /// and corrupted state; lying is not.
    Detected {
        /// Trap description.
        detail: String,
    },
    /// A wire or delivery invariant broke: duplicated `(seq, attempt)`,
    /// regressed/mutated prints, readings never served, wrong exit.
    Violation {
        /// What broke, in device-side terms.
        detail: String,
    },
    /// No progress across many consecutive reboots.
    Livelock {
        /// Reboots the guard observed.
        boots: u64,
    },
    /// Never finished inside the (generous) budget.
    Incomplete {
        /// Executor outcome text.
        outcome: String,
    },
}

impl PeriphVerdict {
    /// Short journal label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PeriphVerdict::Clean => "clean",
            PeriphVerdict::Recovered(_) => "recovered",
            PeriphVerdict::Detected { .. } => "detected",
            PeriphVerdict::Violation { .. } => "violation",
            PeriphVerdict::Livelock { .. } => "livelock",
            PeriphVerdict::Incomplete { .. } => "incomplete",
        }
    }
}

/// One decoded app-level print.
#[derive(Debug, Clone, Copy)]
struct DecodedPrint {
    id: u32,
    /// Payload carried by the print; `None` for a TICS stale-drop.
    value: Option<i32>,
    /// Reboots seen before this print (duplicates are only legal with a
    /// reboot in between).
    boot: u64,
}

fn decode_prints(
    workload: PeriphWorkload,
    trace: &[TraceRecord],
) -> Result<Vec<DecodedPrint>, String> {
    let n = workload.txns();
    let mut boots = 0u64;
    let mut out = Vec::new();
    for r in trace {
        let value = match r.event {
            TraceEvent::PowerFailure { .. } => {
                boots += 1;
                continue;
            }
            TraceEvent::Print { value } => value,
            _ => continue,
        };
        let decoded = match workload {
            PeriphWorkload::SensorLog => {
                if value < 0 {
                    DecodedPrint {
                        id: value.unsigned_abs(),
                        value: None,
                        boot: boots,
                    }
                } else {
                    DecodedPrint {
                        id: (value / 16384) as u32,
                        value: Some(value % 16384),
                        boot: boots,
                    }
                }
            }
            PeriphWorkload::Telemetry => DecodedPrint {
                id: u32::try_from(value).unwrap_or(0),
                value: Some(value),
                boot: boots,
            },
            PeriphWorkload::ReqResp => {
                if value < 0 {
                    return Err(format!("negative req/resp print {value}"));
                }
                DecodedPrint {
                    id: (value / 256) as u32,
                    value: Some(value % 256),
                    boot: boots,
                }
            }
        };
        if decoded.id == 0 || decoded.id > n {
            return Err(format!(
                "print {value} decodes to transaction id {} outside 1..={n}",
                decoded.id
            ));
        }
        out.push(decoded);
    }
    Ok(out)
}

/// Judges one faulted replay against the golden run and the device-side
/// wire logs. Wire invariants are checked on whatever prefix the run
/// emitted, so even an incomplete or livelocked replay that duplicated
/// a frame is a violation.
#[must_use]
pub fn judge_periph(
    workload: PeriphWorkload,
    golden: &PeriphGolden,
    trial: &PeriphTrial,
) -> PeriphVerdict {
    let mut notes = RecoveryNotes::default();

    // --- wire-level invariants ---
    if workload == PeriphWorkload::Telemetry {
        let frames = parse_frames(&trial.uart_wire);
        let mut seen: Vec<(u8, u8)> = Vec::new();
        for f in &frames {
            if seen.contains(&(f.seq, f.attempt)) {
                return PeriphVerdict::Violation {
                    detail: format!(
                        "frame (seq {}, attempt {}) appeared twice on the wire — \
                         a blind replay, not a tagged retry",
                        f.seq, f.attempt
                    ),
                };
            }
            seen.push((f.seq, f.attempt));
            if f.payload != expected_payload(f.seq) {
                return PeriphVerdict::Violation {
                    detail: format!(
                        "frame seq {} carries payload {} but the protocol value is {}",
                        f.seq,
                        f.payload,
                        expected_payload(f.seq)
                    ),
                };
            }
        }
    }

    // --- app-level delivery stream ---
    let prints = match decode_prints(workload, &trial.trace) {
        Ok(p) => p,
        Err(detail) => return PeriphVerdict::Violation { detail },
    };
    let mut last: Option<DecodedPrint> = None;
    let mut first_of_id: Vec<DecodedPrint> = Vec::new();
    for p in &prints {
        if let Some(prev) = last {
            if p.id < prev.id {
                return PeriphVerdict::Violation {
                    detail: format!(
                        "print stream regressed from transaction {} to {} — \
                         replayed work the journal should have skipped",
                        prev.id, p.id
                    ),
                };
            }
            if p.id == prev.id {
                if p.boot == prev.boot {
                    return PeriphVerdict::Violation {
                        detail: format!(
                            "transaction {} printed twice within one power-on period",
                            p.id
                        ),
                    };
                }
                // A fresh print replayed as a stale marker is legal
                // TICS behavior: a checkpoint sealed inside the timed
                // block replays it after the outage, and the `@expires`
                // guard now (correctly) routes the same reading to the
                // catch arm. The consumer sees an explicit discard for
                // an id it already has — annoying, not silent.
                let fresh_then_stale = prev.value.is_some() && p.value.is_none();
                if p.value != prev.value && !fresh_then_stale {
                    return PeriphVerdict::Violation {
                        detail: format!(
                            "transaction {} printed twice with different payloads \
                             ({:?} then {:?})",
                            p.id, prev.value, p.value
                        ),
                    };
                }
                notes.replayed_prints += 1;
            }
        }
        if last.is_none_or(|prev| prev.id != p.id) {
            first_of_id.push(*p);
        }
        last = Some(*p);
    }
    notes.stale_drops = first_of_id.iter().filter(|p| p.value.is_none()).count() as u64;

    // --- payload validity against the device's ground truth ---
    match workload {
        PeriphWorkload::SensorLog => {
            // Each printed reading must appear in the sensor's own
            // served log, in order. Serves without a print (a retry
            // after a commit-window cut consumed an extra reading) are
            // orphans: wire-visible cost, not a violation.
            let mut cursor = 0usize;
            for p in first_of_id.iter().filter(|p| p.value.is_some()) {
                let want = p.value.unwrap_or(0);
                let found = trial.i2c_served[cursor..]
                    .iter()
                    .position(|s| i32::from(s.value) == want);
                match found {
                    Some(off) => cursor += off + 1,
                    None => {
                        return PeriphVerdict::Violation {
                            detail: format!(
                                "transaction {} printed reading {want} but the sensor \
                                 never served it at or after serve index {cursor}",
                                p.id
                            ),
                        }
                    }
                }
            }
            // Orphans: serves no print consumed. Stale-dropped prints
            // still consumed a serve on the wire, so they count too —
            // their reading reached the MCU and was discarded.
            let matched = first_of_id.iter().filter(|p| p.value.is_some()).count();
            notes.orphan_serves = trial.i2c_served.len().saturating_sub(matched) as u64;
        }
        PeriphWorkload::Telemetry => {
            let frames = parse_frames(&trial.uart_wire);
            for p in &first_of_id {
                if !frames.iter().any(|f| u32::from(f.seq) == p.id) {
                    return PeriphVerdict::Violation {
                        detail: format!(
                            "transaction {} committed and printed but no valid frame \
                             for it ever crossed the wire",
                            p.id
                        ),
                    };
                }
            }
        }
        PeriphWorkload::ReqResp => {
            for p in &first_of_id {
                let expect = i32::from(Uart::respond(request_byte(p.id)));
                if p.value != Some(expect) {
                    return PeriphVerdict::Violation {
                        detail: format!(
                            "transaction {} printed response {:?} but the device \
                             answers {expect} — a stale FIFO byte was consumed",
                            p.id, p.value
                        ),
                    };
                }
            }
        }
    }

    // --- outcome ---
    match &trial.outcome {
        Err(VmError::NoForwardProgress { boots, .. }) => {
            return PeriphVerdict::Livelock { boots: *boots }
        }
        Err(e) => {
            return PeriphVerdict::Detected {
                detail: e.to_string(),
            }
        }
        Ok(RunOutcome::Finished(code)) => {
            if *code != golden.exit_code {
                return PeriphVerdict::Violation {
                    detail: format!(
                        "finished with exit {code}, golden exit is {}",
                        golden.exit_code
                    ),
                };
            }
            notes.gaps = u64::from(workload.txns()).saturating_sub(first_of_id.len() as u64);
        }
        Ok(RunOutcome::Starved { boots }) => return PeriphVerdict::Livelock { boots: *boots },
        Ok(other) => {
            return PeriphVerdict::Incomplete {
                outcome: format!("{other:?}"),
            }
        }
    }

    if notes.is_clean() && trial.power_failures == 0 {
        PeriphVerdict::Clean
    } else {
        PeriphVerdict::Recovered(notes)
    }
}

// ---------------------------------------------------------------------
// Cell driver
// ---------------------------------------------------------------------

/// Aggregated verdicts of one (workload × system × corruption-rate)
/// cell, judged detect-or-recover: every trial must either deliver a
/// wire-consistent stream (possibly degraded: gaps, tagged retries,
/// stale-drops) or die loudly. Silent wire corruption — duplicated
/// untagged frames, mutated or regressed prints, stale responses — is
/// the violation the gate counts.
#[derive(Debug, Clone, Default)]
pub struct PeriphReport {
    /// Trials executed.
    pub trials: u64,
    /// Finished bit-identical to golden delivery with no degradation.
    pub clean: u64,
    /// Wire-consistent with recorded degradation.
    pub recovered: u64,
    /// Died loudly (trap) with the wire still consistent.
    pub detected: u64,
    /// Wire/delivery invariant violations — the oracle's failures.
    pub violations: u64,
    /// Live-lock diagnoses.
    pub livelocks: u64,
    /// Never finished inside the budget.
    pub incomplete: u64,
    /// Driver retries across all trials (`TxnRetry` events).
    pub retries: u64,
    /// Replay skips the journal answered (`TxnSkip` events).
    pub txn_skips: u64,
    /// Transactions poisoned after exhausting the retry budget.
    pub poisoned: u64,
    /// Content-identical replayed prints (dedupable duplicates).
    pub replayed_prints: u64,
    /// Committed transactions whose print never happened.
    pub gaps: u64,
    /// TICS `@expires` stale-drops.
    pub stale_drops: u64,
    /// Sensor serves no print consumed.
    pub orphan_serves: u64,
    /// Power failures injected across all trials.
    pub failures_injected: u64,
    /// Stores the brown-out model corrupted across all trials.
    pub corrupted_writes: u64,
    /// On-time cycles simulated across all trials.
    pub total_cycles: u64,
    /// Detail of the first violation, for the journal.
    pub first_violation: Option<String>,
    /// Wire-log exhibit of the first violating trial.
    pub wire_exhibit: Option<Json>,
}

impl PeriphReport {
    /// Fraction of trials that stayed wire-consistent or died loudly.
    /// The gate demands `1.0` from every runtime claiming consistency.
    #[must_use]
    pub fn detect_or_recover_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        1.0 - self.violations as f64 / self.trials as f64
    }
}

fn count_event(trace: &[TraceRecord], pred: impl Fn(&TraceEvent) -> bool) -> u64 {
    trace.iter().filter(|r| pred(&r.event)).count() as u64
}

/// A JSON exhibit of one trial's device-side wire state — what a logic
/// analyzer on the bus would have captured. Written as a CI artifact
/// when the gate fails, so a violation is debuggable from the wire logs
/// alone.
#[must_use]
pub fn wire_exhibit_json(
    workload: PeriphWorkload,
    system: SystemUnderTest,
    plan: &FaultPlan,
    trial: &PeriphTrial,
    detail: &str,
) -> Json {
    let wire_tail: Vec<Json> = trial
        .uart_wire
        .iter()
        .rev()
        .take(160)
        .rev()
        .map(|b| {
            Json::obj()
                .field("byte", u32::from(b.byte))
                .field("torn", b.torn)
                .field("at_us", b.at_us)
                .build()
        })
        .collect();
    let frames: Vec<Json> = parse_frames(&trial.uart_wire)
        .iter()
        .map(|f| {
            Json::obj()
                .field("seq", u32::from(f.seq))
                .field("attempt", u32::from(f.attempt))
                .field("payload", u32::from(f.payload))
                .build()
        })
        .collect();
    let served: Vec<Json> = trial
        .i2c_served
        .iter()
        .map(|s| {
            Json::obj()
                .field("index", s.index)
                .field("value", u32::from(s.value))
                .field("at_us", s.at_us)
                .build()
        })
        .collect();
    Json::obj()
        .field("workload", workload.name())
        .field("system", system.name())
        .field("detail", detail)
        .field("cuts", crate::fault::cuts_string(plan))
        .field("power_failures", trial.power_failures)
        .field("corrupted_writes", trial.corrupted_writes)
        .field("prints", prints_of(&trial.trace))
        .field("uart_wire_tail", Json::Arr(wire_tail))
        .field("frames", Json::Arr(frames))
        .field("i2c_served", Json::Arr(served))
        .build()
}

/// Runs `trials` seeded multi-cut plans (brown-out corruption at `rate`
/// riding on every cut when `rate > 0`) and folds the detect-or-recover
/// verdicts. Deterministic: same seed, same plans, same wire streams —
/// golden and faulted runs share [`MachineConfig::default`], so the
/// sensor serves the same reading series.
#[must_use]
pub fn run_periph_cell(
    workload: PeriphWorkload,
    prog: &Program,
    system: SystemUnderTest,
    golden: &PeriphGolden,
    rate: f64,
    trials: usize,
    seed: u64,
) -> PeriphReport {
    let budget = periph_budget_us(golden);
    let mut report = PeriphReport::default();
    for i in 0..trials {
        let s = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let mut plan = FaultPlan::random(s, golden.on_cycles, 1 + i % 3, OFF_US);
        if rate > 0.0 {
            plan = plan.with_corruption(Corruption::with_rate(CHAOS_WINDOW, rate, splitmix64(s)));
        }
        let trial = run_periph_plan(prog, system, &plan, budget, GUARD_BOOTS);
        let verdict = judge_periph(workload, golden, &trial);
        report.trials += 1;
        report.failures_injected += trial.power_failures;
        report.corrupted_writes += trial.corrupted_writes;
        report.total_cycles += trial.cycles;
        report.retries += count_event(&trial.trace, |e| matches!(e, TraceEvent::TxnRetry { .. }));
        report.txn_skips += count_event(&trial.trace, |e| matches!(e, TraceEvent::TxnSkip { .. }));
        report.poisoned +=
            count_event(&trial.trace, |e| matches!(e, TraceEvent::TxnPoisoned { .. }));
        match &verdict {
            PeriphVerdict::Clean => report.clean += 1,
            PeriphVerdict::Recovered(n) => {
                report.recovered += 1;
                report.replayed_prints += n.replayed_prints;
                report.gaps += n.gaps;
                report.stale_drops += n.stale_drops;
                report.orphan_serves += n.orphan_serves;
            }
            PeriphVerdict::Detected { .. } => report.detected += 1,
            PeriphVerdict::Violation { detail } => {
                report.violations += 1;
                if report.first_violation.is_none() {
                    report.first_violation = Some(detail.clone());
                    report.wire_exhibit =
                        Some(wire_exhibit_json(workload, system, &plan, &trial, detail));
                }
            }
            PeriphVerdict::Livelock { .. } => report.livelocks += 1,
            PeriphVerdict::Incomplete { .. } => report.incomplete += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tics_trace::I2cPhase;

    fn wire(bytes: &[(u8, bool)]) -> Vec<WireByte> {
        bytes
            .iter()
            .enumerate()
            .map(|(i, &(byte, torn))| WireByte {
                byte,
                torn,
                at_us: i as u64 * 10,
            })
            .collect()
    }

    fn frame_bytes(seq: u8, attempt: u8) -> [(u8, bool); 5] {
        let p = expected_payload(seq);
        [
            (TELEMETRY_HDR, false),
            (seq, false),
            (attempt, false),
            (p, false),
            (frame_checksum(seq, attempt, p), false),
        ]
    }

    #[test]
    fn parser_extracts_frames_and_skips_torn_garbage() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_bytes(1, 0));
        // A torn partial frame (power died mid-send) …
        bytes.push((TELEMETRY_HDR, false));
        bytes.push((2, false));
        bytes.push((0, true));
        // … then the tagged retry.
        bytes.extend_from_slice(&frame_bytes(2, 1));
        let frames = parse_frames(&wire(&bytes));
        assert_eq!(frames.len(), 2);
        assert_eq!((frames[0].seq, frames[0].attempt), (1, 0));
        assert_eq!((frames[1].seq, frames[1].attempt), (2, 1));
    }

    #[test]
    fn parser_never_accepts_a_partial_prefix_as_a_frame() {
        // An untorn partial header followed by a real frame must not
        // fuse into a bogus frame: non-header bytes are all < 0x80, so
        // the embedded 0xA5 disqualifies the misaligned window.
        let mut bytes = vec![(TELEMETRY_HDR, false), (3, false), (0, false)];
        bytes.extend_from_slice(&frame_bytes(3, 1));
        let frames = parse_frames(&wire(&bytes));
        assert_eq!(frames.len(), 1);
        assert_eq!((frames[0].seq, frames[0].attempt), (3, 1));
    }

    fn print_rec(value: i32, at_us: u64) -> TraceRecord {
        TraceRecord {
            at_us,
            cycle: at_us,
            event: TraceEvent::Print { value },
        }
    }

    fn failure_rec(at_us: u64) -> TraceRecord {
        TraceRecord {
            at_us,
            cycle: at_us,
            event: TraceEvent::PowerFailure { off_us: OFF_US },
        }
    }

    fn served(values: &[u16]) -> Vec<ServedRead> {
        values
            .iter()
            .enumerate()
            .map(|(i, &value)| ServedRead {
                index: i as u32,
                value,
                at_us: i as u64 * 100,
            })
            .collect()
    }

    fn sensor_golden() -> PeriphGolden {
        PeriphGolden {
            prints: (1..=SENSOR_TXNS as i32).map(|id| id * 16384 + 100 + id).collect(),
            frames: Vec::new(),
            served: served(&[101, 102, 103]),
            exit_code: 0,
            on_cycles: 10_000,
        }
    }

    fn sensor_trial(trace: Vec<TraceRecord>, serves: &[u16]) -> PeriphTrial {
        PeriphTrial {
            outcome: Ok(RunOutcome::Finished(0)),
            trace,
            power_failures: 1,
            corrupted_writes: 0,
            cycles: 5_000,
            uart_wire: Vec::new(),
            i2c_served: served(serves),
        }
    }

    #[test]
    fn oracle_accepts_gaps_and_identical_replayed_prints() {
        // Prints for ids 1 and 2 (id 2 replayed verbatim after a
        // reboot), id 3 committed but its print gapped out; ids 4..=10
        // also gapped (run "finished" early in this synthetic trace).
        let trace = vec![
            print_rec(16384 + 101, 10),
            print_rec(2 * 16384 + 102, 20),
            failure_rec(30),
            print_rec(2 * 16384 + 102, 40),
        ];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(trace, &[101, 102, 103]),
        );
        match v {
            PeriphVerdict::Recovered(n) => {
                assert_eq!(n.replayed_prints, 1);
                assert_eq!(n.gaps, 8);
                assert_eq!(n.orphan_serves, 1);
            }
            other => panic!("expected recovered, got {other:?}"),
        }
    }

    #[test]
    fn oracle_flags_duplicate_print_with_mutated_payload() {
        // The naive signature on the sensor: a replayed transaction
        // re-reads the device (cursor advanced) and prints a different
        // reading under the same id.
        let trace = vec![
            print_rec(16384 + 101, 10),
            failure_rec(20),
            print_rec(16384 + 102, 30),
        ];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(trace, &[101, 102]),
        );
        assert!(
            matches!(v, PeriphVerdict::Violation { .. }),
            "got {v:?}"
        );
    }

    #[test]
    fn oracle_accepts_fresh_print_replayed_as_stale_marker() {
        // TICS seals a checkpoint inside the timed block: a cut after
        // the fresh print replays the block, and `@expires` now routes
        // the same reading to the catch arm. Fresh-then-stale across a
        // reboot is recovery; the reverse order (or either within one
        // boot) stays a violation, because time only moves forward.
        let trace = vec![
            print_rec(16384 + 101, 10),
            failure_rec(20),
            print_rec(-1, 30),
        ];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(trace, &[101]),
        );
        match v {
            PeriphVerdict::Recovered(n) => assert_eq!(n.replayed_prints, 1),
            other => panic!("expected recovered, got {other:?}"),
        }

        let stale_then_fresh = vec![
            print_rec(-1, 10),
            failure_rec(20),
            print_rec(16384 + 101, 30),
        ];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(stale_then_fresh, &[101]),
        );
        assert!(matches!(v, PeriphVerdict::Violation { .. }), "got {v:?}");

        let same_boot = vec![print_rec(16384 + 101, 10), print_rec(-1, 20)];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(same_boot, &[101]),
        );
        assert!(matches!(v, PeriphVerdict::Violation { .. }), "got {v:?}");
    }

    #[test]
    fn oracle_flags_regressed_print_stream() {
        // The bare-runtime signature: main restarts, ids start over.
        let trace = vec![
            print_rec(16384 + 101, 10),
            print_rec(2 * 16384 + 102, 20),
            failure_rec(30),
            print_rec(16384 + 103, 40),
        ];
        let v = judge_periph(
            PeriphWorkload::SensorLog,
            &sensor_golden(),
            &sensor_trial(trace, &[101, 102, 103]),
        );
        assert!(matches!(v, PeriphVerdict::Violation { .. }), "got {v:?}");
    }

    #[test]
    fn oracle_flags_duplicate_untagged_frame() {
        let golden = PeriphGolden {
            prints: vec![1],
            frames: Vec::new(),
            served: Vec::new(),
            exit_code: 0,
            on_cycles: 10_000,
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_bytes(1, 0));
        bytes.extend_from_slice(&frame_bytes(1, 0)); // blind replay
        let trial = PeriphTrial {
            outcome: Ok(RunOutcome::Finished(0)),
            trace: vec![print_rec(1, 10)],
            power_failures: 1,
            corrupted_writes: 0,
            cycles: 5_000,
            uart_wire: wire(&bytes),
            i2c_served: Vec::new(),
        };
        let v = judge_periph(PeriphWorkload::Telemetry, &golden, &trial);
        assert!(matches!(v, PeriphVerdict::Violation { .. }), "got {v:?}");
    }

    #[test]
    fn oracle_accepts_attempt_tagged_retry() {
        let golden = PeriphGolden {
            prints: vec![1],
            frames: Vec::new(),
            served: Vec::new(),
            exit_code: 0,
            on_cycles: 10_000,
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_bytes(1, 0));
        bytes.extend_from_slice(&frame_bytes(1, 1)); // tagged retry
        let trial = PeriphTrial {
            outcome: Ok(RunOutcome::Finished(0)),
            trace: vec![print_rec(1, 10)],
            power_failures: 1,
            corrupted_writes: 0,
            cycles: 5_000,
            uart_wire: wire(&bytes),
            i2c_served: Vec::new(),
        };
        let v = judge_periph(PeriphWorkload::Telemetry, &golden, &trial);
        match v {
            PeriphVerdict::Recovered(n) => assert_eq!(n.gaps, TELEMETRY_TXNS as u64 - 1),
            other => panic!("expected recovered, got {other:?}"),
        }
    }

    #[test]
    fn oracle_flags_stale_reqresp_payload() {
        let golden = PeriphGolden {
            prints: vec![256 + i32::from(Uart::respond(request_byte(1)))],
            frames: Vec::new(),
            served: Vec::new(),
            exit_code: 0,
            on_cycles: 10_000,
        };
        let wrong = i32::from(Uart::respond(request_byte(2)));
        let trial = PeriphTrial {
            outcome: Ok(RunOutcome::Finished(0)),
            trace: vec![print_rec(256 + wrong, 10)],
            power_failures: 1,
            corrupted_writes: 0,
            cycles: 5_000,
            uart_wire: Vec::new(),
            i2c_served: Vec::new(),
        };
        let v = judge_periph(PeriphWorkload::ReqResp, &golden, &trial);
        assert!(matches!(v, PeriphVerdict::Violation { .. }), "got {v:?}");
    }

    #[test]
    fn goldens_run_on_every_feasible_system() {
        for workload in PeriphWorkload::ALL {
            for system in SystemUnderTest::ALL {
                let prog = match build_periph_program(workload, system) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let golden = periph_golden(&prog, system)
                    .unwrap_or_else(|e| panic!("{} x {}: {e}", workload.name(), system.name()));
                assert_eq!(golden.exit_code, 0, "{} x {}", workload.name(), system.name());
                assert_eq!(
                    golden.prints.len(),
                    workload.txns() as usize,
                    "{} x {}",
                    workload.name(),
                    system.name()
                );
                // The golden replay must judge itself clean.
                let trial = run_periph_plan(
                    &prog,
                    system,
                    &FaultPlan::new(Vec::new(), OFF_US),
                    periph_budget_us(&golden),
                    GUARD_BOOTS,
                );
                let v = judge_periph(workload, &golden, &trial);
                assert_eq!(
                    v,
                    PeriphVerdict::Clean,
                    "{} x {}",
                    workload.name(),
                    system.name()
                );
                match workload {
                    PeriphWorkload::SensorLog => {
                        assert_eq!(golden.served.len(), SENSOR_TXNS as usize);
                    }
                    PeriphWorkload::Telemetry => {
                        assert_eq!(golden.frames.len(), TELEMETRY_TXNS as usize);
                        assert!(golden.frames.iter().all(|f| f.attempt == 0));
                    }
                    PeriphWorkload::ReqResp => {}
                }
            }
        }
    }

    #[test]
    fn hardened_tics_survives_an_adversarial_cut_burst() {
        let workload = PeriphWorkload::Telemetry;
        let prog = build_periph_program(workload, SystemUnderTest::Tics).unwrap();
        let golden = periph_golden(&prog, SystemUnderTest::Tics).unwrap();
        let report = run_periph_cell(
            workload,
            &prog,
            SystemUnderTest::Tics,
            &golden,
            0.0,
            8,
            0x7E57_5EED,
        );
        assert_eq!(
            report.violations, 0,
            "tics violated: {:?}",
            report.first_violation
        );
        assert!(report.failures_injected > 0);
    }


    #[test]
    fn i2c_phase_label_round_trip_used_by_exhibits() {
        // Exhibits print phases by label; keep the enum covered.
        for op in [
            I2cPhase::Start,
            I2cPhase::Write,
            I2cPhase::Read,
            I2cPhase::Stop,
            I2cPhase::Reset,
        ] {
            assert!(!op.label().is_empty());
        }
    }
}
