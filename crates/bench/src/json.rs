//! A dependency-free JSON value, serializer, and parser.
//!
//! The harness must build without network access to crates.io, so this
//! module replaces `serde`/`serde_json` for the two things the bench
//! crate needs: writing experiment results and round-tripping the sweep
//! journal. Object key order is preserved (insertion order), integers
//! serialize without a decimal point, and floats always carry one — so
//! a value survives `to_string` → `parse` with its exact variant, which
//! the journal round-trip tests rely on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter the harness records; values are
    /// well below `i64::MAX`).
    Int(i64),
    /// A float; serialized with at least one fractional digit so it
    /// parses back as a float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        debug_assert!(v <= i64::MAX as u64, "journal counter exceeds i64");
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Starts an object builder.
    #[must_use]
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an i64, if numeric and integral.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a u64, if a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an f64 (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => out.push_str(&format_float(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                Self::write_seq(out, indent, depth, items.len(), ('[', ']'), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                Self::write_seq(out, indent, depth, fields.len(), ('{', '}'), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        len: usize,
        brackets: (char, char),
        mut item: impl FnMut(&mut String, usize),
    ) {
        out.push(brackets.0);
        if len == 0 {
            out.push(brackets.1);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (depth + 1)));
            }
            item(out, i);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
        out.push(brackets.1);
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Floats always serialize with a fractional part (or exponent) so they
/// parse back as `Json::Float`; non-finite values become `null`-like
/// sentinels outside JSON's number grammar, so clamp them instead.
fn format_float(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for [`Json::Obj`] with a fluent field API.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> ObjBuilder {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            // Integers too large for i64 fall back to float.
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid integer"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let v = Json::obj()
            .field("s", "he\"llo\n")
            .field("i", -42i64)
            .field("u", 12_345_678_901_234u64)
            .field("f", 1.0)
            .field("f2", 0.125)
            .field("b", true)
            .field("n", Json::Null)
            .field("a", Json::Arr(vec![Json::Int(1), Json::Str("x".into())]))
            .build();
        let compact = v.to_compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.to_compact(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), v);
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "tru", "1.2.3", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\t\\\"/""#).unwrap();
        assert_eq!(v, Json::Str("aA\n\t\\\"/".to_string()));
    }

    #[test]
    fn key_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }
}
