//! The deterministic run journal — one JSON line per sweep cell.
//!
//! Every sweep writes `results/<exp>.jsonl` (or `--journal <path>`):
//! each row records the cell's coordinates in the grid (app, system,
//! opt level, clock, supply, scale, derived seed), its [`RunResult`]
//! counters, any experiment-specific metrics under `extra`, how the
//! cell ended (`ok` / `build-error` / `panicked`), and two
//! non-deterministic provenance fields (`wall_ms`, `thread`).
//!
//! Rows are written in cell-index order regardless of how many worker
//! threads executed the sweep, so two journals of the same grid and
//! sweep seed are line-for-line identical except for `wall_ms` and
//! `thread` — the property the determinism tests pin down. Re-folding a
//! journal into a paper table is [`read`] plus ordinary iteration; no
//! re-simulation needed.
//!
//! [`RunResult`]: crate::runner::RunResult

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use tics_trace::SpanKind;

use crate::json::Json;

/// How a sweep cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The runner returned a result.
    Ok,
    /// The app × system × opt combination cannot be built (the paper's
    /// red-cross cells) or the runner reported an error.
    BuildError,
    /// The runner panicked; the sweep isolated it and continued.
    Panicked,
    /// The runner blew the sweep's per-cell wall-clock budget; the
    /// watchdog journaled the cell and moved on (see
    /// [`SweepArgs::cell_timeout_ms`]).
    ///
    /// [`SweepArgs::cell_timeout_ms`]: crate::sweep::SweepArgs::cell_timeout_ms
    Timeout,
}

impl CellStatus {
    /// Journal wire form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::BuildError => "build-error",
            CellStatus::Panicked => "panicked",
            CellStatus::Timeout => "timeout",
        }
    }

    fn parse(s: &str) -> Result<CellStatus, String> {
        match s {
            "ok" => Ok(CellStatus::Ok),
            "build-error" => Ok(CellStatus::BuildError),
            "panicked" => Ok(CellStatus::Panicked),
            "timeout" => Ok(CellStatus::Timeout),
            other => Err(format!("unknown cell status {other:?}")),
        }
    }
}

impl fmt::Display for CellStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal row: a cell's coordinates, counters, and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRow {
    /// Experiment name (`table2`, `fig9`, ...).
    pub exp: String,
    /// Cell index in the declared grid (also the journal line order).
    pub cell: u64,
    /// App name (`AR`, `BC`, ...), or a custom label for non-app cells.
    pub app: String,
    /// System under test (`TICS`, `MementOS`, ...).
    pub system: String,
    /// Optimization level (`-O0` ... `-O2`).
    pub opt: String,
    /// Timekeeper (`perfect`, `volatile`, `rtc:<budget>`).
    pub clock: String,
    /// Power-supply spec label (`continuous`, `periodic:8000/1000`, ...).
    pub supply: String,
    /// Workload scale.
    pub scale: u32,
    /// The cell's derived deterministic seed.
    pub seed: u64,
    /// Fleet shard index, if this row summarizes one shard of a
    /// sharded fleet sweep ([`crate::fleet`]). `None` for ordinary
    /// sweep cells — and the field is then omitted from the wire form
    /// entirely, so pre-fleet journals stay byte-identical.
    pub shard: Option<u64>,
    /// How the cell ended.
    pub status: CellStatus,
    /// Run outcome text (`finished`, `out-of-energy`, error/panic text).
    pub outcome: String,
    /// Exit code if the program finished.
    pub exit_code: Option<i32>,
    /// Simulated cycles of on-time.
    pub cycles: u64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Restores performed.
    pub restores: u64,
    /// Power failures experienced.
    pub power_failures: u64,
    /// Undo-log appends.
    pub undo_appends: u64,
    /// `.text` bytes of the built image.
    pub text_bytes: u32,
    /// `.data` bytes of the built image.
    pub data_bytes: u32,
    /// Cycles charged to each [`SpanKind`], indexed by
    /// [`SpanKind::index`]. All-zero for rows predating span
    /// attribution (older journals parse with zeros).
    pub spans: [u64; SpanKind::COUNT],
    /// Experiment-specific metrics (violation counts, panel labels...).
    pub extra: Vec<(String, Json)>,
    /// Host wall-time of the cell in milliseconds (non-deterministic).
    pub wall_ms: f64,
    /// Worker-thread index that ran the cell (non-deterministic).
    pub thread: u64,
}

impl Default for JournalRow {
    fn default() -> Self {
        JournalRow {
            exp: String::new(),
            cell: 0,
            app: String::new(),
            system: String::new(),
            opt: String::new(),
            clock: String::new(),
            supply: String::new(),
            scale: 0,
            seed: 0,
            shard: None,
            status: CellStatus::Ok,
            outcome: String::new(),
            exit_code: None,
            cycles: 0,
            checkpoints: 0,
            restores: 0,
            power_failures: 0,
            undo_appends: 0,
            text_bytes: 0,
            data_bytes: 0,
            spans: [0; SpanKind::COUNT],
            extra: Vec::new(),
            wall_ms: 0.0,
            thread: 0,
        }
    }
}

impl JournalRow {
    /// Serializes the row as one compact JSON object (no newline).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("exp", self.exp.as_str())
            .field("cell", self.cell)
            .field("app", self.app.as_str())
            .field("system", self.system.as_str())
            .field("opt", self.opt.as_str())
            .field("clock", self.clock.as_str())
            .field("supply", self.supply.as_str())
            .field("scale", self.scale)
            // Hex string: seeds use all 64 bits, beyond JSON's safe
            // integer range.
            .field("seed", format!("{:#x}", self.seed));
        // Omitted (not null) when absent: non-fleet rows keep their
        // exact pre-shard byte layout.
        if let Some(shard) = self.shard {
            obj = obj.field("shard", shard);
        }
        obj.field("status", self.status.as_str())
            .field("outcome", self.outcome.as_str())
            .field("exit_code", self.exit_code)
            .field("cycles", self.cycles)
            .field("checkpoints", self.checkpoints)
            .field("restores", self.restores)
            .field("power_failures", self.power_failures)
            .field("undo_appends", self.undo_appends)
            .field("text_bytes", self.text_bytes)
            .field("data_bytes", self.data_bytes)
            .field(
                "spans",
                Json::Obj(
                    SpanKind::ALL
                        .iter()
                        .map(|&k| (k.label().to_string(), Json::from(self.spans[k.index()])))
                        .collect(),
                ),
            )
            .field("extra", Json::Obj(self.extra.clone()))
            .field("wall_ms", self.wall_ms)
            .field("thread", self.thread)
            .build()
    }

    /// Parses a row back from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<JournalRow, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        Ok(JournalRow {
            exp: str_field("exp")?,
            cell: u64_field("cell")?,
            app: str_field("app")?,
            system: str_field("system")?,
            opt: str_field("opt")?,
            clock: str_field("clock")?,
            supply: str_field("supply")?,
            scale: u32::try_from(u64_field("scale")?).map_err(|e| e.to_string())?,
            seed: {
                let s = str_field("seed")?;
                u64::from_str_radix(s.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("bad seed {s:?}: {e}"))?
            },
            shard: v.get("shard").and_then(Json::as_u64),
            status: CellStatus::parse(&str_field("status")?)?,
            outcome: str_field("outcome")?,
            exit_code: match v.get("exit_code") {
                None | Some(Json::Null) => None,
                Some(x) => Some(
                    x.as_i64()
                        .and_then(|i| i32::try_from(i).ok())
                        .ok_or("exit_code is not an i32")?,
                ),
            },
            cycles: u64_field("cycles")?,
            checkpoints: u64_field("checkpoints")?,
            restores: u64_field("restores")?,
            power_failures: u64_field("power_failures")?,
            undo_appends: u64_field("undo_appends")?,
            text_bytes: u32::try_from(u64_field("text_bytes")?).map_err(|e| e.to_string())?,
            data_bytes: u32::try_from(u64_field("data_bytes")?).map_err(|e| e.to_string())?,
            spans: {
                // Missing (pre-attribution journals) parses as all-zero.
                let mut spans = [0u64; SpanKind::COUNT];
                if let Some(obj) = v.get("spans") {
                    for k in SpanKind::ALL {
                        if let Some(n) = obj.get(k.label()).and_then(Json::as_u64) {
                            spans[k.index()] = n;
                        }
                    }
                }
                spans
            },
            extra: match v.get("extra") {
                Some(Json::Obj(fields)) => fields.clone(),
                _ => return Err("missing object field \"extra\"".to_string()),
            },
            wall_ms: v
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or("missing number field \"wall_ms\"")?,
            thread: u64_field("thread")?,
        })
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    pub fn parse_line(line: &str) -> Result<JournalRow, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        JournalRow::from_json(&v)
    }

    /// Looks up an `extra` metric by key.
    #[must_use]
    pub fn metric(&self, key: &str) -> Option<&Json> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An `extra` metric as f64 (integers convert).
    #[must_use]
    pub fn metric_f64(&self, key: &str) -> Option<f64> {
        self.metric(key).and_then(Json::as_f64)
    }

    /// An `extra` metric as u64.
    #[must_use]
    pub fn metric_u64(&self, key: &str) -> Option<u64> {
        self.metric(key).and_then(Json::as_u64)
    }

    /// The row with its non-deterministic provenance fields (`wall_ms`,
    /// `thread`) zeroed — what the determinism tests compare.
    #[must_use]
    pub fn deterministic_view(&self) -> JournalRow {
        JournalRow {
            wall_ms: 0.0,
            thread: 0,
            ..self.clone()
        }
    }
}

/// A JSONL journal writer (buffered; flushed on drop or [`finish`]).
///
/// [`finish`]: Journal::finish
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    out: BufWriter<File>,
    rows: u64,
}

impl Journal {
    /// Creates (truncates) the journal file, creating parent dirs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Journal {
            out: BufWriter::new(File::create(&path)?),
            path,
            rows: 0,
        })
    }

    /// Appends one row as one line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, row: &JournalRow) -> std::io::Result<()> {
        writeln!(self.out, "{}", row.to_json().to_compact())?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    #[must_use]
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

/// Reads a whole journal back into rows (the "re-fold a table without
/// re-simulating" entry point).
///
/// # Errors
///
/// Propagates filesystem errors; malformed lines become
/// `io::ErrorKind::InvalidData` with the line number.
pub fn read(path: impl AsRef<Path>) -> std::io::Result<Vec<JournalRow>> {
    let file = BufReader::new(File::open(path.as_ref())?);
    let mut rows = Vec::new();
    for (i, line) in file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row = JournalRow::parse_line(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.as_ref().display(), i + 1),
            )
        })?;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> JournalRow {
        JournalRow {
            exp: "test".into(),
            cell: 7,
            app: "AR".into(),
            system: "TICS".into(),
            opt: "-O2".into(),
            clock: "rtc:60000000".into(),
            supply: "rf:3/2/0.85".into(),
            scale: 200,
            seed: 0xDEAD_BEEF,
            shard: None,
            status: CellStatus::Ok,
            outcome: "finished".into(),
            exit_code: Some(42),
            cycles: 123_456_789,
            checkpoints: 321,
            restores: 17,
            power_failures: 18,
            undo_appends: 999,
            text_bytes: 2048,
            data_bytes: 512,
            spans: [900_000, 120_000, 17_000, 5_000, 1_000, 400, 50, 25],
            extra: vec![
                ("violations".into(), Json::Int(3)),
                ("panel".into(), Json::Str("left".into())),
            ],
            wall_ms: 12.5,
            thread: 3,
        }
    }

    #[test]
    fn row_round_trips_through_jsonl() {
        let row = sample_row();
        let line = row.to_json().to_compact();
        assert_eq!(JournalRow::parse_line(&line).unwrap(), row);
    }

    #[test]
    fn row_with_null_exit_code_round_trips() {
        let row = JournalRow {
            exit_code: None,
            status: CellStatus::Panicked,
            outcome: "panicked: boom".into(),
            ..sample_row()
        };
        let line = row.to_json().to_compact();
        assert_eq!(JournalRow::parse_line(&line).unwrap(), row);
    }

    #[test]
    fn journal_file_round_trips() {
        let dir = std::env::temp_dir().join("tics_journal_test");
        let path = dir.join("roundtrip.jsonl");
        let rows: Vec<JournalRow> = (0..5)
            .map(|i| JournalRow {
                cell: i,
                seed: i * 31,
                ..sample_row()
            })
            .collect();
        let mut j = Journal::create(&path).unwrap();
        for r in &rows {
            j.append(r).unwrap();
        }
        assert_eq!(j.rows_written(), 5);
        j.finish().unwrap();
        assert_eq!(read(&path).unwrap(), rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rows_without_spans_parse_with_zeros() {
        // Journals written before span attribution have no "spans"
        // field; they must still parse (with zeroed attribution).
        let line = sample_row().to_json().to_compact();
        let Json::Obj(fields) = Json::parse(&line).unwrap() else {
            panic!("row is not an object");
        };
        let stripped = Json::Obj(fields.into_iter().filter(|(k, _)| k != "spans").collect());
        let parsed = JournalRow::from_json(&stripped).unwrap();
        assert_eq!(parsed.spans, [0; SpanKind::COUNT]);
    }

    #[test]
    fn shard_field_round_trips_and_is_omitted_when_none() {
        // A shard-less row must serialize without any "shard" key at
        // all — byte-identical to journals written before the field
        // existed — while a sharded row round-trips it.
        let plain = sample_row();
        let line = plain.to_json().to_compact();
        assert!(!line.contains("\"shard\""), "unexpected shard key: {line}");
        assert_eq!(JournalRow::parse_line(&line).unwrap().shard, None);

        let sharded = JournalRow {
            shard: Some(42),
            ..sample_row()
        };
        let line = sharded.to_json().to_compact();
        assert!(line.contains("\"shard\":42"), "missing shard key: {line}");
        assert_eq!(JournalRow::parse_line(&line).unwrap(), sharded);
    }

    #[test]
    fn deterministic_view_masks_provenance() {
        let a = JournalRow {
            wall_ms: 1.0,
            thread: 0,
            ..sample_row()
        };
        let b = JournalRow {
            wall_ms: 99.0,
            thread: 5,
            ..sample_row()
        };
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}
