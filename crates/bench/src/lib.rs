//! # tics-bench — the experiment harness
//!
//! One module per concern, one binary per table/figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_table1` | Table 1 — GHM routine counts & consistency vs intermittency |
//! | `exp_table2` | Table 2 — time-consistency violations, AR w/ and w/o TICS |
//! | `exp_table3` | Table 3 — `.text`/`.data` for InK / Chinchilla / TICS |
//! | `exp_table4` | Table 4 — per-operation runtime overheads |
//! | `exp_table5` | Table 5 — the runtime capability matrix |
//! | `exp_fig9`   | Figure 9 — benchmark performance (three panels) |
//! | `exp_fig10`  | Figure 10 — user-study proxy (complexity + synthetic reviewers) |
//! | `exp_ablations` | design-choice ablations beyond the paper |
//! | `exp_fault`  | adversarial fault injection vs the crash-consistency oracle |
//! | `exp_profile` | Table 4 re-derived from attributed spans + Figure-9-style cycle breakdown + Chrome trace export |
//!
//! Every binary declares its cells as a [`sweep::Sweep`] grid, runs it
//! on a work-stealing thread pool (`--threads N`, `TICS_BENCH_THREADS`,
//! default = available parallelism), folds the resulting
//! [`journal::JournalRow`]s into its printed table, and leaves the full
//! per-cell record in `results/<exp>.jsonl` (`--journal PATH`
//! overrides). The [`oracle`] module is the simulation's logic
//! analyzer: it derives the paper's three time-consistency violation
//! counts from ground-truth event timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod fleet;
pub mod journal;
pub mod json;
pub mod oracle;
pub mod periph;
pub mod reviewer;
pub mod runner;
pub mod sweep;

pub use fleet::{run_shard, Exemplar, FleetSpec, Reservoir, ShardStats, StreamingHistogram};
pub use json::Json;
pub use oracle::{count_violations, Violations};
pub use runner::{run_app, ClockKind, RunConfig, RunResult};
pub use sweep::{Cell, CellOutput, Sweep, SweepArgs, SweepOutcome, SweepSummary, SupplySpec};

use std::path::Path;

/// Writes a [`Json`] result to `results/<name>.json` (best effort —
/// experiments still print their tables if the write fails).
pub fn write_json(name: &str, value: &Json) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_pretty()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}
