//! # tics-bench — the experiment harness
//!
//! One module per concern, one binary per table/figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_table1` | Table 1 — GHM routine counts & consistency vs intermittency |
//! | `exp_table2` | Table 2 — time-consistency violations, AR w/ and w/o TICS |
//! | `exp_table3` | Table 3 — `.text`/`.data` for InK / Chinchilla / TICS |
//! | `exp_table4` | Table 4 — per-operation runtime overheads |
//! | `exp_table5` | Table 5 — the runtime capability matrix |
//! | `exp_fig9`   | Figure 9 — benchmark performance (three panels) |
//! | `exp_fig10`  | Figure 10 — user-study proxy (complexity + synthetic reviewers) |
//!
//! Each binary prints the table and writes machine-readable JSON to
//! `results/`. The [`oracle`] module is the simulation's logic analyzer:
//! it derives the paper's three time-consistency violation counts from
//! ground-truth event timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod reviewer;
pub mod runner;

pub use oracle::{count_violations, Violations};
pub use runner::{run_app, RunConfig, RunResult};

use std::path::Path;

/// Writes a serializable result to `results/<name>.json` (best effort —
/// experiments still print their tables if the write fails).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}
