//! The parallel sweep engine.
//!
//! Every paper artifact is a sweep over (app × system × opt × clock ×
//! supply × scale × seed) cells. This module turns that loop into a
//! declarative grid executed by a work-stealing thread pool:
//!
//! * **declarative grids** — [`Sweep::grid`] takes the axes and appends
//!   their cartesian product; [`Sweep::cell`] appends hand-built cells
//!   for irregular experiments,
//! * **deterministic seeding** — each cell's seed is derived from the
//!   sweep seed and the cell's grid index with a splitmix64 mix, so the
//!   journal is a pure function of (grid, sweep seed) regardless of
//!   thread count or scheduling,
//! * **panic isolation** — each cell runs under
//!   [`std::panic::catch_unwind`]; a VM trap or harness bug is recorded
//!   as a `panicked` row and its siblings keep running,
//! * **the run journal** — every cell becomes one [`JournalRow`] in
//!   `results/<exp>.jsonl` (override with `--journal`), written in cell
//!   order,
//! * **a summary** — cells run / failed / panicked, simulated cycles,
//!   wall-time, and the estimated speedup over a single-threaded run.
//!
//! Thread count comes from `--threads N`, the `TICS_BENCH_THREADS`
//! environment variable, or the machine's available parallelism, in
//! that order of precedence.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tics_apps::workload::{ar_trace, ghm_trace};
use tics_apps::{ar, ghm, App, SystemUnderTest};
use tics_energy::{Capacitor, CapacitorSupply, ContinuousPower, DutyCycleTrace, PeriodicTrace,
                  PowerSupply, RfHarvester};
use tics_minic::opt::OptLevel;
use tics_trace::SpanKind;

use crate::journal::{CellStatus, Journal, JournalRow};
use crate::json::Json;
use crate::runner::{run_app, ClockKind, RunConfig, RunResult};

/// splitmix64 — the per-cell seed derivation. Small, well-mixed, and
/// stable across platforms; also reused by the deterministic test
/// suites in place of the `rand` crate.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the deterministic seed of cell `index` under `sweep_seed`.
#[must_use]
pub fn cell_seed(sweep_seed: u64, index: u64) -> u64 {
    splitmix64(sweep_seed ^ splitmix64(index.wrapping_add(1)))
}

/// A declarative power-supply specification, instantiated per cell with
/// the cell's derived seed so stochastic supplies stay deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum SupplySpec {
    /// Never fails.
    Continuous,
    /// Fixed on/off pattern (µs).
    Periodic {
        /// On-time per period.
        on_us: u64,
        /// Off-time per period.
        off_us: u64,
    },
    /// Stochastic duty-cycled power (seeded per cell).
    DutyCycle {
        /// Fraction of time powered, `0.0..=1.0`.
        duty: f64,
        /// Nominal period (µs).
        period_us: u64,
        /// Jitter fraction, `0.0..=1.0`.
        jitter: f64,
    },
    /// RF harvester + storage capacitor (the Table 2 supply; seeded per
    /// cell). Field defaults mirror `exp_table2`'s Powercast setup.
    Rf {
        /// Transmitter EIRP (W).
        eirp_w: f64,
        /// Distance (m).
        distance_m: f64,
        /// Fading depth `0.0..=1.0`.
        fading: f64,
    },
}

impl SupplySpec {
    /// The paper's RF testbed supply (3 W EIRP at 2 m, deep fading).
    #[must_use]
    pub fn rf_default() -> SupplySpec {
        SupplySpec::Rf {
            eirp_w: 3.0,
            distance_m: 2.0,
            fading: 0.85,
        }
    }

    /// Journal label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SupplySpec::Continuous => "continuous".to_string(),
            SupplySpec::Periodic { on_us, off_us } => format!("periodic:{on_us}/{off_us}"),
            SupplySpec::DutyCycle {
                duty,
                period_us,
                jitter,
            } => format!("duty:{duty}/{period_us}/{jitter}"),
            SupplySpec::Rf {
                eirp_w,
                distance_m,
                fading,
            } => format!("rf:{eirp_w}/{distance_m}/{fading}"),
        }
    }

    /// Instantiates the supply with the cell's seed.
    #[must_use]
    pub fn build(&self, seed: u64) -> Box<dyn PowerSupply> {
        match self {
            SupplySpec::Continuous => Box::new(ContinuousPower::new()),
            SupplySpec::Periodic { on_us, off_us } => Box::new(PeriodicTrace::new(*on_us, *off_us)),
            SupplySpec::DutyCycle {
                duty,
                period_us,
                jitter,
            } => Box::new(DutyCycleTrace::new(*duty, *period_us, *jitter, seed | 1)),
            SupplySpec::Rf {
                eirp_w,
                distance_m,
                fading,
            } => {
                // 10 µF storage (2.4 V on / 1.8 V off), ~3 mW active draw.
                let harvester = RfHarvester::new(*eirp_w, *distance_m, *fading, seed | 1);
                let cap = Capacitor::new(10e-6, 3.3, 2.4, 1.8);
                Box::new(CapacitorSupply::new(harvester, cap, 3e-3))
            }
        }
    }
}

/// One sweep cell: the full coordinates of a run.
#[derive(Debug, Clone)]
pub struct Cell {
    /// App under test.
    pub app: App,
    /// System under test.
    pub system: SystemUnderTest,
    /// Optimization level.
    pub opt: OptLevel,
    /// Timekeeper.
    pub clock: ClockKind,
    /// Power supply spec.
    pub supply: SupplySpec,
    /// Workload scale.
    pub scale: u32,
    /// Total on-time budget (µs).
    pub time_budget_us: u64,
    /// The derived seed (filled in by the engine before the runner).
    pub seed: u64,
    /// Fleet shard index ([`crate::fleet`]): journaled into the row's
    /// `shard` column and matched on `--resume` so an interrupted fleet
    /// sweep never stitches shard summaries into the wrong slot.
    pub shard: Option<u64>,
    /// Declarative per-cell parameters; journaled into `extra` and
    /// readable by custom runners via [`Cell::param`].
    pub params: Vec<(String, Json)>,
    /// Journal label override for the `app` column — used by cells whose
    /// subject is not one of the benchmark [`App`]s (e.g. the fault
    /// corpus programs of `exp_fault`).
    pub label: Option<String>,
}

impl Cell {
    /// A cell with the default clock (perfect), continuous power, and
    /// default scale/budget.
    #[must_use]
    pub fn new(app: App, system: SystemUnderTest) -> Cell {
        Cell {
            app,
            system,
            opt: OptLevel::O2,
            clock: ClockKind::Perfect,
            supply: SupplySpec::Continuous,
            scale: 24,
            time_budget_us: 10_000_000_000,
            seed: 0,
            shard: None,
            params: Vec::new(),
            label: None,
        }
    }

    /// Overrides the journal's `app` column (for non-app cells).
    #[must_use]
    pub fn label(mut self, label: &str) -> Cell {
        self.label = Some(label.to_string());
        self
    }

    /// Sets the optimization level.
    #[must_use]
    pub fn opt(mut self, opt: OptLevel) -> Cell {
        self.opt = opt;
        self
    }

    /// Sets the timekeeper.
    #[must_use]
    pub fn clock(mut self, clock: ClockKind) -> Cell {
        self.clock = clock;
        self
    }

    /// Sets the supply spec.
    #[must_use]
    pub fn supply(mut self, supply: SupplySpec) -> Cell {
        self.supply = supply;
        self
    }

    /// Sets the workload scale.
    #[must_use]
    pub fn scale(mut self, scale: u32) -> Cell {
        self.scale = scale;
        self
    }

    /// Sets the on-time budget (µs).
    #[must_use]
    pub fn budget(mut self, time_budget_us: u64) -> Cell {
        self.time_budget_us = time_budget_us;
        self
    }

    /// Marks the cell as one fleet shard (journaled; resume-matched).
    #[must_use]
    pub fn shard(mut self, shard: u64) -> Cell {
        self.shard = Some(shard);
        self
    }

    /// Attaches a declarative parameter (journaled; visible to custom
    /// runners).
    #[must_use]
    pub fn param(mut self, key: &str, value: impl Into<Json>) -> Cell {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Reads back a declarative parameter.
    #[must_use]
    pub fn param_value(&self, key: &str) -> Option<&Json> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A parameter as i64 (panics if absent/mistyped — grid-declaration
    /// bugs should fail loudly, and the engine isolates the panic).
    #[must_use]
    pub fn param_i64(&self, key: &str) -> i64 {
        self.param_value(key)
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("cell param {key:?} missing or not an integer"))
    }

    /// A parameter as str (panics if absent/mistyped).
    #[must_use]
    pub fn param_str(&self, key: &str) -> &str {
        self.param_value(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("cell param {key:?} missing or not a string"))
    }

    /// The standard scripted sensor trace for this cell's app — what
    /// the default runner feeds the machine.
    #[must_use]
    pub fn sensor_trace(&self) -> std::sync::Arc<[i32]> {
        standard_sensor_trace(self.app, self.scale)
    }

    /// The [`RunConfig`] this cell denotes.
    #[must_use]
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            scale: self.scale,
            opt: self.opt,
            clock: self.clock,
            sensor_trace: self.sensor_trace(),
            time_budget_us: self.time_budget_us,
            seed: self.seed,
            ..RunConfig::default()
        }
    }
}

/// The standard scripted sensor trace for `app` at `scale` — shared by
/// [`Cell::sensor_trace`] and the fleet engine, which builds one trace
/// per (program, config) image and shares it across every device.
#[must_use]
pub fn standard_sensor_trace(app: App, scale: u32) -> std::sync::Arc<[i32]> {
    match app {
        App::Ar => ar_trace(scale * 4, ar::WINDOW, 5, 1234).0.into(),
        App::Ghm | App::GhmTinyos => ghm_trace(64, ghm::READINGS, 11).into(),
        _ => Vec::new().into(),
    }
}

/// What a cell runner hands back to the engine.
#[derive(Debug, Clone, Default)]
pub struct CellOutput {
    /// Outcome text (`finished`, `out-of-energy`, ...).
    pub outcome: String,
    /// Exit code if the program finished.
    pub exit_code: Option<i32>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Restores performed.
    pub restores: u64,
    /// Power failures experienced.
    pub power_failures: u64,
    /// Undo-log appends.
    pub undo_appends: u64,
    /// `.text` bytes.
    pub text_bytes: u32,
    /// `.data` bytes.
    pub data_bytes: u32,
    /// Cycles charged to each [`SpanKind`], indexed by
    /// [`SpanKind::index`] (zeros when the runner does not attribute).
    pub spans: [u64; SpanKind::COUNT],
    /// Experiment-specific metrics appended to the journal row.
    pub extra: Vec<(String, Json)>,
}

impl CellOutput {
    /// Attaches a metric.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> CellOutput {
        self.extra.push((key.to_string(), value.into()));
        self
    }
}

impl From<RunResult> for CellOutput {
    fn from(r: RunResult) -> CellOutput {
        CellOutput {
            outcome: r.outcome,
            exit_code: r.exit_code,
            cycles: r.cycles,
            checkpoints: r.checkpoints,
            restores: r.restores,
            power_failures: r.power_failures,
            undo_appends: r.undo_appends,
            text_bytes: r.text_bytes,
            data_bytes: r.data_bytes,
            spans: r.span_cycles,
            extra: Vec::new(),
        }
    }
}

/// Sweep-wide execution knobs, usually parsed from the command line.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Worker threads (default: `TICS_BENCH_THREADS` or available
    /// parallelism).
    pub threads: usize,
    /// Journal path override (default `results/<exp>.jsonl`).
    pub journal: Option<PathBuf>,
    /// Per-cell wall-clock watchdog (`--cell-timeout-ms N`): a cell
    /// whose runner exceeds this host-time budget is journaled as
    /// `timeout` and the sweep moves on. The abandoned runner keeps its
    /// thread until its own simulated-cycle budget expires (every
    /// runner bounds simulation time), so the watchdog bounds journal
    /// latency, not process lifetime.
    pub cell_timeout_ms: Option<u64>,
    /// Resume from an existing journal (`--resume`): rows of a previous
    /// run of the *same grid and sweep seed* whose deterministic
    /// coordinates match are reused verbatim instead of re-simulated.
    /// `panicked`/`timeout` rows are always re-run.
    pub resume: bool,
    /// Positional arguments the sweep did not consume (e.g. `exp_fig9`'s
    /// panel selector).
    pub rest: Vec<String>,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            threads: default_threads(),
            journal: None,
            cell_timeout_ms: None,
            resume: false,
            rest: Vec::new(),
        }
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TICS_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
        eprintln!("warning: ignoring unparsable TICS_BENCH_THREADS={v:?}");
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl SweepArgs {
    /// Parses `--threads N` / `--journal PATH` from the process
    /// arguments; everything else lands in `rest`.
    #[must_use]
    pub fn parse_env() -> SweepArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (for tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> SweepArgs {
        let mut out = SweepArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--threads" {
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => out.threads = n,
                    _ => eprintln!("warning: --threads needs a positive integer"),
                }
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => out.threads = n,
                    _ => eprintln!("warning: --threads needs a positive integer"),
                }
            } else if arg == "--journal" {
                match it.next() {
                    Some(p) => out.journal = Some(PathBuf::from(p)),
                    None => eprintln!("warning: --journal needs a path"),
                }
            } else if let Some(v) = arg.strip_prefix("--journal=") {
                out.journal = Some(PathBuf::from(v));
            } else if arg == "--cell-timeout-ms" {
                match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) if ms >= 1 => out.cell_timeout_ms = Some(ms),
                    _ => eprintln!("warning: --cell-timeout-ms needs a positive integer"),
                }
            } else if let Some(v) = arg.strip_prefix("--cell-timeout-ms=") {
                match v.parse::<u64>() {
                    Ok(ms) if ms >= 1 => out.cell_timeout_ms = Some(ms),
                    _ => eprintln!("warning: --cell-timeout-ms needs a positive integer"),
                }
            } else if arg == "--resume" {
                out.resume = true;
            } else {
                out.rest.push(arg);
            }
        }
        out
    }
}

/// Aggregate counts and timing of one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Experiment name.
    pub exp: String,
    /// Cells declared (= journal rows).
    pub cells: usize,
    /// Cells whose runner returned a result.
    pub ok: usize,
    /// Cells that failed to build / run.
    pub failed: usize,
    /// Cells whose runner panicked.
    pub panicked: usize,
    /// Cells the wall-clock watchdog abandoned.
    pub timed_out: usize,
    /// Cells reused verbatim from a prior journal (`--resume`).
    pub reused: usize,
    /// Total simulated on-time cycles across cells.
    pub total_cycles: u64,
    /// Sweep wall-time (seconds).
    pub wall_s: f64,
    /// Sum of per-cell wall-times (seconds) — what one thread would
    /// have spent.
    pub cell_wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Journal path, if one was written.
    pub journal: Option<PathBuf>,
}

impl SweepSummary {
    /// Estimated speedup over a 1-thread run of the same grid
    /// (Σ per-cell wall-time / sweep wall-time).
    #[must_use]
    pub fn speedup_vs_one_thread(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cell_wall_s / self.wall_s
        } else {
            1.0
        }
    }
}

impl std::fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut tail = String::new();
        if self.timed_out > 0 {
            tail.push_str(&format!(", {} timed out", self.timed_out));
        }
        if self.reused > 0 {
            tail.push_str(&format!(", {} reused", self.reused));
        }
        write!(
            f,
            "sweep {}: {} cells ({} ok, {} failed, {} panicked{tail}), \
             {} cycles simulated, {:.2} s wall on {} thread{} \
             ({:.1}x vs 1 thread)",
            self.exp,
            self.cells,
            self.ok,
            self.failed,
            self.panicked,
            self.total_cycles,
            self.wall_s,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.speedup_vs_one_thread(),
        )?;
        if let Some(p) = &self.journal {
            write!(f, ", journal {}", p.display())?;
        }
        Ok(())
    }
}

/// The result of [`Sweep::run`]: all journal rows (in cell order) plus
/// the summary.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One row per declared cell, ordered by cell index.
    pub rows: Vec<JournalRow>,
    /// Aggregate counts and timing.
    pub summary: SweepSummary,
}

impl SweepOutcome {
    /// Rows whose runner returned a result.
    pub fn ok_rows(&self) -> impl Iterator<Item = &JournalRow> {
        self.rows.iter().filter(|r| r.status == CellStatus::Ok)
    }
}

/// A declarative sweep: an experiment name, a grid of cells, and the
/// execution knobs.
#[derive(Debug)]
pub struct Sweep {
    exp: String,
    cells: Vec<Cell>,
    sweep_seed: u64,
    args: SweepArgs,
    quiet: bool,
}

impl Sweep {
    /// An empty sweep for experiment `exp` (journal defaults to
    /// `results/<exp>.jsonl`).
    #[must_use]
    pub fn new(exp: &str) -> Sweep {
        Sweep {
            exp: exp.to_string(),
            cells: Vec::new(),
            sweep_seed: 0x71C5,
            args: SweepArgs::default(),
            quiet: false,
        }
    }

    /// Sets the sweep seed every cell seed derives from.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Sweep {
        self.sweep_seed = seed;
        self
    }

    /// Applies parsed CLI knobs.
    #[must_use]
    pub fn args(mut self, args: SweepArgs) -> Sweep {
        self.args = args;
        self
    }

    /// Suppresses the summary print (for tests).
    #[must_use]
    pub fn quiet(mut self) -> Sweep {
        self.quiet = true;
        self
    }

    /// Appends one cell; returns `self` for chaining.
    #[must_use]
    pub fn cell(mut self, cell: Cell) -> Sweep {
        self.cells.push(cell);
        self
    }

    /// Appends the cartesian product of the given axes, in row-major
    /// order (apps outermost, scales innermost).
    #[must_use]
    pub fn grid(
        mut self,
        apps: &[App],
        systems: &[SystemUnderTest],
        opts: &[OptLevel],
        clocks: &[ClockKind],
        supplies: &[SupplySpec],
        scales: &[u32],
    ) -> Sweep {
        for &app in apps {
            for &system in systems {
                for &opt in opts {
                    for &clock in clocks {
                        for supply in supplies {
                            for &scale in scales {
                                self.cells.push(
                                    Cell::new(app, system)
                                        .opt(opt)
                                        .clock(clock)
                                        .supply(supply.clone())
                                        .scale(scale),
                                );
                            }
                        }
                    }
                }
            }
        }
        self
    }

    /// Number of declared cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell through the default runner
    /// ([`run_app`] with the cell's derived config and supply).
    #[must_use]
    pub fn run(self) -> SweepOutcome {
        self.run_with(default_runner)
    }

    /// Runs every cell through a custom runner. The runner sees the
    /// cell with its derived seed already filled in; `Err` journals as
    /// `build-error`, panics journal as `panicked`, and sibling cells
    /// always complete.
    pub fn run_with<F>(self, runner: F) -> SweepOutcome
    where
        F: Fn(&Cell) -> Result<CellOutput, String> + Sync,
    {
        let n = self.cells.len();
        let threads = self.args.threads.max(1).min(n.max(1));
        let journal_path = self
            .args
            .journal
            .clone()
            .unwrap_or_else(|| PathBuf::from("results").join(format!("{}.jsonl", self.exp)));
        // --resume: reuse deterministic rows of a prior (interrupted or
        // partial) run of the same grid before the journal is truncated.
        let cached: Vec<Option<JournalRow>> = if self.args.resume {
            resume_cache(&journal_path, &self.exp, self.sweep_seed, &self.cells)
        } else {
            (0..n).map(|_| None).collect()
        };
        let reused = cached.iter().filter(|c| c.is_some()).count();
        let next = AtomicUsize::new(0);
        let rows: Mutex<Vec<(usize, JournalRow)>> = Mutex::new(Vec::with_capacity(n));
        let cell_wall_ns = AtomicU64::new(0);
        let t0 = Instant::now();

        std::thread::scope(|scope| {
            for tid in 0..threads {
                let next = &next;
                let rows = &rows;
                let cells = &self.cells;
                let cached = &cached;
                let runner = &runner;
                let exp = &self.exp;
                let sweep_seed = self.sweep_seed;
                let timeout_ms = self.args.cell_timeout_ms;
                let cell_wall_ns = &cell_wall_ns;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    if let Some(row) = &cached[i] {
                        rows.lock().expect("rows mutex").push((i, row.clone()));
                        continue;
                    }
                    let mut cell = cells[i].clone();
                    cell.seed = cell_seed(sweep_seed, i as u64);
                    let start = Instant::now();
                    // With a watchdog armed, the runner executes on its
                    // own scoped thread and the worker waits with a
                    // deadline. An overrunning cell is journaled as
                    // `timeout` and its siblings proceed immediately;
                    // the abandoned runner finishes on its own (every
                    // runner bounds *simulated* time) and its late
                    // result is dropped with the channel.
                    let outcome = match timeout_ms {
                        None => Some(catch_unwind(AssertUnwindSafe(|| runner(&cell)))),
                        Some(ms) => {
                            let (tx, rx) = std::sync::mpsc::channel();
                            let watched = cell.clone();
                            scope.spawn(move || {
                                let r = catch_unwind(AssertUnwindSafe(|| runner(&watched)));
                                let _ = tx.send(r);
                            });
                            rx.recv_timeout(std::time::Duration::from_millis(ms)).ok()
                        }
                    };
                    let wall = start.elapsed();
                    let mut row = match outcome {
                        None => JournalRow {
                            status: CellStatus::Timeout,
                            outcome: format!(
                                "timeout: cell exceeded the {} ms wall-clock budget",
                                timeout_ms.unwrap_or(0)
                            ),
                            ..JournalRow::default()
                        },
                        Some(Ok(Ok(out))) => JournalRow {
                            status: CellStatus::Ok,
                            outcome: out.outcome,
                            exit_code: out.exit_code,
                            cycles: out.cycles,
                            checkpoints: out.checkpoints,
                            restores: out.restores,
                            power_failures: out.power_failures,
                            undo_appends: out.undo_appends,
                            text_bytes: out.text_bytes,
                            data_bytes: out.data_bytes,
                            spans: out.spans,
                            extra: out.extra,
                            ..JournalRow::default()
                        },
                        Some(Ok(Err(e))) => JournalRow {
                            status: CellStatus::BuildError,
                            outcome: e,
                            ..JournalRow::default()
                        },
                        Some(Err(payload)) => JournalRow {
                            status: CellStatus::Panicked,
                            outcome: format!("panicked: {}", panic_text(payload.as_ref())),
                            ..JournalRow::default()
                        },
                    };
                    row.exp = exp.clone();
                    row.cell = i as u64;
                    row.app = cell
                        .label
                        .clone()
                        .unwrap_or_else(|| cell.app.name().to_string());
                    row.system = cell.system.name().to_string();
                    row.opt = cell.opt.to_string();
                    row.clock = cell.clock.label();
                    row.supply = cell.supply.label();
                    row.scale = cell.scale;
                    row.seed = cell.seed;
                    row.shard = cell.shard;
                    // Declarative cell params lead the extras so they
                    // keep a stable position for journal folding.
                    let mut extra = cell.params.clone();
                    extra.append(&mut row.extra);
                    row.extra = extra;
                    row.wall_ms = wall.as_secs_f64() * 1_000.0;
                    row.thread = tid as u64;
                    cell_wall_ns.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
                    rows.lock().expect("rows mutex").push((i, row));
                });
            }
        });

        let wall_s = t0.elapsed().as_secs_f64();
        let mut indexed = rows.into_inner().expect("rows mutex");
        indexed.sort_by_key(|(i, _)| *i);
        let rows: Vec<JournalRow> = indexed.into_iter().map(|(_, r)| r).collect();

        let journal = write_journal(&journal_path, &rows);

        let summary = SweepSummary {
            exp: self.exp,
            cells: rows.len(),
            ok: rows.iter().filter(|r| r.status == CellStatus::Ok).count(),
            failed: rows
                .iter()
                .filter(|r| r.status == CellStatus::BuildError)
                .count(),
            panicked: rows
                .iter()
                .filter(|r| r.status == CellStatus::Panicked)
                .count(),
            timed_out: rows
                .iter()
                .filter(|r| r.status == CellStatus::Timeout)
                .count(),
            reused,
            total_cycles: rows.iter().map(|r| r.cycles).sum(),
            wall_s,
            cell_wall_s: cell_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
            threads,
            journal,
        };
        if !self.quiet {
            println!("{summary}");
        }
        SweepOutcome { rows, summary }
    }
}

/// The default cell runner: build + run through [`run_app`] on the
/// cell's supply.
///
/// # Errors
///
/// Infeasible app × system × opt combinations surface as `Err` (the
/// journal's `build-error` rows).
pub fn default_runner(cell: &Cell) -> Result<CellOutput, String> {
    let mut supply = cell.supply.build(cell.seed);
    run_app(
        cell.app,
        cell.system,
        &cell.run_config(),
        supply.as_mut(),
    )
    .map(CellOutput::from)
    .map_err(|e| e.to_string())
}

/// Loads reusable rows from a prior journal for `--resume`: a row is
/// reused only if every deterministic coordinate (experiment, cell
/// index, app label, system, opt, clock, supply, scale, derived seed)
/// matches the declared cell — so resuming against a different grid or
/// sweep seed silently degrades to a full run rather than stitching
/// mismatched results. `panicked` and `timeout` rows are never reused:
/// the former may be a transient harness condition, the latter is
/// exactly what a resume is expected to retry.
fn resume_cache(
    path: &Path,
    exp: &str,
    sweep_seed: u64,
    cells: &[Cell],
) -> Vec<Option<JournalRow>> {
    let mut cache: Vec<Option<JournalRow>> = (0..cells.len()).map(|_| None).collect();
    let rows = match crate::journal::read(path) {
        Ok(rows) => rows,
        Err(_) => return cache, // no prior journal (or unreadable): run everything
    };
    let mut reusable = 0usize;
    for row in rows {
        let Ok(i) = usize::try_from(row.cell) else {
            continue;
        };
        let Some(cell) = cells.get(i) else { continue };
        let app = cell
            .label
            .clone()
            .unwrap_or_else(|| cell.app.name().to_string());
        let matches = row.exp == exp
            && row.app == app
            && row.system == cell.system.name()
            && row.opt == cell.opt.to_string()
            && row.clock == cell.clock.label()
            && row.supply == cell.supply.label()
            && row.scale == cell.scale
            && row.seed == cell_seed(sweep_seed, i as u64)
            && row.shard == cell.shard
            && matches!(row.status, CellStatus::Ok | CellStatus::BuildError);
        if matches {
            if cache[i].is_none() {
                reusable += 1;
            }
            cache[i] = Some(row);
        }
    }
    if reusable > 0 {
        eprintln!(
            "resume: reusing {reusable} of {} cells from {}",
            cells.len(),
            path.display()
        );
    }
    cache
}

fn write_journal(path: &PathBuf, rows: &[JournalRow]) -> Option<PathBuf> {
    let write = || -> std::io::Result<PathBuf> {
        let mut j = Journal::create(path)?;
        for row in rows {
            j.append(row)?;
        }
        j.finish()
    };
    match write() {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("warning: could not write journal {}: {e}", path.display());
            None
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed(42, 0);
        let b = cell_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, cell_seed(42, 0));
        assert_ne!(a, cell_seed(43, 0));
    }

    #[test]
    fn grid_is_row_major_cartesian() {
        let s = Sweep::new("t").grid(
            &[App::Ar, App::Bc],
            &[SystemUnderTest::Tics],
            &[OptLevel::O0, OptLevel::O2],
            &[ClockKind::Perfect],
            &[SupplySpec::Continuous],
            &[8, 16],
        );
        assert_eq!(s.len(), 2 * 2 * 2);
        assert_eq!(s.cells[0].app, App::Ar);
        assert_eq!(s.cells[0].scale, 8);
        assert_eq!(s.cells[1].scale, 16);
        assert_eq!(s.cells[4].app, App::Bc);
    }

    #[test]
    fn args_parse_threads_and_journal() {
        let a = SweepArgs::parse(
            ["--threads", "3", "left", "--journal=/tmp/x.jsonl"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(a.threads, 3);
        assert_eq!(a.journal.as_deref(), Some(std::path::Path::new("/tmp/x.jsonl")));
        assert_eq!(a.rest, vec!["left".to_string()]);
    }
}
