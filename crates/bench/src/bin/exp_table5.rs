//! Table 5 — the state-of-the-art programming-model capability matrix,
//! reported live by each runtime implementation.

use serde::Serialize;
use tics_baselines::{ChinchillaRuntime, NaiveCheckpoint, RatchetRuntime, TaskFlavor, TaskKernel};
use tics_core::{TicsConfig, TicsRuntime};
use tics_vm::IntermittentRuntime;

#[derive(Debug, Serialize)]
struct Row {
    runtime: String,
    pointer_support: bool,
    recursion_support: bool,
    scalable: bool,
    timely_execution: bool,
    porting_effort: String,
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    let runtimes: Vec<Box<dyn IntermittentRuntime>> = vec![
        Box::new(TaskKernel::new(TaskFlavor::Mayfly)),
        Box::new(TaskKernel::new(TaskFlavor::Alpaca)),
        Box::new(RatchetRuntime::default()),
        Box::new(ChinchillaRuntime::default()),
        Box::new(TaskKernel::new(TaskFlavor::Ink)),
        Box::new(NaiveCheckpoint::default()),
        Box::new(TicsRuntime::new(TicsConfig::default())),
    ];
    println!("Table 5: programming-model capability matrix\n");
    println!(
        "{:<16} {:>8} {:>10} {:>9} {:>7} {:>9}",
        "runtime", "pointers", "recursion", "scalable", "timely", "porting"
    );
    let mut rows = Vec::new();
    for rt in &runtimes {
        let c = rt.capabilities();
        println!(
            "{:<16} {:>8} {:>10} {:>9} {:>7} {:>9}",
            rt.name(),
            yn(c.pointer_support),
            yn(c.recursion_support),
            yn(c.scalable),
            yn(c.timely_execution),
            c.porting_effort.to_string()
        );
        rows.push(Row {
            runtime: rt.name().to_string(),
            pointer_support: c.pointer_support,
            recursion_support: c.recursion_support,
            scalable: c.scalable,
            timely_execution: c.timely_execution,
            porting_effort: c.porting_effort.to_string(),
        });
    }
    // The TICS row is the only all-yes row with zero porting effort.
    let tics = rows.last().expect("rows");
    assert!(
        tics.pointer_support
            && tics.recursion_support
            && tics.scalable
            && tics.timely_execution
            && tics.porting_effort == "None"
    );
    tics_bench::write_json("table5", &rows);
}
