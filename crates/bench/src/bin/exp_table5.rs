//! Table 5 — the state-of-the-art programming-model capability matrix,
//! reported live by each runtime implementation. One sweep cell per
//! runtime; the journal keeps the machine-readable matrix.

use tics_apps::{App, SystemUnderTest};
use tics_baselines::{ChinchillaRuntime, NaiveCheckpoint, RatchetRuntime, TaskFlavor, TaskKernel};
use tics_bench::sweep::{Cell, CellOutput, Sweep, SweepArgs};
use tics_bench::Json;
use tics_core::{TicsConfig, TicsRuntime};
use tics_vm::IntermittentRuntime;

fn runtime_for(index: i64) -> Box<dyn IntermittentRuntime> {
    match index {
        0 => Box::new(TaskKernel::new(TaskFlavor::Mayfly)),
        1 => Box::new(TaskKernel::new(TaskFlavor::Alpaca)),
        2 => Box::new(RatchetRuntime::default()),
        3 => Box::new(ChinchillaRuntime::default()),
        4 => Box::new(TaskKernel::new(TaskFlavor::Ink)),
        5 => Box::new(NaiveCheckpoint::default()),
        _ => Box::new(TicsRuntime::new(TicsConfig::default())),
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    let args = SweepArgs::parse_env();
    println!("Table 5: programming-model capability matrix\n");

    let mut sweep = Sweep::new("table5").args(args);
    for i in 0..7i64 {
        sweep = sweep.cell(
            Cell::new(App::Bc, SystemUnderTest::Tics).param("runtime_index", i),
        );
    }
    let outcome = sweep.run_with(|cell| {
        let rt = runtime_for(cell.param_i64("runtime_index"));
        let c = rt.capabilities();
        Ok(CellOutput {
            outcome: "queried".to_string(),
            ..CellOutput::default()
        }
        .with("runtime", rt.name())
        .with("pointer_support", c.pointer_support)
        .with("recursion_support", c.recursion_support)
        .with("scalable", c.scalable)
        .with("timely_execution", c.timely_execution)
        .with("memory_consistency", c.memory_consistency)
        .with("porting_effort", c.porting_effort.to_string()))
    });

    println!(
        "{:<16} {:>8} {:>10} {:>9} {:>7} {:>11} {:>9}",
        "runtime", "pointers", "recursion", "scalable", "timely", "consistent", "porting"
    );
    let mut table = Vec::new();
    for row in &outcome.rows {
        let get = |k: &str| row.metric(k).and_then(Json::as_bool).unwrap_or(false);
        let name = row.metric("runtime").and_then(Json::as_str).unwrap_or("?");
        let porting = row
            .metric("porting_effort")
            .and_then(Json::as_str)
            .unwrap_or("?");
        println!(
            "{:<16} {:>8} {:>10} {:>9} {:>7} {:>11} {:>9}",
            name,
            yn(get("pointer_support")),
            yn(get("recursion_support")),
            yn(get("scalable")),
            yn(get("timely_execution")),
            yn(get("memory_consistency")),
            porting
        );
        table.push(
            Json::obj()
                .field("runtime", name)
                .field("pointer_support", get("pointer_support"))
                .field("recursion_support", get("recursion_support"))
                .field("scalable", get("scalable"))
                .field("timely_execution", get("timely_execution"))
                .field("memory_consistency", get("memory_consistency"))
                .field("porting_effort", porting)
                .build(),
        );
    }
    // The TICS row is the only all-yes row with zero porting effort.
    let tics = outcome.rows.last().expect("rows");
    let get = |k: &str| tics.metric(k).and_then(Json::as_bool).unwrap_or(false);
    assert!(
        get("pointer_support")
            && get("recursion_support")
            && get("scalable")
            && get("timely_execution")
            && get("memory_consistency")
            && tics.metric("porting_effort").and_then(Json::as_str) == Some("None")
    );
    tics_bench::write_json("table5", &Json::Arr(table));
}
